//! Semantic domains and many-sorted checking (§III.B–C).
//!
//! A semantic domain is "a set of values and operations over them" whose
//! values "qualify properties of objects but may not themselves be treated
//! as objects". Domains serve two purposes here:
//!
//! 1. **Assertion-time sort checking.** A predicate may declare a signature
//!    (one [`Sort`] per argument); asserting a fact whose ground arguments
//!    fall outside their sorts is rejected — the *strict* reading of
//!    many-sorted logic.
//! 2. **The `domain_member/2` native**, so constraints can *flag* anomalous
//!    facts instead (the paper's reading: `average_temperature(green)(…)`
//!    is asserted but a constraint derives `ERROR(bad_temp, green)`).

use std::sync::Arc;

use parking_lot::RwLock;

use gdp_engine::{FxHashMap, KnowledgeBase, Term};

/// A semantic-domain definition: the membership test for its value set.
#[derive(Clone)]
pub enum DomainDef {
    /// Real values in `[min, max]` (integers are accepted and widened).
    FloatRange {
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// Integer values in `[min, max]`.
    IntRange {
        /// Inclusive lower bound.
        min: i64,
        /// Inclusive upper bound.
        max: i64,
    },
    /// A finite set of atoms (e.g. vegetation zones).
    Enumerated(Vec<String>),
    /// Any number.
    AnyNumber,
    /// Any atom.
    AnyAtom,
    /// Any ground term — the unconstrained domain.
    AnyGround,
    /// A custom membership predicate over ground terms.
    Custom(Arc<dyn Fn(&Term) -> bool + Send + Sync>),
}

impl std::fmt::Debug for DomainDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DomainDef::FloatRange { min, max } => write!(f, "FloatRange[{min}, {max}]"),
            DomainDef::IntRange { min, max } => write!(f, "IntRange[{min}, {max}]"),
            DomainDef::Enumerated(vs) => write!(f, "Enumerated({vs:?})"),
            DomainDef::AnyNumber => write!(f, "AnyNumber"),
            DomainDef::AnyAtom => write!(f, "AnyAtom"),
            DomainDef::AnyGround => write!(f, "AnyGround"),
            DomainDef::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl DomainDef {
    /// Does the (ground) term belong to this domain?
    pub fn contains(&self, t: &Term) -> bool {
        match self {
            DomainDef::FloatRange { min, max } => {
                t.as_f64().map(|v| *min <= v && v <= *max).unwrap_or(false)
            }
            DomainDef::IntRange { min, max } => {
                t.as_i64().map(|v| *min <= v && v <= *max).unwrap_or(false)
            }
            DomainDef::Enumerated(items) => match t {
                Term::Atom(s) => {
                    let name = s.as_str();
                    items.contains(&name)
                }
                _ => false,
            },
            DomainDef::AnyNumber => matches!(t, Term::Int(_) | Term::Float(_)),
            DomainDef::AnyAtom => matches!(t, Term::Atom(_)),
            DomainDef::AnyGround => t.is_ground(),
            DomainDef::Custom(f) => f(t),
        }
    }
}

/// The sort of one predicate argument.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Sort {
    /// The argument must be a declared object designator.
    Object,
    /// The argument takes values from the named semantic domain.
    Domain(String),
    /// Unconstrained.
    Any,
}

impl Sort {
    /// Shorthand for `Sort::Domain`.
    pub fn domain(name: &str) -> Sort {
        Sort::Domain(name.to_string())
    }
}

/// The shared, queryable table of domain definitions.
///
/// Shared behind `Arc<RwLock<…>>` because the `domain_member/2` native
/// closure registered in the engine needs access at solve time while the
/// specification keeps the ability to declare more domains.
#[derive(Default, Debug)]
pub struct DomainTable {
    defs: FxHashMap<String, DomainDef>,
}

impl DomainTable {
    /// Insert a definition; returns false if the name was already taken.
    pub fn insert(&mut self, name: &str, def: DomainDef) -> bool {
        if self.defs.contains_key(name) {
            return false;
        }
        self.defs.insert(name.to_string(), def);
        true
    }

    /// Look up a definition.
    pub fn get(&self, name: &str) -> Option<&DomainDef> {
        self.defs.get(name)
    }

    /// Is the name declared?
    pub fn contains(&self, name: &str) -> bool {
        self.defs.contains_key(name)
    }

    /// Number of declared domains.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True when no domain has been declared.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

/// Register the `domain_member(Domain, Value)` native against `kb`,
/// backed by `table`. The native *fails* (rather than erroring) on unknown
/// domains or unbound values, in keeping with the paper's rule that a
/// semantic-domain operation returning "false" reads as "not provable"
/// (§III.B).
pub fn register_domain_native(kb: &mut KnowledgeBase, table: Arc<RwLock<DomainTable>>) {
    kb.register_native("domain_member", 2, move |store, args| {
        let domain = store.deref(&args[0]).clone();
        let value = gdp_engine::resolve_deep(store, &args[1]);
        let Term::Atom(name) = domain else {
            return Ok(false);
        };
        if !value.is_ground() {
            return Ok(false);
        }
        let table = table.read();
        Ok(table
            .get(&name.as_str())
            .map(|def| def.contains(&value))
            .unwrap_or(false))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_engine::{Budget, Solver};

    #[test]
    fn range_domains() {
        let d = DomainDef::FloatRange {
            min: -100.0,
            max: 200.0,
        };
        assert!(d.contains(&Term::float(45.0)));
        assert!(d.contains(&Term::int(45))); // ints widen
        assert!(!d.contains(&Term::float(500.0)));
        assert!(!d.contains(&Term::atom("green")));
    }

    #[test]
    fn enumerated_domain() {
        let d = DomainDef::Enumerated(vec!["pine".into(), "oak".into()]);
        assert!(d.contains(&Term::atom("pine")));
        assert!(!d.contains(&Term::atom("cactus")));
        assert!(!d.contains(&Term::int(1)));
    }

    #[test]
    fn custom_domain() {
        let even = DomainDef::Custom(Arc::new(|t: &Term| {
            t.as_i64().map(|v| v % 2 == 0).unwrap_or(false)
        }));
        assert!(even.contains(&Term::int(4)));
        assert!(!even.contains(&Term::int(3)));
    }

    #[test]
    fn table_rejects_redeclaration() {
        let mut t = DomainTable::default();
        assert!(t.insert("temperature", DomainDef::AnyNumber));
        assert!(!t.insert("temperature", DomainDef::AnyAtom));
        assert!(t.contains("temperature"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn native_checks_membership() {
        let mut kb = KnowledgeBase::new();
        let table = Arc::new(RwLock::new(DomainTable::default()));
        table.write().insert(
            "temperature",
            DomainDef::FloatRange {
                min: -100.0,
                max: 200.0,
            },
        );
        register_domain_native(&mut kb, Arc::clone(&table));
        let solver = Solver::new(&kb, Budget::default());
        let goal = |v: Term| Term::pred("domain_member", vec![Term::atom("temperature"), v]);
        assert!(solver.prove(goal(Term::float(45.0))).unwrap());
        assert!(!solver.prove(goal(Term::atom("green"))).unwrap());
        // Unknown domain fails silently (open world).
        let g = Term::pred("domain_member", vec![Term::atom("nope"), Term::int(1)]);
        assert!(!solver.prove(g).unwrap());
        // Unbound value fails rather than erroring.
        let g = Term::pred(
            "domain_member",
            vec![Term::atom("temperature"), Term::var(0)],
        );
        assert!(!solver.prove(g).unwrap());
    }

    #[test]
    fn domains_declared_after_registration_are_seen() {
        let mut kb = KnowledgeBase::new();
        let table = Arc::new(RwLock::new(DomainTable::default()));
        register_domain_native(&mut kb, Arc::clone(&table));
        table.write().insert("parity", DomainDef::AnyNumber);
        let solver = Solver::new(&kb, Budget::default());
        let g = Term::pred("domain_member", vec![Term::atom("parity"), Term::int(1)]);
        assert!(solver.prove(g).unwrap());
    }
}
