//! The formula language `F` (§III.A).
//!
//! The paper restricts rule bodies to a grammar chosen for Prolog
//! executability: atomic facts, conjunction, disjunction, bounded universal
//! quantification `∀Xj:(F2 → F3)`, and `not` — which "is not the logical
//! negation but a test that a formula may not be shown to be true".
//! Semantic-domain operations returning Booleans are admitted as if they
//! were facts (§III.B); here that means arithmetic comparison, explicit
//! unification, `is`, domain-membership tests, and aggregation.
//!
//! [`Formula::check_safety`] enforces the paper's range restrictions: the
//! variables of a negated subformula must already be bound by an enclosing
//! positive context (the `I2 ⊆ I` side conditions), and every head variable
//! must be bound by the body (`K ⊆ I`).

use gdp_engine::{FxHashMap, Term};

use crate::fact::{FactPat, Target};
use crate::pattern::{Pat, VarTable};

/// Arithmetic/structural comparison operators usable in formulas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `<` numeric.
    Lt,
    /// `=<` numeric.
    Le,
    /// `>` numeric.
    Gt,
    /// `>=` numeric.
    Ge,
    /// `=:=` numeric equality.
    NumEq,
    /// `=\=` numeric inequality.
    NumNe,
    /// `\=` non-unifiability — the paper's `≠` (e.g. the two-capitals
    /// constraint, §III.C).
    NotUnify,
}

impl CmpOp {
    fn functor(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "=<",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::NumEq => "=:=",
            CmpOp::NumNe => "=\\=",
            CmpOp::NotUnify => "\\=",
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`);
    /// `None` when the operator carries no range information.
    fn flipped(self) -> Option<CmpOp> {
        match self {
            CmpOp::Lt => Some(CmpOp::Gt),
            CmpOp::Le => Some(CmpOp::Ge),
            CmpOp::Gt => Some(CmpOp::Lt),
            CmpOp::Ge => Some(CmpOp::Le),
            CmpOp::NumEq => Some(CmpOp::NumEq),
            CmpOp::NumNe | CmpOp::NotUnify => None,
        }
    }
}

/// One planned bound pushdown: variable `var`, introduced by a fact lookup,
/// is later compared against an expression evaluable *before* that lookup,
/// so the lookup can be wrapped in `range_call(Goal, [rc(Var, iv(..))])`
/// and the KB's range indexes can prune clauses at dispatch time. The
/// comparison goal itself stays in place — the wrapper only *narrows
/// enumeration*, it never decides truth, so compiled semantics are
/// unchanged even when the bound expression fails to evaluate.
#[derive(Clone, Debug)]
struct PlannedRc {
    var: String,
    lo: Option<Pat>,
    lo_open: bool,
    hi: Option<Pat>,
    hi_open: bool,
}

impl PlannedRc {
    /// `rc(V, iv(Lo, Hi, LoEnd, HiEnd))` with `minf`/`inf` for missing
    /// bounds and `open`/`closed` end markers — the shape `range_call/2`
    /// parses in the solver.
    fn compile(&self, vt: &mut VarTable) -> Term {
        let lo = match &self.lo {
            Some(p) => vt.compile(p),
            None => Term::atom("minf"),
        };
        let hi = match &self.hi {
            Some(p) => vt.compile(p),
            None => Term::atom("inf"),
        };
        let end = |open: bool| Term::atom(if open { "open" } else { "closed" });
        Term::pred(
            "rc",
            vec![
                vt.compile(&Pat::Var(self.var.clone())),
                Term::pred("iv", vec![lo, hi, end(self.lo_open), end(self.hi_open)]),
            ],
        )
    }

    /// Constraint `v OP e` (variable on the left) as a half-open interval.
    fn from_cmp(op: CmpOp, var: &str, expr: &Pat) -> Option<PlannedRc> {
        let (lo, lo_open, hi, hi_open) = match op {
            CmpOp::Lt => (None, false, Some(expr.clone()), true),
            CmpOp::Le => (None, false, Some(expr.clone()), false),
            CmpOp::Gt => (Some(expr.clone()), true, None, false),
            CmpOp::Ge => (Some(expr.clone()), false, None, false),
            CmpOp::NumEq => (Some(expr.clone()), false, Some(expr.clone()), false),
            CmpOp::NumNe | CmpOp::NotUnify => return None,
        };
        Some(PlannedRc {
            var: var.to_string(),
            lo,
            lo_open,
            hi,
            hi_open,
        })
    }
}

/// Aggregation operators (the `avg` function of §V.C and relatives).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// Arithmetic mean; fails on an empty solution set.
    Avg,
    /// Sum; 0 on empty.
    Sum,
    /// Minimum; fails on empty.
    Min,
    /// Maximum; fails on empty.
    Max,
    /// Solution count (with duplicates).
    Count,
}

impl AggOp {
    fn atom(self) -> &'static str {
        match self {
            AggOp::Avg => "avg",
            AggOp::Sum => "sum",
            AggOp::Min => "min",
            AggOp::Max => "max",
            AggOp::Count => "count",
        }
    }
}

/// A body formula in the restricted grammar.
#[derive(Clone, Debug, PartialEq)]
pub enum Formula {
    /// The trivially true formula.
    True,
    /// An atomic (possibly qualified) fact lookup.
    Fact(FactPat),
    /// An accuracy-qualified fact lookup `%A q(x)` against the fuzzy
    /// relation (§VII.B); binds the accuracy pattern.
    FuzzyFact(FactPat, Pat),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Negation as failure.
    Not(Box<Formula>),
    /// Bounded universal quantification `∀:(cond → then)`.
    Forall(Box<Formula>, Box<Formula>),
    /// Comparison between two value patterns.
    Cmp(CmpOp, Pat, Pat),
    /// Explicit unification `lhs = rhs`.
    Unify(Pat, Pat),
    /// Arithmetic evaluation `lhs is rhs`.
    Is(Pat, Pat),
    /// Membership test of a value in a declared semantic domain; compiles
    /// to the `domain_member/2` native. Used for many-sorted constraints
    /// (§III.C).
    Domain(String, Pat),
    /// The cardinality primitive `card(goal_instances) = N` (§VII.B):
    /// counts distinct provable instances of the inner formula.
    Card(Box<Formula>, Pat),
    /// Aggregation: `agg(op, value_pattern, formula, result)`.
    Agg(AggOp, Pat, Box<Formula>, Pat),
    /// Escape hatch: a raw goal pattern passed to the engine verbatim
    /// (used by the spatial/temporal/fuzzy crates for native predicates).
    Raw(Pat),
}

impl Formula {
    /// Conjunction of many formulas (`True` when empty).
    pub fn all(mut items: Vec<Formula>) -> Formula {
        match items.len() {
            0 => Formula::True,
            1 => items.pop().expect("len checked"),
            _ => {
                let mut it = items.into_iter().rev();
                let last = it.next().expect("len checked");
                it.fold(last, |acc, f| Formula::And(Box::new(f), Box::new(acc)))
            }
        }
    }

    /// Disjunction of many formulas (panics when empty).
    pub fn any_of(items: Vec<Formula>) -> Formula {
        let mut it = items.into_iter().rev();
        let last = it.next().expect("Formula::any_of of empty vector");
        it.fold(last, |acc, f| Formula::Or(Box::new(f), Box::new(acc)))
    }

    /// `fact(...)` shorthand.
    pub fn fact(f: FactPat) -> Formula {
        Formula::Fact(f)
    }

    /// `not(...)` shorthand.
    #[allow(clippy::should_implement_trait)] // `not/1` is the formalism's name
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// `and` shorthand.
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::And(Box::new(a), Box::new(b))
    }

    /// `or` shorthand.
    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::Or(Box::new(a), Box::new(b))
    }

    /// `forall` shorthand.
    pub fn forall(cond: Formula, then: Formula) -> Formula {
        Formula::Forall(Box::new(cond), Box::new(then))
    }

    /// Compile into an engine goal term. Body fact lookups go through the
    /// world-view-filtered `visible/5` relation.
    pub fn compile(&self, vt: &mut VarTable) -> Term {
        match self {
            Formula::True => Term::atom("true"),
            Formula::Fact(f) => f.compile(vt, Target::Visible),
            Formula::FuzzyFact(f, acc) => f.compile_fuzzy(vt, acc, Target::Visible),
            Formula::And(a, b) => Term::and(a.compile(vt), b.compile(vt)),
            Formula::Or(a, b) => Term::or(a.compile(vt), b.compile(vt)),
            // User-level negation compiles to the engine's *existential*
            // negation `absent/1`, not strict `not/1`: the compiled body is
            // a `visible/5` lookup whose model variable is existential by
            // construction ("not visible in any active model"), so the
            // strict form would flounder on every negated literal. The
            // paper's I2 ⊆ I range restriction on *user* variables is
            // enforced statically by [`Formula::check_safety`] instead.
            Formula::Not(f) => Term::absent(f.compile(vt)),
            // Same for forall: absent((C, absent(T))) — no solution of the
            // condition escapes the conclusion in any active model.
            Formula::Forall(c, t) => {
                Term::absent(Term::and(c.compile(vt), Term::absent(t.compile(vt))))
            }
            Formula::Cmp(op, a, b) => Term::pred(op.functor(), vec![vt.compile(a), vt.compile(b)]),
            Formula::Unify(a, b) => Term::unify(vt.compile(a), vt.compile(b)),
            Formula::Is(a, b) => Term::pred("is", vec![vt.compile(a), vt.compile(b)]),
            Formula::Domain(d, v) => {
                Term::pred("domain_member", vec![Term::atom(d), vt.compile(v)])
            }
            Formula::Card(f, n) => Term::pred("card", vec![f.compile(vt), vt.compile(n)]),
            Formula::Agg(op, template, f, result) => Term::pred(
                "aggregate",
                vec![
                    Term::atom(op.atom()),
                    vt.compile(template),
                    f.compile(vt),
                    vt.compile(result),
                ],
            ),
            Formula::Raw(p) => vt.compile(p),
        }
    }

    /// Compile like [`Formula::compile`], but first plan *bound pushdown*
    /// over the top-level conjunction: a fact lookup that introduces a
    /// variable later compared against an already-bound expression is
    /// wrapped in `range_call(Goal, [rc(Var, iv(..))])`, handing the KB's
    /// grid/interval indexes a numeric range to prune clause candidates
    /// with (the classic "push the selection below the scan" move). All
    /// comparison goals stay in place, so the compiled body is a semantic
    /// no-op relative to the plain compile — indexed and unindexed solving
    /// produce identical answers in identical order. When nothing is
    /// plannable this *is* the plain compile, term-for-term.
    pub fn compile_pushdown(&self, vt: &mut VarTable) -> Term {
        let mut items = Vec::new();
        self.conjuncts(&mut items);
        let plan = Formula::plan_pushdown(&items);
        if plan.is_empty() {
            return self.compile(vt);
        }
        let mut ord = 0usize;
        self.compile_with_plan(vt, &plan, &mut ord)
    }

    /// Flatten the top-level `And` spine into leaf conjuncts, in order.
    fn conjuncts<'a>(&'a self, out: &mut Vec<&'a Formula>) {
        if let Formula::And(a, b) = self {
            a.conjuncts(out);
            b.conjuncts(out);
        } else {
            out.push(self);
        }
    }

    /// For each top-level `Fact` conjunct (by leaf ordinal), the range
    /// constraints later comparisons impose on variables that lookup
    /// introduces. A constraint `V op E` qualifies when `V` first becomes
    /// bound at that fact and every variable of `E` is bound *before* it —
    /// i.e. `E` is evaluable at the moment the lookup dispatches.
    fn plan_pushdown(items: &[&Formula]) -> FxHashMap<usize, Vec<PlannedRc>> {
        let mut bound_before: Vec<Vec<String>> = Vec::with_capacity(items.len());
        let mut bound = Vec::new();
        for item in items {
            bound_before.push(bound.clone());
            item.binds(&mut bound);
        }

        let mut plan: FxHashMap<usize, Vec<PlannedRc>> = FxHashMap::default();
        for (i, item) in items.iter().enumerate() {
            let Formula::Fact(f) = item else { continue };
            let mut fact_vars = Vec::new();
            f.collect_vars(&mut fact_vars);
            let fresh: Vec<&String> = fact_vars
                .iter()
                .filter(|v| !bound_before[i].contains(v))
                .collect();
            if fresh.is_empty() {
                continue;
            }
            let qualifies = |vside: &Pat, eside: &Pat| -> Option<String> {
                let Pat::Var(v) = vside else { return None };
                if !fresh.contains(&v) {
                    return None;
                }
                let mut evars = Vec::new();
                eside.collect_vars(&mut evars);
                if evars.iter().all(|e| bound_before[i].contains(e)) {
                    Some(v.clone())
                } else {
                    None
                }
            };
            let mut rcs = Vec::new();
            for later in &items[i + 1..] {
                let Formula::Cmp(op, a, b) = later else {
                    continue;
                };
                if let Some(v) = qualifies(a, b) {
                    rcs.extend(PlannedRc::from_cmp(*op, &v, b));
                } else if let Some(v) = qualifies(b, a) {
                    if let Some(flip) = op.flipped() {
                        rcs.extend(PlannedRc::from_cmp(flip, &v, a));
                    }
                }
            }
            if !rcs.is_empty() {
                plan.insert(i, rcs);
            }
        }
        plan
    }

    /// Compile, wrapping planned leaf conjuncts. Mirrors the `And` spine of
    /// [`Formula::compile`] exactly (same recursion, same variable
    /// allocation order — the `rc` terms only reference variables already
    /// allocated by the wrapped goal or earlier conjuncts).
    fn compile_with_plan(
        &self,
        vt: &mut VarTable,
        plan: &FxHashMap<usize, Vec<PlannedRc>>,
        ord: &mut usize,
    ) -> Term {
        if let Formula::And(a, b) = self {
            let ta = a.compile_with_plan(vt, plan, ord);
            let tb = b.compile_with_plan(vt, plan, ord);
            return Term::and(ta, tb);
        }
        let i = *ord;
        *ord += 1;
        let goal = self.compile(vt);
        match plan.get(&i) {
            Some(rcs) => {
                let rc_terms = rcs.iter().map(|rc| rc.compile(vt)).collect();
                Term::pred("range_call", vec![goal, Term::list(rc_terms)])
            }
            None => goal,
        }
    }

    /// Variables this formula *binds* when it succeeds (positive context).
    fn binds(&self, out: &mut Vec<String>) {
        match self {
            Formula::True => {}
            Formula::Fact(f) => f.collect_vars(out),
            Formula::FuzzyFact(f, acc) => {
                f.collect_vars(out);
                acc.collect_vars(out);
            }
            Formula::And(a, b) => {
                a.binds(out);
                b.binds(out);
            }
            Formula::Or(a, b) => {
                // Only variables bound on *every* branch are surely bound.
                let mut la = Vec::new();
                let mut lb = Vec::new();
                a.binds(&mut la);
                b.binds(&mut lb);
                for v in la {
                    if lb.contains(&v) && !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            // Negation and forall bind nothing (their bindings do not
            // escape), comparisons test only.
            Formula::Not(_) | Formula::Forall(..) | Formula::Cmp(..) | Formula::Domain(..) => {}
            Formula::Unify(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Formula::Is(a, _) => a.collect_vars(out),
            Formula::Card(_, n) => n.collect_vars(out),
            Formula::Agg(_, _, _, result) => result.collect_vars(out),
            Formula::Raw(p) => p.collect_vars(out),
        }
    }

    /// All variables mentioned anywhere in the formula.
    pub fn mentions(&self, out: &mut Vec<String>) {
        match self {
            Formula::True => {}
            Formula::Fact(f) => f.collect_vars(out),
            Formula::FuzzyFact(f, acc) => {
                f.collect_vars(out);
                acc.collect_vars(out);
            }
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Forall(a, b) => {
                a.mentions(out);
                b.mentions(out);
            }
            Formula::Not(f) => f.mentions(out),
            Formula::Cmp(_, a, b) | Formula::Unify(a, b) | Formula::Is(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Formula::Domain(_, v) => v.collect_vars(out),
            Formula::Card(f, n) => {
                f.mentions(out);
                n.collect_vars(out);
            }
            Formula::Agg(_, t, f, r) => {
                t.collect_vars(out);
                f.mentions(out);
                r.collect_vars(out);
            }
            Formula::Raw(p) => p.collect_vars(out),
        }
    }

    /// Check the paper's range restrictions. `head_vars` are the variables
    /// the rule head exports (`Xk`); they must all be bound by the body.
    ///
    /// Returns a human-readable reason on violation.
    pub fn check_safety(&self, head_vars: &[String]) -> Result<(), String> {
        let mut bound = Vec::new();
        self.check_inner(&mut bound)?;
        for v in head_vars {
            if !bound.contains(v) {
                return Err(format!(
                    "head variable `{v}` is not bound by any positive body atom \
                     (K ⊆ I violated)"
                ));
            }
        }
        Ok(())
    }

    /// Walk the formula left to right maintaining the bound-variable set.
    fn check_inner(&self, bound: &mut Vec<String>) -> Result<(), String> {
        match self {
            Formula::True => Ok(()),
            Formula::Fact(_)
            | Formula::FuzzyFact(..)
            | Formula::Unify(..)
            | Formula::Is(..)
            | Formula::Card(..)
            | Formula::Agg(..)
            | Formula::Raw(_) => {
                // Positive contexts: whatever they mention becomes bound.
                // (For `is` the right-hand side should itself be bound, but
                // the engine reports that dynamically as an instantiation
                // error with better context.)
                self.binds(bound);
                // Inner formulas of card/agg are sub-queries; check them
                // against the current bound set (they may introduce local
                // variables freely).
                if let Formula::Card(inner, _) | Formula::Agg(_, _, inner, _) = self {
                    let mut local = bound.clone();
                    inner.check_inner(&mut local)?;
                }
                Ok(())
            }
            Formula::And(a, b) => {
                a.check_inner(bound)?;
                b.check_inner(bound)
            }
            Formula::Or(a, b) => {
                let mut ba = bound.clone();
                let mut bb = bound.clone();
                a.check_inner(&mut ba)?;
                b.check_inner(&mut bb)?;
                for v in ba {
                    if bb.contains(&v) && !bound.contains(&v) {
                        bound.push(v);
                    }
                }
                Ok(())
            }
            Formula::Not(f) => {
                // I2 ⊆ I: every variable of the negated formula must be
                // bound already.
                let mut inner = Vec::new();
                f.mentions(&mut inner);
                for v in &inner {
                    if !bound.contains(v) {
                        return Err(format!(
                            "variable `{v}` occurs under `not` without being bound \
                             by an earlier positive atom (I2 ⊆ I violated)"
                        ));
                    }
                }
                Ok(())
            }
            Formula::Forall(cond, then) => {
                // The condition may introduce fresh universally quantified
                // variables Xj (j ∉ I); the conclusion may use only bound
                // variables and those Xj.
                let mut cond_vars = Vec::new();
                cond.mentions(&mut cond_vars);
                let mut local = bound.clone();
                for v in cond_vars {
                    if !local.contains(&v) {
                        local.push(v);
                    }
                }
                let mut then_vars = Vec::new();
                then.mentions(&mut then_vars);
                for v in &then_vars {
                    if !local.contains(v) {
                        return Err(format!(
                            "variable `{v}` occurs in a forall conclusion without \
                             being bound by the condition or an earlier atom"
                        ));
                    }
                }
                Ok(())
            }
            Formula::Cmp(_, a, b) => {
                let mut vars = Vec::new();
                a.collect_vars(&mut vars);
                b.collect_vars(&mut vars);
                for v in &vars {
                    if !bound.contains(v) {
                        return Err(format!(
                            "variable `{v}` used in a comparison before being bound"
                        ));
                    }
                }
                Ok(())
            }
            Formula::Domain(_, v) => {
                let mut vars = Vec::new();
                v.collect_vars(&mut vars);
                for v in &vars {
                    if !bound.contains(v) {
                        return Err(format!(
                            "variable `{v}` used in a domain test before being bound"
                        ));
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(pred: &str, args: Vec<&str>) -> Formula {
        let mut f = FactPat::new(pred);
        for a in args {
            f = f.arg(a);
        }
        Formula::Fact(f)
    }

    #[test]
    fn all_of_none_is_true() {
        assert_eq!(Formula::all(vec![]), Formula::True);
    }

    #[test]
    fn safe_rule_passes() {
        // road(X), forall(bridge(Y, X), open(Y))  with head var X.
        let body = Formula::and(
            fact("road", vec!["X"]),
            Formula::forall(fact("bridge", vec!["Y", "X"]), fact("open", vec!["Y"])),
        );
        assert!(body.check_safety(&["X".to_string()]).is_ok());
    }

    #[test]
    fn unbound_head_var_rejected() {
        let body = fact("road", vec!["X"]);
        let err = body.check_safety(&["Z".to_string()]).unwrap_err();
        assert!(err.contains("Z"));
    }

    #[test]
    fn naf_on_unbound_var_rejected() {
        // not(open(X)) with X never bound.
        let body = Formula::not(fact("open", vec!["X"]));
        assert!(body.check_safety(&[]).is_err());
        // bridge(X), not(open(X)) is fine.
        let ok = Formula::and(
            fact("bridge", vec!["X"]),
            Formula::not(fact("open", vec!["X"])),
        );
        assert!(ok.check_safety(&["X".to_string()]).is_ok());
    }

    #[test]
    fn forall_may_introduce_fresh_vars() {
        // forall(bridge(Y, X), open(Y)) — Y fresh is allowed...
        let body = Formula::and(
            fact("road", vec!["X"]),
            Formula::forall(fact("bridge", vec!["Y", "X"]), fact("open", vec!["Y"])),
        );
        assert!(body.check_safety(&[]).is_ok());
        // ...but the conclusion may not smuggle in a brand-new variable.
        let bad = Formula::forall(fact("bridge", vec!["Y"]), fact("status", vec!["Y", "Z"]));
        assert!(bad.check_safety(&[]).is_err());
    }

    #[test]
    fn or_binds_only_intersection() {
        // (p(X) ; q(Y)), not(r(X))  — X not bound on the q branch.
        let body = Formula::and(
            Formula::or(fact("p", vec!["X"]), fact("q", vec!["Y"])),
            Formula::not(fact("r", vec!["X"])),
        );
        assert!(body.check_safety(&[]).is_err());
        // (p(X) ; q(X)), not(r(X)) — bound on both branches: fine.
        let ok = Formula::and(
            Formula::or(fact("p", vec!["X"]), fact("q", vec!["X"])),
            Formula::not(fact("r", vec!["X"])),
        );
        assert!(ok.check_safety(&[]).is_ok());
    }

    #[test]
    fn comparison_requires_bound_vars() {
        let bad = Formula::Cmp(CmpOp::Gt, Pat::var("A"), Pat::Int(0));
        assert!(bad.check_safety(&[]).is_err());
        let ok = Formula::and(
            fact("population", vec!["A", "X"]),
            Formula::Cmp(CmpOp::Gt, Pat::var("A"), Pat::Int(0)),
        );
        assert!(ok.check_safety(&[]).is_ok());
    }

    #[test]
    fn compile_produces_visible_lookups() {
        let mut vt = VarTable::new();
        let body = Formula::and(
            fact("road", vec!["X"]),
            Formula::not(fact("open", vec!["X"])),
        );
        let t = body.compile(&mut vt);
        let s = t.to_string();
        assert!(s.contains("visible("));
        // Negated lookups use the existential form: the model variable of
        // `visible/5` is unbound by design, which strict `not/1` rejects.
        assert!(s.contains("absent(visible("), "compiled: {s}");
    }

    #[test]
    fn pushdown_wraps_later_constrained_fact() {
        // reading(X,V1), reading(Y,V2), V1 < V2 — the second lookup
        // introduces V2 and V1 is bound by then, so it gets wrapped with
        // rc(V2, iv(V1, inf, open, closed)). The first lookup stays bare
        // (V2 is unbound at its dispatch) and the comparison goal survives.
        let body = Formula::all(vec![
            fact("reading", vec!["X", "V1"]),
            fact("reading", vec!["Y", "V2"]),
            Formula::Cmp(CmpOp::Lt, Pat::var("V1"), Pat::var("V2")),
        ]);
        let mut vt = VarTable::new();
        let s = body.compile_pushdown(&mut vt).to_string();
        assert_eq!(s.matches("range_call(").count(), 1, "compiled: {s}");
        assert!(s.contains("iv("), "compiled: {s}");
        assert!(s.contains("inf"), "compiled: {s}");
        assert!(s.contains("open"), "compiled: {s}");
        assert!(s.contains("<("), "comparison goal must survive: {s}");
        // Variable allocation identical to the plain compile.
        let mut plain = VarTable::new();
        body.compile(&mut plain);
        assert_eq!(vt.len(), plain.len());
    }

    #[test]
    fn pushdown_collects_both_bounds_and_constants() {
        // m(V), V >= 0, V < 10 — constants are always "evaluable", so the
        // single lookup collects both half-intervals.
        let body = Formula::all(vec![
            fact("m", vec!["V"]),
            Formula::Cmp(CmpOp::Ge, Pat::var("V"), Pat::Int(0)),
            Formula::Cmp(CmpOp::Lt, Pat::var("V"), Pat::Int(10)),
        ]);
        let mut vt = VarTable::new();
        let s = body.compile_pushdown(&mut vt).to_string();
        assert_eq!(s.matches("range_call(").count(), 1, "compiled: {s}");
        assert_eq!(s.matches("rc(").count(), 2, "compiled: {s}");
    }

    #[test]
    fn pushdown_skips_inequality_and_unbound_expressions() {
        // =\= carries no range; a bound expression using a later variable
        // is not evaluable at dispatch time. Nothing plans, so the result
        // is the plain compile, term for term.
        let body = Formula::all(vec![
            fact("m", vec!["V"]),
            fact("n", vec!["W"]),
            Formula::Cmp(CmpOp::NumNe, Pat::var("V"), Pat::Int(3)),
            Formula::Cmp(CmpOp::Lt, Pat::var("V"), Pat::var("W")),
        ]);
        // V < W: V is fresh at m/1 but W binds only later — skip; for n/1,
        // W is fresh and V is bound, so the flipped form W > V *does* plan.
        let mut vt = VarTable::new();
        let s = body.compile_pushdown(&mut vt).to_string();
        assert_eq!(s.matches("range_call(").count(), 1, "compiled: {s}");

        let unplannable = Formula::all(vec![
            fact("m", vec!["V"]),
            Formula::Cmp(CmpOp::NumNe, Pat::var("V"), Pat::Int(3)),
        ]);
        let mut vt1 = VarTable::new();
        let mut vt2 = VarTable::new();
        assert_eq!(
            unplannable.compile(&mut vt1),
            unplannable.compile_pushdown(&mut vt2)
        );
    }

    #[test]
    fn card_compiles_to_engine_card() {
        let mut vt = VarTable::new();
        let f = Formula::Card(Box::new(fact("white", vec!["P"])), Pat::var("N"));
        let s = f.compile(&mut vt).to_string();
        assert!(s.starts_with("card("));
    }

    #[test]
    fn agg_compiles_with_op_atom() {
        let mut vt = VarTable::new();
        let f = Formula::Agg(
            AggOp::Avg,
            Pat::var("Z"),
            Box::new(fact("elevation", vec!["Z", "X"])),
            Pat::var("Avg"),
        );
        let s = f.compile(&mut vt).to_string();
        assert!(s.starts_with("aggregate(avg"));
    }
}
