//! Spatial and temporal qualifier patterns (§V, §VI).
//!
//! These are the user-facing counterparts of the reified qualifier terms:
//! pattern-level descriptions of *where* and *when* a fact holds, compiled
//! against a [`crate::pattern::VarTable`] alongside the fact they qualify.

use gdp_engine::Term;

use crate::pattern::{Pat, VarTable};
use crate::reify;

/// A spatial qualifier pattern — one of the paper's four spatial operators,
/// or unqualified (true everywhere once the simple-operator meta-model is
/// active).
#[derive(Clone, Debug, PartialEq)]
pub enum SpaceQual {
    /// No spatial qualification.
    Any,
    /// `@p` — true at position `p` (simple spatial operator).
    At(Pat),
    /// `@u[R]p` — true uniformly over the patch of logical space `R`
    /// represented by `p`.
    AreaUniform {
        /// The resolution function (logical space).
        res: Pat,
        /// The representative point.
        at: Pat,
    },
    /// `@s[R]p` — true somewhere in the patch (area sampled).
    AreaSampled {
        /// The resolution function (logical space).
        res: Pat,
        /// The representative point.
        at: Pat,
    },
    /// `@a[R]p` — the fact's value is the average over the patch.
    AreaAveraged {
        /// The resolution function (logical space).
        res: Pat,
        /// The representative point.
        at: Pat,
    },
}

impl SpaceQual {
    /// Compile to the reified qualifier term.
    pub fn compile(&self, vt: &mut VarTable) -> Term {
        match self {
            SpaceQual::Any => reify::any(),
            SpaceQual::At(p) => reify::space_at(vt.compile(p)),
            SpaceQual::AreaUniform { res, at } => {
                reify::space_uniform(vt.compile(res), vt.compile(at))
            }
            SpaceQual::AreaSampled { res, at } => {
                reify::space_sampled(vt.compile(res), vt.compile(at))
            }
            SpaceQual::AreaAveraged { res, at } => {
                reify::space_averaged(vt.compile(res), vt.compile(at))
            }
        }
    }

    /// Named variables occurring in the qualifier.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            SpaceQual::Any => {}
            SpaceQual::At(p) => p.collect_vars(out),
            SpaceQual::AreaUniform { res, at }
            | SpaceQual::AreaSampled { res, at }
            | SpaceQual::AreaAveraged { res, at } => {
                res.collect_vars(out);
                at.collect_vars(out);
            }
        }
    }
}

/// A time interval with independently open/closed ends — the paper extends
/// the interval-uniform operator to "all four open/closed combinations"
/// (§VI.B).
#[derive(Clone, Debug, PartialEq)]
pub struct IntervalPat {
    /// Lower bound.
    pub lo: Pat,
    /// Upper bound.
    pub hi: Pat,
    /// Whether the lower bound is included.
    pub lo_closed: bool,
    /// Whether the upper bound is included.
    pub hi_closed: bool,
}

impl IntervalPat {
    /// Closed interval `[lo, hi]`.
    pub fn closed(lo: impl Into<Pat>, hi: impl Into<Pat>) -> IntervalPat {
        IntervalPat {
            lo: lo.into(),
            hi: hi.into(),
            lo_closed: true,
            hi_closed: true,
        }
    }

    /// Half-open interval `[lo, hi)` — the shape the continuity assumption
    /// derives (§VI.B).
    pub fn right_open(lo: impl Into<Pat>, hi: impl Into<Pat>) -> IntervalPat {
        IntervalPat {
            lo: lo.into(),
            hi: hi.into(),
            lo_closed: true,
            hi_closed: false,
        }
    }

    /// Compile to `iv(Lo, Hi, closed|open, closed|open)`.
    pub fn compile(&self, vt: &mut VarTable) -> Term {
        reify::interval(
            vt.compile(&self.lo),
            vt.compile(&self.hi),
            self.lo_closed,
            self.hi_closed,
        )
    }

    /// Named variables occurring in the bounds.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        self.lo.collect_vars(out);
        self.hi.collect_vars(out);
    }
}

/// A temporal qualifier pattern — the temporal counterparts of the spatial
/// operators (§VI.A), with the interval extension of §VI.B.
#[derive(Clone, Debug, PartialEq)]
pub enum TimeQual {
    /// No temporal qualification.
    Any,
    /// `&t` — true at instant `t`.
    At(Pat),
    /// `&u[interval]` — true throughout the interval.
    IntervalUniform(IntervalPat),
    /// `&s[interval]` — true at some instant within the interval.
    IntervalSampled(IntervalPat),
    /// `&a[interval]` — the fact's value is the average over the interval.
    IntervalAveraged(IntervalPat),
    /// `&now` — true at the present moment (§VI.B); expands through the
    /// `now_is/1` kernel fact.
    Now,
    /// Cyclic phenomenon: true whenever the time of day/year/cycle —
    /// `t mod period` — falls within the interval. The paper mentions this
    /// extension of the interval-uniform operator without elaborating
    /// (§VI.B); encoded as `cyc(Period, IV)`.
    Cyclic {
        /// Cycle length.
        period: Pat,
        /// Interval within each cycle (relative to the cycle start).
        interval: IntervalPat,
    },
}

impl TimeQual {
    /// Compile to the reified qualifier term.
    pub fn compile(&self, vt: &mut VarTable) -> Term {
        match self {
            TimeQual::Any => reify::any(),
            TimeQual::At(p) => reify::time_at(vt.compile(p)),
            TimeQual::IntervalUniform(iv) => reify::time_uniform(iv.compile(vt)),
            TimeQual::IntervalSampled(iv) => reify::time_sampled(iv.compile(vt)),
            TimeQual::IntervalAveraged(iv) => reify::time_averaged(iv.compile(vt)),
            TimeQual::Now => Term::atom("now"),
            TimeQual::Cyclic { period, interval } => {
                Term::pred("cyc", vec![vt.compile(period), interval.compile(vt)])
            }
        }
    }

    /// Named variables occurring in the qualifier.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            TimeQual::Any | TimeQual::Now => {}
            TimeQual::At(p) => p.collect_vars(out),
            TimeQual::IntervalUniform(iv)
            | TimeQual::IntervalSampled(iv)
            | TimeQual::IntervalAveraged(iv) => iv.collect_vars(out),
            TimeQual::Cyclic { period, interval } => {
                period.collect_vars(out);
                interval.collect_vars(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_any_is_any() {
        let mut vt = VarTable::new();
        assert_eq!(SpaceQual::Any.compile(&mut vt), Term::atom("any"));
    }

    #[test]
    fn space_at_compiles_position() {
        let mut vt = VarTable::new();
        let q = SpaceQual::At(Pat::app("pt", vec![Pat::Float(1.0), Pat::Float(2.0)]));
        assert_eq!(q.compile(&mut vt).to_string(), "sat(pt(1.0, 2.0))");
    }

    #[test]
    fn area_uniform_shares_vars_with_table() {
        let mut vt = VarTable::new();
        let q = SpaceQual::AreaUniform {
            res: Pat::var("R"),
            at: Pat::var("P"),
        };
        let t = q.compile(&mut vt);
        assert_eq!(t, reify::space_uniform(Term::var(0), Term::var(1)));
        // Same names later compile to the same vars.
        assert_eq!(vt.compile(&Pat::var("P")), Term::var(1));
    }

    #[test]
    fn interval_combinations() {
        let mut vt = VarTable::new();
        let c = IntervalPat::closed(1970, 1980).compile(&mut vt);
        assert_eq!(c.to_string(), "iv(1970, 1980, closed, closed)");
        let ro = IntervalPat::right_open(1970, 1980).compile(&mut vt);
        assert_eq!(ro.to_string(), "iv(1970, 1980, closed, open)");
    }

    #[test]
    fn time_quals_compile() {
        let mut vt = VarTable::new();
        assert_eq!(
            TimeQual::At(Pat::Int(1971)).compile(&mut vt).to_string(),
            "tat(1971)"
        );
        assert_eq!(
            TimeQual::IntervalUniform(IntervalPat::closed(1, 2))
                .compile(&mut vt)
                .to_string(),
            "tu(iv(1, 2, closed, closed))"
        );
        assert_eq!(TimeQual::Now.compile(&mut vt), Term::atom("now"));
    }

    #[test]
    fn collect_vars_covers_quals() {
        let q = SpaceQual::AreaAveraged {
            res: Pat::var("R"),
            at: Pat::var("P"),
        };
        let mut vars = Vec::new();
        q.collect_vars(&mut vars);
        assert_eq!(vars, vec!["R".to_string(), "P".to_string()]);

        let t = TimeQual::IntervalSampled(IntervalPat::closed(Pat::var("T1"), Pat::var("T2")));
        let mut vars = Vec::new();
        t.collect_vars(&mut vars);
        assert_eq!(vars, vec!["T1".to_string(), "T2".to_string()]);
    }
}
