//! Concurrent serving layer: one writer, many MVCC snapshot readers.
//!
//! A [`SpecStore`] wraps a [`Specification`] for server-style use:
//!
//! * **Writers** funnel through [`SpecStore::commit`], which wraps the
//!   closure in a transaction ([`Specification::begin_txn`] /
//!   [`Specification::commit_txn`]), assigns the commit a monotone
//!   sequence number, and retains its [`CommitRecord`] — the committed
//!   [`Delta`] plus the pre-commit epoch and per-predicate generations.
//! * **Readers** call [`SpecStore::snapshot`] (head) or
//!   [`SpecStore::snapshot_at`] (a retained earlier sequence) and get a
//!   private [`Specification`] pinned to that generation. Snapshots share
//!   the clause store copy-on-write — no clause is cloned — so taking one
//!   is O(#predicates), and queries or audits against it are untouched by
//!   writer commits that land afterwards.
//! * **Durability** is optional: a store opened with
//!   [`SpecStore::create_durable`] (or recovered with
//!   [`SpecStore::recover_durable`]) appends every committed delta to a
//!   write-ahead log ([`gdp_engine::wal::Wal`]) and fsyncs before the
//!   commit is acknowledged, and periodically folds the whole knowledge
//!   base into a checksummed checkpoint image
//!   ([`gdp_engine::checkpoint::CheckpointImage`]). Recovery is *newest
//!   valid checkpoint + WAL suffix*, falling back to the previous
//!   checkpoint and finally the base image when an image is torn —
//!   corruption degrades recovery time, never correctness.
//!
//! ## On-disk layout
//!
//! For a store opened at `FILE`:
//!
//! | path              | contents                                        |
//! |-------------------|-------------------------------------------------|
//! | `FILE`            | current WAL segment                             |
//! | `FILE.prev`       | previous segment (records since the older ckpt) |
//! | `FILE.ckpt`       | newest checkpoint image                         |
//! | `FILE.ckpt.prev`  | previous checkpoint image                       |
//! | `*.tmp`           | in-flight atomic writes (crash leftovers)       |
//!
//! At each checkpoint the WAL is rotated: the current segment retires to
//! `FILE.prev` and a fresh segment starts just past the checkpoint, so
//! disk usage and recovery time stay proportional to the checkpoint
//! interval, not total history. The retained pair (two checkpoints, two
//! segments) keeps the fallback chain contiguous: the *previous*
//! checkpoint plus the *previous* segment reach the head even when the
//! newest image is torn. Every WAL header and checkpoint carries the
//! canonical fingerprint of the base image
//! ([`gdp_engine::checkpoint::fingerprint`]); recovery over a base that
//! hashes differently — a changed `--load` file — is a hard error, not
//! silent divergence.
//!
//! The store records only *clause* operations. Configuration changes —
//! world view, tabling, index layout, declarations of models or domains —
//! go through [`SpecStore::update`], which invalidates retained history
//! (old snapshots would lie about configuration) and is not logged; on
//! recovery the caller rebuilds the same base configuration first, then
//! replays the log (the standard "base image + log" arrangement).

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::path::{Path, PathBuf};

use parking_lot::{Mutex, RwLock};

use gdp_engine::wal::{replay, Wal, WalHeader, WalRecord};
use gdp_engine::{
    fingerprint, CheckpointImage, CommitRecord, Delta, FxHashMap, IoFaultConfig, KnowledgeBase,
    PredKey,
};

use crate::error::{SpecError, SpecResult};
use crate::spec::Specification;

/// How many [`CommitRecord`]s a store retains by default. Snapshots can
/// be pinned at most this many commits behind head; older generations
/// are no longer reconstructible (the records have been dropped).
pub const DEFAULT_HISTORY: usize = 64;

/// Default auto-checkpoint cadence for [`DurabilityOptions`]: fold the KB
/// into an image every this many commits.
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 32;

/// Knobs for a durable store ([`SpecStore::create_durable`] /
/// [`SpecStore::recover_durable`]).
#[derive(Clone, Copy, Debug)]
pub struct DurabilityOptions {
    /// Write a checkpoint (and rotate the WAL) every this many commits;
    /// `None` disables auto-checkpointing — images are then written only
    /// by explicit [`SpecStore::checkpoint`] calls.
    pub checkpoint_interval: Option<u64>,
    /// Disk-fault injection under every WAL and checkpoint write (the
    /// `GDP_CHAOS` `io:` grammar); `None` in production.
    pub io_faults: Option<IoFaultConfig>,
}

impl Default for DurabilityOptions {
    fn default() -> DurabilityOptions {
        DurabilityOptions {
            checkpoint_interval: Some(DEFAULT_CHECKPOINT_INTERVAL),
            io_faults: None,
        }
    }
}

impl DurabilityOptions {
    /// WAL-only durability: no automatic checkpoints, no fault injection.
    pub fn no_checkpoints() -> DurabilityOptions {
        DurabilityOptions {
            checkpoint_interval: None,
            io_faults: None,
        }
    }
}

/// The file family derived from the WAL path (see the module docs).
#[derive(Clone, Debug)]
struct DurablePaths {
    wal: PathBuf,
    wal_prev: PathBuf,
    ckpt: PathBuf,
    ckpt_prev: PathBuf,
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

impl DurablePaths {
    fn new(path: &Path) -> DurablePaths {
        DurablePaths {
            wal: path.to_path_buf(),
            wal_prev: sibling(path, ".prev"),
            ckpt: sibling(path, ".ckpt"),
            ckpt_prev: sibling(path, ".ckpt.prev"),
        }
    }
}

/// Receipt of one successful [`SpecStore::commit`].
#[derive(Clone, Debug)]
pub struct Committed {
    /// The commit's sequence number (1-based, strictly monotone).
    pub seq: u64,
    /// The committed operations — the currency of
    /// [`Specification::audit_incremental`].
    pub delta: Delta,
}

struct DurableState {
    /// Current WAL segment. `None` after a failed rotation — commits are
    /// then refused until the operator restarts and recovers.
    wal: Option<Wal>,
    paths: DurablePaths,
    /// Canonical fingerprint of the base image (stamped into every WAL
    /// header and checkpoint this store writes).
    fingerprint: u64,
    opts: DurabilityOptions,
    /// Commits since the last checkpoint (drives the auto cadence).
    since_checkpoint: u64,
}

struct StoreState {
    /// Sequence number of the newest commit (0 = base image).
    seq: u64,
    /// Retained commit records, oldest first; `back().seq == seq`.
    history: VecDeque<CommitRecord>,
    /// Retention cap for `history`.
    cap: usize,
    /// Durability machinery (WAL + checkpoints), when enabled.
    durable: Option<DurableState>,
}

impl StoreState {
    /// Fold `kb` (the live KB at `self.seq`) into a fresh checkpoint
    /// image and rotate the WAL. Ordering is the crash-safety argument:
    /// (1) the old image retires to `.ckpt.prev`, (2) the new image
    /// lands via write-temp/fsync/rename, (3) the current segment
    /// retires to `.prev`, (4) a fresh segment starts at `seq + 1`. A
    /// crash between any two steps leaves a contiguous
    /// checkpoint-plus-segments chain covering every acknowledged commit
    /// (see the module docs for the retention invariant).
    fn write_checkpoint(&mut self, kb: &KnowledgeBase) -> io::Result<u64> {
        let seq = self.seq;
        let d = self
            .durable
            .as_mut()
            .expect("write_checkpoint on a non-durable store");
        let image = CheckpointImage::capture(kb, d.fingerprint, seq);
        // Count the attempt up front: a failing image (e.g. under
        // injected faults) retries at the *next* interval instead of on
        // every commit.
        d.since_checkpoint = 0;
        if d.paths.ckpt.exists() {
            std::fs::rename(&d.paths.ckpt, &d.paths.ckpt_prev)?;
        }
        image.write(&d.paths.ckpt, d.opts.io_faults)?;
        // Rotate: close the current segment before renaming it out.
        d.wal = None;
        std::fs::rename(&d.paths.wal, &d.paths.wal_prev)?;
        let header = WalHeader::new(d.fingerprint, seq + 1);
        d.wal = Some(Wal::create_with_faults(
            &d.paths.wal,
            header,
            d.opts.io_faults,
        )?);
        Ok(seq)
    }
}

/// A [`Specification`] behind a single-writer / multi-reader MVCC
/// facade. See the module docs.
pub struct SpecStore {
    spec: RwLock<Specification>,
    state: Mutex<StoreState>,
}

// Lock order everywhere: `spec` first, then `state`.

impl SpecStore {
    /// Serve `spec` with the default history retention and no WAL.
    pub fn new(spec: Specification) -> SpecStore {
        SpecStore::with_capacity(spec, DEFAULT_HISTORY)
    }

    /// Serve `spec`, retaining up to `cap` commit records for
    /// [`SpecStore::snapshot_at`].
    pub fn with_capacity(spec: Specification, cap: usize) -> SpecStore {
        SpecStore {
            spec: RwLock::new(spec),
            state: Mutex::new(StoreState {
                seq: 0,
                history: VecDeque::new(),
                cap,
                durable: None,
            }),
        }
    }

    /// Serve `spec` durably with WAL-only durability (no automatic
    /// checkpoints) — see [`SpecStore::create_durable`].
    pub fn create_wal(spec: Specification, path: &Path) -> SpecResult<SpecStore> {
        SpecStore::create_durable(spec, path, DurabilityOptions::no_checkpoints())
    }

    /// Serve `spec` durably: create a fresh write-ahead log at `path`
    /// (truncating anything there, and deleting stale siblings from an
    /// earlier incarnation) and append every subsequent commit to it.
    /// Under `opts.checkpoint_interval`, the store also periodically
    /// folds the KB into a checkpoint image and rotates the log. `spec`
    /// is the *base image*; its fingerprint is stamped into the WAL
    /// header, and recovery refuses a base that hashes differently.
    pub fn create_durable(
        spec: Specification,
        path: &Path,
        opts: DurabilityOptions,
    ) -> SpecResult<SpecStore> {
        let paths = DurablePaths::new(path);
        for stale in [
            &paths.wal_prev,
            &paths.ckpt,
            &paths.ckpt_prev,
            &sibling(&paths.ckpt, ".tmp"),
        ] {
            let _ = std::fs::remove_file(stale);
        }
        let fp = fingerprint(spec.kb());
        let wal = Wal::create_with_faults(&paths.wal, WalHeader::new(fp, 1), opts.io_faults)
            .map_err(wal_err)?;
        let store = SpecStore::new(spec);
        store.state.lock().durable = Some(DurableState {
            wal: Some(wal),
            paths,
            fingerprint: fp,
            opts,
            since_checkpoint: 0,
        });
        Ok(store)
    }

    /// Re-open a durable store with WAL-only durability going forward —
    /// see [`SpecStore::recover_durable`].
    pub fn recover(base: Specification, path: &Path) -> SpecResult<(SpecStore, u64)> {
        SpecStore::recover_durable(base, path, DurabilityOptions::no_checkpoints())
    }

    /// Re-open a durable store: restore the newest valid checkpoint and
    /// replay the WAL suffix over it. `base` must be built exactly as the
    /// original base image was — its canonical fingerprint is checked
    /// against every WAL header and checkpoint on disk, and a mismatch
    /// (a changed `--load` file, a different setup script) is a hard
    /// error rather than silent divergence.
    ///
    /// Fallback ladder when images are torn or corrupt: newest
    /// checkpoint → previous checkpoint → the base image, each with the
    /// WAL records newer than it (both retained segments are scanned).
    /// The chain chosen is the one reaching the furthest *contiguous*
    /// head; committed records that no retained chain can reach (an
    /// operator deleted a segment) are a hard error, not silent loss.
    /// Torn record tails are truncated as usual. Retained history is
    /// rebuilt from the replayed records (up to the retention cap), so
    /// pinned snapshots work across a restart. Returns the store and the
    /// recovered head sequence number.
    pub fn recover_durable(
        mut base: Specification,
        path: &Path,
        opts: DurabilityOptions,
    ) -> SpecResult<(SpecStore, u64)> {
        let paths = DurablePaths::new(path);
        let fp = fingerprint(base.kb());

        // Harvest checkpoint candidates, newest first. Torn images are
        // skipped (fallback); CRC-valid images over a different base are
        // fatal.
        let mut images: Vec<CheckpointImage> = Vec::new();
        for p in [&paths.ckpt, &paths.ckpt_prev] {
            if let Some(image) = CheckpointImage::read(p).map_err(wal_err)? {
                if image.fingerprint != fp {
                    return Err(mismatched_base(
                        &p.display().to_string(),
                        image.fingerprint,
                        fp,
                    ));
                }
                images.push(image);
            }
        }
        images.sort_by_key(|i| std::cmp::Reverse(i.seq));

        // Harvest records from both retained segments. Duplicate seqs
        // (possible only transiently around rotation) are identical; the
        // newer segment wins the insert.
        let mut records: BTreeMap<u64, WalRecord> = BTreeMap::new();
        let mut cur_header: Option<WalHeader> = None;
        for p in [&paths.wal_prev, &paths.wal] {
            if let Some((header, recs)) = Wal::scan(p).map_err(wal_err)? {
                if header.fingerprint != fp {
                    return Err(mismatched_base(
                        &p.display().to_string(),
                        header.fingerprint,
                        fp,
                    ));
                }
                if p == &paths.wal {
                    cur_header = Some(header);
                }
                for r in recs {
                    records.insert(r.seq, r);
                }
            }
        }

        // Pick the chain reaching the furthest contiguous head; ties
        // prefer the newer start (less replay). `None` = the base image.
        let contiguous_head = |start: u64| {
            let mut head = start;
            while records.contains_key(&(head + 1)) {
                head += 1;
            }
            head
        };
        let mut best: (Option<&CheckpointImage>, u64, u64) = (None, 0, contiguous_head(0));
        for image in &images {
            let head = contiguous_head(image.seq);
            if head > best.2 || (head == best.2 && image.seq > best.1) {
                best = (Some(image), image.seq, head);
            }
        }
        let (image, start, head) = best;
        if let Some((&max_seq, _)) = records.last_key_value() {
            if max_seq > head {
                return Err(SpecError::Transaction(format!(
                    "recovery refused: commit {max_seq} is on disk but no retained \
                     checkpoint-plus-log chain reaches it contiguously (chain head {head}); \
                     a WAL segment or checkpoint is missing"
                )));
            }
        }

        // Restore: install the chosen image (if any), then replay the
        // suffix, rebuilding retained history along the way.
        if let Some(image) = image {
            image.install(base.kb_mut());
        }
        let mut history: VecDeque<CommitRecord> = VecDeque::new();
        for seq in start + 1..=head {
            let record = &records[&seq];
            let kb = base.kb_mut();
            let gens_before = pre_commit_gens(kb, &record.delta);
            let epoch_before = kb.epoch();
            replay(std::slice::from_ref(record), kb);
            history.push_back(CommitRecord {
                seq,
                epoch_before,
                gens_before,
                delta: record.delta.clone(),
            });
            while history.len() > DEFAULT_HISTORY {
                history.pop_front();
            }
        }

        // Position the live segment for the next append. A current
        // segment that starts past head+1 would leave a gap no future
        // recovery could bridge — refuse.
        if let Some(h) = cur_header {
            if h.start_seq > head + 1 {
                return Err(SpecError::Transaction(format!(
                    "recovery refused: current WAL segment starts at {} but the \
                     recovered head is {head}; an intermediate segment is missing",
                    h.start_seq
                )));
            }
        }
        let open_header = cur_header.unwrap_or_else(|| WalHeader::new(fp, head + 1));
        let (wal, _) =
            Wal::open_with_faults(&paths.wal, open_header, opts.io_faults).map_err(wal_err)?;

        let store = SpecStore::new(base);
        {
            let mut state = store.state.lock();
            state.seq = head;
            state.history = history;
            state.durable = Some(DurableState {
                wal: Some(wal),
                paths,
                fingerprint: fp,
                opts,
                since_checkpoint: head.saturating_sub(start),
            });
        }
        Ok((store, head))
    }

    /// Write a checkpoint of the current head on demand (and rotate the
    /// WAL). Returns the checkpointed sequence number. Errors on
    /// non-durable stores and on I/O failure — unlike the automatic
    /// cadence, an explicit request reports its outcome.
    pub fn checkpoint(&self) -> SpecResult<u64> {
        let spec = self.spec.read();
        let mut state = self.state.lock();
        if state.durable.is_none() {
            return Err(SpecError::Transaction(
                "checkpoint requested but the store has no write-ahead log".into(),
            ));
        }
        state.write_checkpoint(spec.kb()).map_err(wal_err)
    }

    /// The canonical fingerprint of the base image (durable stores only).
    pub fn base_fingerprint(&self) -> Option<u64> {
        self.state.lock().durable.as_ref().map(|d| d.fingerprint)
    }

    /// Sequence number of the newest commit (0 before the first).
    pub fn head_seq(&self) -> u64 {
        self.state.lock().seq
    }

    /// Run a read-only closure against the live specification (shared
    /// read lock — concurrent with other readers, excluded by writers).
    pub fn read<T>(&self, f: impl FnOnce(&Specification) -> T) -> T {
        f(&self.spec.read())
    }

    /// An MVCC snapshot pinned at the current head, tagged with its
    /// sequence number. O(#predicates); the clause store is shared
    /// copy-on-write with the live specification.
    pub fn snapshot(&self) -> (u64, Specification) {
        let spec = self.spec.read();
        let seq = self.state.lock().seq;
        (seq, spec.snapshot())
    }

    /// An MVCC snapshot pinned at commit `seq` (0 = the base image),
    /// reconstructed by un-applying the retained records newer than
    /// `seq`. Errors if those records are no longer retained (see
    /// [`DEFAULT_HISTORY`]) or `seq` is ahead of head.
    pub fn snapshot_at(&self, seq: u64) -> SpecResult<Specification> {
        let spec = self.spec.read();
        let state = self.state.lock();
        if seq > state.seq {
            return Err(SpecError::Transaction(format!(
                "snapshot sequence {seq} is ahead of head {}",
                state.seq
            )));
        }
        if seq == state.seq {
            return Ok(spec.snapshot());
        }
        // The suffix of history strictly newer than `seq`, oldest first.
        let start = state
            .history
            .iter()
            .position(|r| r.seq == seq + 1)
            .ok_or_else(|| {
                let oldest = state.history.front().map_or(state.seq, |r| r.seq - 1);
                SpecError::Transaction(format!(
                    "snapshot sequence {seq} is no longer retained: the retained window \
                     is {oldest}..={} (the store keeps the last {} commits)",
                    state.seq, state.cap
                ))
            })?;
        let newer: Vec<CommitRecord> = state.history.iter().skip(start).cloned().collect();
        Ok(spec.snapshot_at(&newer))
    }

    /// Commit one transaction: take the write lock, open a transaction,
    /// run `f`, and commit — or roll back completely if `f` errors. On
    /// success the commit gets the next sequence number, its
    /// [`CommitRecord`] joins the retained history, and (durable stores)
    /// its delta is appended to the WAL and fsynced before this returns.
    ///
    /// `f` must confine itself to clause operations (assert / retract /
    /// define): configuration changes inside a commit closure are neither
    /// recorded nor logged — route them through [`SpecStore::update`].
    ///
    /// A WAL append failure is reported as an error *after* the live
    /// state has committed: the log is then behind the store, and the
    /// caller should stop acknowledging writes and re-create the log.
    pub fn commit<T>(
        &self,
        f: impl FnOnce(&mut Specification) -> SpecResult<T>,
    ) -> SpecResult<(Committed, T)> {
        let mut spec = self.spec.write();
        let mut state = self.state.lock();
        if let Some(d) = state.durable.as_ref() {
            if d.wal.is_none() {
                return Err(SpecError::Transaction(
                    "write-ahead log unavailable (a previous checkpoint rotation failed); \
                     restart the server to recover"
                        .into(),
                ));
            }
        }
        let epoch_before = spec.kb().epoch();
        let gens: FxHashMap<PredKey, u64> = spec.kb().generations().collect();
        spec.begin_txn()?;
        let value = match f(&mut spec) {
            Ok(v) => v,
            Err(e) => {
                spec.rollback_txn()?;
                return Err(e);
            }
        };
        let delta = spec.commit_txn()?;
        let seq = state.seq + 1;
        let mut gens_before: Vec<(PredKey, u64)> = delta
            .dirty_preds()
            .into_iter()
            .map(|k| (k, gens.get(&k).copied().unwrap_or(0)))
            .collect();
        gens_before.sort_by_key(|g| (g.0.name.as_str(), g.0.arity));
        let mut checkpoint_due = false;
        if let Some(d) = state.durable.as_mut() {
            let wal = d.wal.as_mut().expect("checked above");
            wal.append(&delta).map_err(wal_err)?;
            d.since_checkpoint += 1;
            checkpoint_due = d
                .opts
                .checkpoint_interval
                .is_some_and(|n| d.since_checkpoint >= n);
        }
        state.history.push_back(CommitRecord {
            seq,
            epoch_before,
            gens_before,
            delta: delta.clone(),
        });
        while state.history.len() > state.cap {
            state.history.pop_front();
        }
        state.seq = seq;
        if checkpoint_due {
            // The commit is already durable in the WAL; a failed image
            // must not un-acknowledge it. Report and retry at the next
            // interval (rotation failures additionally park the WAL,
            // which the pre-commit check above turns into hard errors).
            if let Err(e) = state.write_checkpoint(spec.kb()) {
                eprintln!("gdp-store: checkpoint at seq {seq} failed: {e}");
            }
        }
        Ok((Committed { seq, delta }, value))
    }

    /// Run a configuration change (world view, tabling, declarations,
    /// index layout, …) against the live specification. Not logged, and
    /// retained history is cleared: snapshots of earlier sequences would
    /// otherwise resurrect old clauses under the *new* configuration.
    /// Head-pinned snapshots keep working.
    pub fn update<T>(&self, f: impl FnOnce(&mut Specification) -> SpecResult<T>) -> SpecResult<T> {
        let mut spec = self.spec.write();
        let mut state = self.state.lock();
        let value = f(&mut spec)?;
        state.history.clear();
        Ok(value)
    }
}

/// The pre-commit generations of the predicates `delta` dirties
/// (restricted, sorted for determinism).
fn pre_commit_gens(kb: &gdp_engine::KnowledgeBase, delta: &Delta) -> Vec<(PredKey, u64)> {
    let mut gens: Vec<(PredKey, u64)> = delta
        .dirty_preds()
        .into_iter()
        .map(|k| (k, kb.generation(k)))
        .collect();
    gens.sort_by_key(|g| (g.0.name.as_str(), g.0.arity));
    gens
}

fn wal_err(e: std::io::Error) -> SpecError {
    SpecError::Transaction(format!("write-ahead log: {e}"))
}

fn mismatched_base(what: &str, found: u64, expected: u64) -> SpecError {
    SpecError::Transaction(format!(
        "recovery refused: {what} was created over a different base image \
         (its fingerprint is {found:016x}, this base hashes to {expected:016x}); \
         the --load files or base setup changed since the log was created"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::FactPat;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gdp-store-{tag}-{}.wal", std::process::id()));
        p
    }

    fn base() -> Specification {
        let mut spec = Specification::new();
        spec.assert_fact(FactPat::new("road").arg("r1")).unwrap();
        spec
    }

    fn road_count(spec: &Specification) -> usize {
        spec.query(FactPat::new("road").arg("X")).unwrap().len()
    }

    #[test]
    fn store_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SpecStore>();
    }

    #[test]
    fn snapshot_is_isolated_from_later_commits() {
        let store = SpecStore::new(base());
        let (seq, snap) = store.snapshot();
        assert_eq!(seq, 0);
        store
            .commit(|spec| spec.assert_fact(FactPat::new("road").arg("r2")))
            .unwrap();
        assert_eq!(road_count(&snap), 1);
        assert_eq!(store.read(road_count), 2);
    }

    #[test]
    fn snapshot_at_rewinds_to_any_retained_seq() {
        let store = SpecStore::new(base());
        for i in 2..=5 {
            store
                .commit(|spec| spec.assert_fact(FactPat::new("road").arg(format!("r{i}").as_str())))
                .unwrap();
        }
        for seq in 0..=4 {
            let snap = store.snapshot_at(seq).unwrap();
            assert_eq!(road_count(&snap), seq as usize + 1, "at seq {seq}");
            assert!(snap.kb().check_index_integrity().is_ok());
        }
        assert!(store.snapshot_at(99).is_err());
    }

    #[test]
    fn failed_commit_rolls_back_completely() {
        let store = SpecStore::new(base());
        let err = store.commit(|spec| {
            spec.assert_fact(FactPat::new("road").arg("r2"))?;
            Err::<(), _>(SpecError::UnknownModel("nope".into()))
        });
        assert!(err.is_err());
        assert_eq!(store.head_seq(), 0);
        assert_eq!(store.read(road_count), 1);
    }

    #[test]
    fn recover_reproduces_live_store() {
        let path = temp_path("recover");
        let _ = std::fs::remove_file(&path);
        let store = SpecStore::create_wal(base(), &path).unwrap();
        for i in 2..=4 {
            store
                .commit(|spec| spec.assert_fact(FactPat::new("road").arg(format!("r{i}").as_str())))
                .unwrap();
        }
        let live_epoch = store.read(|s| s.kb().epoch());
        drop(store);
        let (recovered, replayed) = SpecStore::recover(base(), &path).unwrap();
        assert_eq!(replayed, 3);
        assert_eq!(recovered.head_seq(), 3);
        assert_eq!(recovered.read(road_count), 4);
        assert_eq!(recovered.read(|s| s.kb().epoch()), live_epoch);
        // History was rebuilt: pinned snapshots work across the restart.
        assert_eq!(road_count(&recovered.snapshot_at(1).unwrap()), 2);
        // And the recovered store can keep committing to the same log.
        recovered
            .commit(|spec| spec.assert_fact(FactPat::new("road").arg("r5")))
            .unwrap();
        assert_eq!(recovered.head_seq(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn update_clears_history_but_head_snapshots_survive() {
        let store = SpecStore::new(base());
        store
            .commit(|spec| spec.assert_fact(FactPat::new("road").arg("r2")))
            .unwrap();
        store
            .update(|spec| {
                spec.declare_model("m1");
                Ok(())
            })
            .unwrap();
        assert!(store.snapshot_at(0).is_err());
        let (seq, snap) = store.snapshot();
        assert_eq!(seq, 1);
        assert_eq!(road_count(&snap), 2);
    }
}
