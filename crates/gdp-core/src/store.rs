//! Concurrent serving layer: one writer, many MVCC snapshot readers.
//!
//! A [`SpecStore`] wraps a [`Specification`] for server-style use:
//!
//! * **Writers** funnel through [`SpecStore::commit`], which wraps the
//!   closure in a transaction ([`Specification::begin_txn`] /
//!   [`Specification::commit_txn`]), assigns the commit a monotone
//!   sequence number, and retains its [`CommitRecord`] — the committed
//!   [`Delta`] plus the pre-commit epoch and per-predicate generations.
//! * **Readers** call [`SpecStore::snapshot`] (head) or
//!   [`SpecStore::snapshot_at`] (a retained earlier sequence) and get a
//!   private [`Specification`] pinned to that generation. Snapshots share
//!   the clause store copy-on-write — no clause is cloned — so taking one
//!   is O(#predicates), and queries or audits against it are untouched by
//!   writer commits that land afterwards.
//! * **Durability** is optional: a store opened with
//!   [`SpecStore::create_wal`] (or recovered with [`SpecStore::recover`])
//!   appends every committed delta to a write-ahead log
//!   ([`gdp_engine::wal::Wal`]) and fsyncs before the commit is
//!   acknowledged. [`SpecStore::recover`] replays the log over a
//!   caller-built base specification and reproduces the live store
//!   exactly — clause order, indexes, generation counters and epoch.
//!
//! The store records only *clause* operations. Configuration changes —
//! world view, tabling, index layout, declarations of models or domains —
//! go through [`SpecStore::update`], which invalidates retained history
//! (old snapshots would lie about configuration) and is not logged; on
//! recovery the caller rebuilds the same base configuration first, then
//! replays the log (the standard "base image + log" arrangement).

use std::collections::VecDeque;
use std::path::Path;

use parking_lot::{Mutex, RwLock};

use gdp_engine::wal::{replay, Wal};
use gdp_engine::{CommitRecord, Delta, FxHashMap, PredKey};

use crate::error::{SpecError, SpecResult};
use crate::spec::Specification;

/// How many [`CommitRecord`]s a store retains by default. Snapshots can
/// be pinned at most this many commits behind head; older generations
/// are no longer reconstructible (the records have been dropped).
pub const DEFAULT_HISTORY: usize = 64;

/// Receipt of one successful [`SpecStore::commit`].
#[derive(Clone, Debug)]
pub struct Committed {
    /// The commit's sequence number (1-based, strictly monotone).
    pub seq: u64,
    /// The committed operations — the currency of
    /// [`Specification::audit_incremental`].
    pub delta: Delta,
}

struct StoreState {
    /// Sequence number of the newest commit (0 = base image).
    seq: u64,
    /// Retained commit records, oldest first; `back().seq == seq`.
    history: VecDeque<CommitRecord>,
    /// Retention cap for `history`.
    cap: usize,
    /// Write-ahead log, when durability is on.
    wal: Option<Wal>,
}

/// A [`Specification`] behind a single-writer / multi-reader MVCC
/// facade. See the module docs.
pub struct SpecStore {
    spec: RwLock<Specification>,
    state: Mutex<StoreState>,
}

// Lock order everywhere: `spec` first, then `state`.

impl SpecStore {
    /// Serve `spec` with the default history retention and no WAL.
    pub fn new(spec: Specification) -> SpecStore {
        SpecStore::with_capacity(spec, DEFAULT_HISTORY)
    }

    /// Serve `spec`, retaining up to `cap` commit records for
    /// [`SpecStore::snapshot_at`].
    pub fn with_capacity(spec: Specification, cap: usize) -> SpecStore {
        SpecStore {
            spec: RwLock::new(spec),
            state: Mutex::new(StoreState {
                seq: 0,
                history: VecDeque::new(),
                cap,
                wal: None,
            }),
        }
    }

    /// Serve `spec` durably: create a fresh write-ahead log at `path`
    /// (truncating anything there) and append every subsequent commit to
    /// it. `spec` is the *base image* — [`SpecStore::recover`] must be
    /// given an identically-built base to reproduce the store.
    pub fn create_wal(spec: Specification, path: &Path) -> SpecResult<SpecStore> {
        let wal = Wal::create(path).map_err(wal_err)?;
        let store = SpecStore::new(spec);
        store.state.lock().wal = Some(wal);
        Ok(store)
    }

    /// Re-open a durable store: read the log at `path` (truncating any
    /// torn tail), replay the committed deltas over `base` — which must
    /// be built exactly as the original base image was — and resume
    /// serving, positioned to append the next commit. Retained history is
    /// rebuilt from the replayed records (up to the retention cap), so
    /// pinned snapshots work across a restart. Returns the store and the
    /// number of commits replayed.
    pub fn recover(mut base: Specification, path: &Path) -> SpecResult<(SpecStore, u64)> {
        let (wal, records) = Wal::open(path).map_err(wal_err)?;
        let mut history: VecDeque<CommitRecord> = VecDeque::new();
        let mut seq = 0;
        for record in &records {
            let kb = base.kb_mut();
            let gens_before = pre_commit_gens(kb, &record.delta);
            let epoch_before = kb.epoch();
            replay(std::slice::from_ref(record), kb);
            history.push_back(CommitRecord {
                seq: record.seq,
                epoch_before,
                gens_before,
                delta: record.delta.clone(),
            });
            while history.len() > DEFAULT_HISTORY {
                history.pop_front();
            }
            seq = record.seq;
        }
        let store = SpecStore::new(base);
        {
            let mut state = store.state.lock();
            state.seq = seq;
            state.history = history;
            state.wal = Some(wal);
        }
        Ok((store, seq))
    }

    /// Sequence number of the newest commit (0 before the first).
    pub fn head_seq(&self) -> u64 {
        self.state.lock().seq
    }

    /// Run a read-only closure against the live specification (shared
    /// read lock — concurrent with other readers, excluded by writers).
    pub fn read<T>(&self, f: impl FnOnce(&Specification) -> T) -> T {
        f(&self.spec.read())
    }

    /// An MVCC snapshot pinned at the current head, tagged with its
    /// sequence number. O(#predicates); the clause store is shared
    /// copy-on-write with the live specification.
    pub fn snapshot(&self) -> (u64, Specification) {
        let spec = self.spec.read();
        let seq = self.state.lock().seq;
        (seq, spec.snapshot())
    }

    /// An MVCC snapshot pinned at commit `seq` (0 = the base image),
    /// reconstructed by un-applying the retained records newer than
    /// `seq`. Errors if those records are no longer retained (see
    /// [`DEFAULT_HISTORY`]) or `seq` is ahead of head.
    pub fn snapshot_at(&self, seq: u64) -> SpecResult<Specification> {
        let spec = self.spec.read();
        let state = self.state.lock();
        if seq > state.seq {
            return Err(SpecError::Transaction(format!(
                "snapshot sequence {seq} is ahead of head {}",
                state.seq
            )));
        }
        if seq == state.seq {
            return Ok(spec.snapshot());
        }
        // The suffix of history strictly newer than `seq`, oldest first.
        let start = state
            .history
            .iter()
            .position(|r| r.seq == seq + 1)
            .ok_or_else(|| {
                SpecError::Transaction(format!(
                    "snapshot sequence {seq} is no longer retained (history starts at {})",
                    state.history.front().map_or(state.seq, |r| r.seq)
                ))
            })?;
        let newer: Vec<CommitRecord> = state.history.iter().skip(start).cloned().collect();
        Ok(spec.snapshot_at(&newer))
    }

    /// Commit one transaction: take the write lock, open a transaction,
    /// run `f`, and commit — or roll back completely if `f` errors. On
    /// success the commit gets the next sequence number, its
    /// [`CommitRecord`] joins the retained history, and (durable stores)
    /// its delta is appended to the WAL and fsynced before this returns.
    ///
    /// `f` must confine itself to clause operations (assert / retract /
    /// define): configuration changes inside a commit closure are neither
    /// recorded nor logged — route them through [`SpecStore::update`].
    ///
    /// A WAL append failure is reported as an error *after* the live
    /// state has committed: the log is then behind the store, and the
    /// caller should stop acknowledging writes and re-create the log.
    pub fn commit<T>(
        &self,
        f: impl FnOnce(&mut Specification) -> SpecResult<T>,
    ) -> SpecResult<(Committed, T)> {
        let mut spec = self.spec.write();
        let mut state = self.state.lock();
        let epoch_before = spec.kb().epoch();
        let gens: FxHashMap<PredKey, u64> = spec.kb().generations().collect();
        spec.begin_txn()?;
        let value = match f(&mut spec) {
            Ok(v) => v,
            Err(e) => {
                spec.rollback_txn()?;
                return Err(e);
            }
        };
        let delta = spec.commit_txn()?;
        let seq = state.seq + 1;
        let mut gens_before: Vec<(PredKey, u64)> = delta
            .dirty_preds()
            .into_iter()
            .map(|k| (k, gens.get(&k).copied().unwrap_or(0)))
            .collect();
        gens_before.sort_by_key(|g| (g.0.name.as_str(), g.0.arity));
        if let Some(wal) = state.wal.as_mut() {
            wal.append(&delta).map_err(wal_err)?;
        }
        state.history.push_back(CommitRecord {
            seq,
            epoch_before,
            gens_before,
            delta: delta.clone(),
        });
        while state.history.len() > state.cap {
            state.history.pop_front();
        }
        state.seq = seq;
        Ok((Committed { seq, delta }, value))
    }

    /// Run a configuration change (world view, tabling, declarations,
    /// index layout, …) against the live specification. Not logged, and
    /// retained history is cleared: snapshots of earlier sequences would
    /// otherwise resurrect old clauses under the *new* configuration.
    /// Head-pinned snapshots keep working.
    pub fn update<T>(&self, f: impl FnOnce(&mut Specification) -> SpecResult<T>) -> SpecResult<T> {
        let mut spec = self.spec.write();
        let mut state = self.state.lock();
        let value = f(&mut spec)?;
        state.history.clear();
        Ok(value)
    }
}

/// The pre-commit generations of the predicates `delta` dirties
/// (restricted, sorted for determinism).
fn pre_commit_gens(kb: &gdp_engine::KnowledgeBase, delta: &Delta) -> Vec<(PredKey, u64)> {
    let mut gens: Vec<(PredKey, u64)> = delta
        .dirty_preds()
        .into_iter()
        .map(|k| (k, kb.generation(k)))
        .collect();
    gens.sort_by_key(|g| (g.0.name.as_str(), g.0.arity));
    gens
}

fn wal_err(e: std::io::Error) -> SpecError {
    SpecError::Transaction(format!("write-ahead log: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::FactPat;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gdp-store-{tag}-{}.wal", std::process::id()));
        p
    }

    fn base() -> Specification {
        let mut spec = Specification::new();
        spec.assert_fact(FactPat::new("road").arg("r1")).unwrap();
        spec
    }

    fn road_count(spec: &Specification) -> usize {
        spec.query(FactPat::new("road").arg("X")).unwrap().len()
    }

    #[test]
    fn store_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SpecStore>();
    }

    #[test]
    fn snapshot_is_isolated_from_later_commits() {
        let store = SpecStore::new(base());
        let (seq, snap) = store.snapshot();
        assert_eq!(seq, 0);
        store
            .commit(|spec| spec.assert_fact(FactPat::new("road").arg("r2")))
            .unwrap();
        assert_eq!(road_count(&snap), 1);
        assert_eq!(store.read(road_count), 2);
    }

    #[test]
    fn snapshot_at_rewinds_to_any_retained_seq() {
        let store = SpecStore::new(base());
        for i in 2..=5 {
            store
                .commit(|spec| spec.assert_fact(FactPat::new("road").arg(format!("r{i}").as_str())))
                .unwrap();
        }
        for seq in 0..=4 {
            let snap = store.snapshot_at(seq).unwrap();
            assert_eq!(road_count(&snap), seq as usize + 1, "at seq {seq}");
            assert!(snap.kb().check_index_integrity().is_ok());
        }
        assert!(store.snapshot_at(99).is_err());
    }

    #[test]
    fn failed_commit_rolls_back_completely() {
        let store = SpecStore::new(base());
        let err = store.commit(|spec| {
            spec.assert_fact(FactPat::new("road").arg("r2"))?;
            Err::<(), _>(SpecError::UnknownModel("nope".into()))
        });
        assert!(err.is_err());
        assert_eq!(store.head_seq(), 0);
        assert_eq!(store.read(road_count), 1);
    }

    #[test]
    fn recover_reproduces_live_store() {
        let path = temp_path("recover");
        let _ = std::fs::remove_file(&path);
        let store = SpecStore::create_wal(base(), &path).unwrap();
        for i in 2..=4 {
            store
                .commit(|spec| spec.assert_fact(FactPat::new("road").arg(format!("r{i}").as_str())))
                .unwrap();
        }
        let live_epoch = store.read(|s| s.kb().epoch());
        drop(store);
        let (recovered, replayed) = SpecStore::recover(base(), &path).unwrap();
        assert_eq!(replayed, 3);
        assert_eq!(recovered.head_seq(), 3);
        assert_eq!(recovered.read(road_count), 4);
        assert_eq!(recovered.read(|s| s.kb().epoch()), live_epoch);
        // History was rebuilt: pinned snapshots work across the restart.
        assert_eq!(road_count(&recovered.snapshot_at(1).unwrap()), 2);
        // And the recovered store can keep committing to the same log.
        recovered
            .commit(|spec| spec.assert_fact(FactPat::new("road").arg("r5")))
            .unwrap();
        assert_eq!(recovered.head_seq(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn update_clears_history_but_head_snapshots_survive() {
        let store = SpecStore::new(base());
        store
            .commit(|spec| spec.assert_fact(FactPat::new("road").arg("r2")))
            .unwrap();
        store
            .update(|spec| {
                spec.declare_model("m1");
                Ok(())
            })
            .unwrap();
        assert!(store.snapshot_at(0).is_err());
        let (seq, snap) = store.snapshot();
        assert_eq!(seq, 1);
        assert_eq!(road_count(&snap), 2);
    }
}
