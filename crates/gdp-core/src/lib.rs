//! # gdp-core — the GDP requirements formalism
//!
//! Executable implementation of the formalism from Gruia-Catalin Roman,
//! *"Formal Specification of Geographic Data Processing Requirements"*
//! (ICDE 1986 / IEEE TKDE 2(4), 1990): a restricted, Prolog-executable
//! subset of first-order logic for specifying GDP data and knowledge
//! requirements, extended with second-order meta-rules for user-defined
//! reasoning about space, time, and accuracy.
//!
//! The paper's concept map and where each concept lives here:
//!
//! | paper concept (§) | here |
//! |---|---|
//! | objects (II.A) | [`Specification::declare_object`] |
//! | basic facts (II.B) | [`FactPat`] + [`Specification::assert_fact`] |
//! | virtual facts (III.A) | [`Rule`] + [`Specification::define`] |
//! | semantic domains (III.B) | [`DomainDef`], [`Sort`] |
//! | constraints (III.C) | [`Constraint`] + [`Specification::check_consistency`] |
//! | models (III.D) | [`FactPat::model`], [`Specification::declare_model`] |
//! | world view (III.E) | [`Specification::set_world_view`] |
//! | meta-facts/-constraints (IV.A–B) | [`rule::RawClause`] packs over the reified `h/5` |
//! | meta-models, meta-view (IV.C–D) | [`MetaModel`], [`Specification::set_meta_view`] |
//! | spatial operators (V) | `gdp-spatial` (builds on [`SpaceQual`]) |
//! | temporal operators (VI) | `gdp-temporal` (builds on [`TimeQual`]) |
//! | accuracy (VII) | `gdp-fuzzy` (builds on [`Specification::assert_fuzzy_fact`]) |
//!
//! ## Quick example — the paper's bridge status (§III.A)
//!
//! ```
//! use gdp_core::{FactPat, Formula, Rule, Specification};
//!
//! let mut spec = Specification::new();
//! spec.assert_fact(FactPat::new("bridge").arg("b1")).unwrap();
//! spec.assert_fact(FactPat::new("bridge").arg("b2")).unwrap();
//! spec.assert_fact(FactPat::new("open").arg("b1")).unwrap();
//!
//! // A bridge that is not open is assumed to be closed.
//! spec.define(Rule::new(
//!     FactPat::new("closed").arg("X"),
//!     Formula::and(
//!         Formula::fact(FactPat::new("bridge").arg("X")),
//!         Formula::not(Formula::fact(FactPat::new("open").arg("X"))),
//!     ),
//! )).unwrap();
//!
//! assert!(spec.provable(FactPat::new("closed").arg("b2")).unwrap());
//! assert!(!spec.provable(FactPat::new("closed").arg("b1")).unwrap());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod domains;
mod error;
pub mod explain;
mod fact;
mod formula;
mod meta;
mod pattern;
mod qualifiers;
pub mod reify;
pub mod rule;
mod spec;
pub mod store;

pub use domains::{DomainDef, DomainTable, Sort};
pub use error::{SpecError, SpecResult};
pub use explain::{decode, explain, Proof};
pub use fact::{ArgsPat, FactPat, Target};
pub use formula::{AggOp, CmpOp, Formula};
pub use meta::{MetaModel, MetaModelBuilder};
pub use pattern::{Pat, VarTable};
pub use qualifiers::{IntervalPat, SpaceQual, TimeQual};
pub use rule::{Constraint, ConstraintBuilder, RawClause, Rule};
pub use spec::{
    Answer, AuditFailure, AuditReport, RetryPolicy, SortEnforcement, Specification, Violation,
};
pub use store::{
    Committed, DurabilityOptions, SpecStore, DEFAULT_CHECKPOINT_INTERVAL, DEFAULT_HISTORY,
};

/// The default model ω (§III.D): "any fact or constraint violation that is
/// not explicitly qualified by some model is associated with a default
/// model".
pub const DEFAULT_MODEL: &str = "omega";

/// The distinguished constraint-violation predicate (§III.C).
pub const ERROR_PRED: &str = "error";
