//! The specification database.
//!
//! A [`Specification`] is the executable counterpart of one GDP
//! requirements document: it owns the knowledge base, the semantic-domain
//! table, the object/model/predicate registries, the active world view
//! (§III.E) and meta-view (§IV.D), and offers the assertion, definition,
//! query, and consistency-checking API the rest of the system builds on.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use gdp_engine::{
    list_from_iter, list_to_vec, Budget, CancelToken, ChaosConfig, CommitRecord, CyclePolicy,
    Delta, EngineError, FxHashMap, FxHashSet, GroupId, KnowledgeBase, ObserverSink, Port, PredKey,
    Profiler, RingTrace, Solver, SolverStats, Term, TraceEvent, TraceSink,
};

use crate::domains::{register_domain_native, DomainDef, DomainTable, Sort};
use crate::error::{SpecError, SpecResult};
use crate::fact::{FactPat, Target};
use crate::formula::Formula;
use crate::meta::MetaModel;
use crate::pattern::VarTable;
use crate::reify::{self, functors};
use crate::rule::{Constraint, RawClause, Rule};
use crate::{DEFAULT_MODEL, ERROR_PRED};

/// Clause groups used by the specification kernel.
mod groups {
    pub const KERNEL: &str = "kernel";
    pub const WORLD_VIEW: &str = "wv";
    pub const REGISTRY: &str = "registry";
    pub const FACTS: &str = "facts";
    pub const RULES: &str = "rules";
    pub const NOW: &str = "now";
}

/// One answer to a query: named variables and their values.
#[derive(Clone, Debug, PartialEq)]
pub struct Answer {
    bindings: Vec<(String, Term)>,
}

impl Answer {
    /// The value bound to the named variable.
    pub fn get(&self, name: &str) -> Option<&Term> {
        self.bindings
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    /// All `(name, value)` pairs.
    pub fn bindings(&self) -> &[(String, Term)] {
        &self.bindings
    }
}

/// A constraint violation found by [`Specification::check_consistency`].
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// The model whose constraint fired.
    pub model: Term,
    /// The violation tag (first argument of `ERROR`).
    pub error_type: Term,
    /// Witness arguments.
    pub witnesses: Vec<Term>,
    /// Spatial qualifier of the violation (usually `any`).
    pub space: Term,
    /// Temporal qualifier of the violation (usually `any`).
    pub time: Term,
}

/// One world-view member the audit could not fully evaluate: its goal,
/// the final error after any retries, and how many retries were spent.
/// Collected in [`AuditReport::incomplete`] — the audit is degraded, not
/// destroyed, by a failing goal.
#[derive(Clone, Debug)]
pub struct AuditFailure {
    /// The world-view member whose audit goal failed.
    pub model: String,
    /// The per-model `ERROR`-derivation goal that failed.
    pub goal: Term,
    /// The error that finally stopped the goal.
    pub error: EngineError,
    /// Retries attempted under the active [`RetryPolicy`] before giving
    /// up (0 when the error was not recoverable or retries were off).
    pub attempts: u32,
}

/// How [`Specification::audit_world_views`] (and
/// [`Specification::check_consistency`]) re-attempt goals that exhausted
/// their budget. Each retry runs sequentially with the step limit
/// multiplied by `escalation` once more; only errors where
/// [`EngineError::is_recoverable`] holds (step/depth exhaustion) are
/// retried — deadlines and cancellations are externally imposed stops,
/// and panics are bugs no budget fixes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries per goal (0 disables retrying — the default).
    pub attempts: u32,
    /// Step-limit multiplier applied per retry (clamped to ≥ 2).
    pub escalation: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 0,
            escalation: 4,
        }
    }
}

impl RetryPolicy {
    /// A policy retrying up to `attempts` times with the default 4×
    /// step-limit escalation.
    pub fn retries(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            attempts,
            ..RetryPolicy::default()
        }
    }

    /// The step limit for retry number `attempt` (1-based) over a base
    /// limit, saturating at `u64::MAX`.
    fn escalated(&self, base: u64, attempt: u32) -> u64 {
        let factor = self.escalation.max(2);
        (0..attempt).fold(base, |acc, _| acc.saturating_mul(factor))
    }
}

/// The result of a parallel world-view audit
/// ([`Specification::audit_world_views`]).
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// All violations, deduplicated, in the sequential audit's order
    /// (world-view order, then derivation order within each model).
    pub violations: Vec<Violation>,
    /// Violations each world-view member contributed (after global
    /// deduplication), in world-view order.
    pub per_model: Vec<(String, usize)>,
    /// World-view members whose audit goal failed (after any retries):
    /// the report's violations are exactly those derivable from the
    /// *other* members — partial but honest. Empty on a clean audit.
    pub incomplete: Vec<AuditFailure>,
    /// Execution counters merged across all workers.
    pub stats: SolverStats,
    /// The worker count actually used.
    pub workers: usize,
}

impl AuditReport {
    /// Did every world-view member evaluate to completion?
    pub fn is_complete(&self) -> bool {
        self.incomplete.is_empty()
    }
}

/// Cached outcome of one world-view member's audit goal: its raw
/// (pre-deduplication) violation list in derivation order, or the failure
/// that stopped it. The raw list — not the merged report — is what the
/// incremental audit must retain: global deduplication depends on which
/// *earlier* members already produced each violation, so it is re-run over
/// the merged member sequence on every re-audit.
#[derive(Clone, Debug)]
enum MemberOutcome {
    /// The goal completed with these violations (pre-dedup, in order).
    Solved(Vec<Violation>),
    /// The goal failed after `attempts` retries.
    Failed {
        /// The final error.
        error: EngineError,
        /// Retries spent under the policy.
        attempts: u32,
    },
}

/// Per-member results of the most recent full audit, keyed by the world
/// view they were computed under. Invalidated wholesale when the world
/// view changes; members are selectively re-solved by
/// [`Specification::audit_incremental`].
#[derive(Clone, Debug)]
struct AuditCache {
    /// The world view the cache was computed under (member order matters).
    world_view: Vec<String>,
    /// One outcome per member, in world-view order.
    members: Vec<MemberOutcome>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}'ERROR({}", self.model, self.error_type)?;
        for w in &self.witnesses {
            write!(f, ", {w}")?;
        }
        write!(f, ")")
    }
}

/// How declared sorts are enforced at assertion time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SortEnforcement {
    /// Reject ill-sorted basic facts with [`SpecError::SortViolation`].
    #[default]
    Reject,
    /// Accept everything; rely on user constraints (`Formula::Domain`) to
    /// flag anomalies — the paper's own style (§III.C).
    Off,
}

/// The executable specification database. See the module docs.
pub struct Specification {
    kb: KnowledgeBase,
    domains: Arc<RwLock<DomainTable>>,
    signatures: FxHashMap<(String, usize), Vec<Sort>>,
    objects: FxHashSet<String>,
    models: FxHashSet<String>,
    meta_models: FxHashMap<String, MetaModel>,
    active_meta: Vec<String>,
    world_view: Vec<String>,
    sort_enforcement: SortEnforcement,
    step_limit: u64,
    depth_limit: u32,
    /// Execution counters of the most recent query (interior mutability:
    /// queries take `&self`).
    last_stats: Mutex<SolverStats>,
    /// Keep a bounded port-event ring for each query (off by default).
    trace_enabled: bool,
    /// Accumulate a per-predicate profile across queries (off by default).
    profile_enabled: bool,
    /// Ring capacity used while tracing: the last N port events survive.
    trace_capacity: usize,
    /// The accumulated per-predicate profile (interior mutability: queries
    /// take `&self`, like `last_stats`).
    profiler: Mutex<Profiler>,
    /// The port-event ring of the most recent traced query.
    last_trace: Mutex<Option<RingTrace>>,
    /// Optional wall-clock bound attached to every query budget.
    deadline: Option<Duration>,
    /// The session's cancellation token, attached to every query budget.
    /// Cloned out via [`Self::cancel_token`] so e.g. a Ctrl-C handler can
    /// trip it from another thread.
    cancel: CancelToken,
    /// How audits re-attempt budget-exhausted goals.
    retry: RetryPolicy,
    /// Deterministic fault injection for audits (tests / `GDP_CHAOS`).
    chaos: Option<ChaosConfig>,
    /// Incremental-audit mode (`GDP_INCREMENTAL=1`): full audits cache
    /// per-member results so delta-driven re-audits can skip members the
    /// delta cannot have affected.
    incremental: bool,
    /// Recorder mark of the open transaction, if any.
    txn_start: Option<usize>,
    /// Per-member results of the most recent audit (incremental mode
    /// only; interior mutability — audits take `&self`).
    audit_cache: Mutex<Option<AuditCache>>,
}

impl Default for Specification {
    fn default() -> Self {
        Specification::new()
    }
}

impl std::fmt::Debug for Specification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Specification")
            .field("clauses", &self.kb.clause_count())
            .field("objects", &self.objects.len())
            .field("models", &self.models.len())
            .field("world_view", &self.world_view)
            .field("meta_view", &self.active_meta)
            .finish()
    }
}

impl Specification {
    /// A fresh specification: default model ω declared and active, kernel
    /// visibility rules installed, `domain_member/2` native registered.
    pub fn new() -> Specification {
        let mut spec = Specification {
            kb: KnowledgeBase::new(),
            domains: Arc::new(RwLock::new(DomainTable::default())),
            signatures: FxHashMap::default(),
            objects: FxHashSet::default(),
            models: FxHashSet::default(),
            meta_models: FxHashMap::default(),
            active_meta: Vec::new(),
            world_view: vec![DEFAULT_MODEL.to_string()],
            sort_enforcement: SortEnforcement::default(),
            step_limit: 10_000_000,
            depth_limit: 256,
            last_stats: Mutex::new(SolverStats::default()),
            trace_enabled: false,
            profile_enabled: false,
            trace_capacity: 512,
            profiler: Mutex::new(Profiler::new()),
            last_trace: Mutex::new(None),
            deadline: None,
            cancel: CancelToken::new(),
            retry: RetryPolicy::default(),
            chaos: None,
            incremental: false,
            txn_start: None,
            audit_cache: Mutex::new(None),
        };
        register_domain_native(&mut spec.kb, Arc::clone(&spec.domains));
        spec.install_kernel();
        spec.declare_model(DEFAULT_MODEL);
        spec.apply_world_view();
        // Ablation hook: `GDP_TABLING=on` (nominated predicates) or
        // `GDP_TABLING=all` flips answer tabling on for every
        // specification, so whole harnesses (the E1–E16 experiment runner,
        // integration suites) can be re-run tabled without code changes.
        // Unset or any other value leaves tabling off — the default.
        match std::env::var("GDP_TABLING").as_deref() {
            Ok("on") => spec.enable_tabling(true),
            Ok("all") => {
                spec.enable_tabling(true);
                spec.set_table_all(true);
            }
            _ => {}
        }
        // Observability hooks, same spirit: `GDP_TRACE=1` keeps a bounded
        // ring of port events per query, `GDP_PROFILE=1` accumulates a
        // per-predicate profile. Both off (and costing nothing) by default.
        if matches!(std::env::var("GDP_TRACE").as_deref(), Ok("1") | Ok("on")) {
            spec.set_trace(true);
        }
        if matches!(std::env::var("GDP_PROFILE").as_deref(), Ok("1") | Ok("on")) {
            spec.set_profile(true);
        }
        // Fault-injection hook: `GDP_CHAOS=<seed>` (or `kind:K`) arms the
        // deterministic chaos harness for every audit this specification
        // runs — the CI chaos leg re-runs the fault-tolerance suite under
        // a seed matrix this way. Unset: no injection, no overhead.
        spec.chaos = ChaosConfig::from_env();
        // Incremental hook: `GDP_INCREMENTAL=1` arms per-member audit
        // caching, so harnesses that interleave transactions with audits
        // get delta-driven re-audits without code changes.
        if matches!(
            std::env::var("GDP_INCREMENTAL").as_deref(),
            Ok("1") | Ok("on")
        ) {
            spec.incremental = true;
        }
        // Indexing hook: `GDP_INDEX=off` (or `0`) disables clause-selection
        // indexing — hash and range alike — so every call scans every
        // clause, the 1986-Prolog baseline. The equivalence suites diff
        // answers across this switch; unset or any other value leaves
        // indexing on (the default).
        if matches!(std::env::var("GDP_INDEX").as_deref(), Ok("off") | Ok("0")) {
            spec.kb.set_indexing(false);
        }
        spec
    }

    fn install_kernel(&mut self) {
        let g = GroupId::named(groups::KERNEL);
        // The reified relations put the model first, so classic first-
        // argument indexing would degenerate to a scan under the default
        // single-model view — but multi-model worlds call h/5 with the
        // model bound (visible/5 binds it through active_model/1), so the
        // model position earns its keep. Index h/5 on the model, the
        // spatial qualifier, the predicate, and the argument list (keyed
        // by its first element); fh/6 likewise.
        self.kb
            .set_index_args(gdp_engine::PredKey::new("h", 5), &[0, 1, 3, 4]);
        self.kb
            .set_index_args(gdp_engine::PredKey::new("fh", 6), &[1, 4, 5]);
        // Range access paths on h/5, serving the bounds that the compiler's
        // pushdown planner and the temporal/spatial rewrites carry in
        // `range_call/2` wrappers:
        //  * the instant inside a `tat/1` temporal qualifier (the
        //    continuity assumption's between-scan constrains it to an
        //    open interval),
        //  * the second fact argument — the attribute-value slot of
        //    `reading(Obj, V)`-shaped facts, which comparison constraints
        //    bound (`V1 < V2`, `V2 =:= V1 + K`, …).
        // Facts without a numeric at the path (atom values, interval
        // qualifiers) stay on the unkeyed scan side of the index and are
        // always candidates, so the paths are safe for every h/5 shape.
        self.kb.add_range_index(
            gdp_engine::PredKey::new("h", 5),
            gdp_engine::RangeSpec::Interval(gdp_engine::ArgPath::arg(2).step("tat", 1, 0)),
        );
        self.kb.add_range_index(
            gdp_engine::PredKey::new("h", 5),
            gdp_engine::RangeSpec::Interval(
                gdp_engine::ArgPath::arg(4).step(".", 2, 1).step(".", 2, 0),
            ),
        );
        // visible(M, S, T, Q, A) :- active_model(M), h(M, S, T, Q, A).
        let (m, s, t, q, a) = (
            Term::var(0),
            Term::var(1),
            Term::var(2),
            Term::var(3),
            Term::var(4),
        );
        self.kb.assert_clause_in(
            g,
            reify::visible(m.clone(), s.clone(), t.clone(), q.clone(), a.clone()),
            Term::and(
                Term::compound(functors::active_model(), vec![m.clone()]),
                reify::holds(m.clone(), s.clone(), t.clone(), q.clone(), a.clone()),
            ),
        );
        // fvisible(M, S, T, Acc, Q, A) :- active_model(M), fh(M, S, T, Acc, Q, A).
        let acc = Term::var(5);
        self.kb.assert_clause_in(
            g,
            reify::fuzzy_visible(
                m.clone(),
                s.clone(),
                t.clone(),
                acc.clone(),
                q.clone(),
                a.clone(),
            ),
            Term::and(
                Term::compound(functors::active_model(), vec![m.clone()]),
                reify::fuzzy_holds(m, s, t, acc, q, a),
            ),
        );
        // List membership — needed by meta-model rule packs (spatial
        // acquisition, temporal intervals) and generally useful:
        //   member(X, [X | _]).   member(X, [_ | T]) :- member(X, T).
        let x = Term::var(0);
        let t2 = Term::var(1);
        self.kb.assert_clause_in(
            g,
            Term::pred("member", vec![x.clone(), Term::cons(x.clone(), t2.clone())]),
            Term::atom("true"),
        );
        self.kb.assert_clause_in(
            g,
            Term::pred(
                "member",
                vec![x.clone(), Term::cons(t2.clone(), Term::var(2))],
            ),
            Term::pred("member", vec![x, Term::var(2)]),
        );
    }

    // ----- declarations ---------------------------------------------------

    /// Declare an object designator (§II.A). Idempotent.
    pub fn declare_object(&mut self, name: &str) {
        if self.objects.insert(name.to_string()) {
            self.kb.assert_clause_in(
                GroupId::named(groups::REGISTRY),
                Term::compound(functors::is_object(), vec![Term::atom(name)]),
                Term::atom("true"),
            );
        }
    }

    /// Declare a model (§III.D). Idempotent. Declaring does not activate:
    /// a model's facts stay invisible until a world view includes it.
    pub fn declare_model(&mut self, name: &str) {
        if self.models.insert(name.to_string()) {
            self.kb.assert_clause_in(
                GroupId::named(groups::REGISTRY),
                Term::compound(functors::is_model(), vec![Term::atom(name)]),
                Term::atom("true"),
            );
        }
    }

    /// Declare a semantic domain (§III.B).
    pub fn declare_domain(&mut self, name: &str, def: DomainDef) -> SpecResult<()> {
        if !self.domains.write().insert(name, def) {
            return Err(SpecError::Redeclaration(name.to_string()));
        }
        Ok(())
    }

    /// Declare a predicate with its argument sorts, enabling many-sorted
    /// checking (§III.C). Domains named in the signature must be declared.
    pub fn declare_predicate(&mut self, name: &str, sorts: Vec<Sort>) -> SpecResult<()> {
        for s in &sorts {
            if let Sort::Domain(d) = s {
                if !self.domains.read().contains(d) {
                    return Err(SpecError::UnknownDomain(d.clone()));
                }
            }
        }
        let key = (name.to_string(), sorts.len());
        if self.signatures.contains_key(&key) {
            return Err(SpecError::Redeclaration(format!("{name}/{}", key.1)));
        }
        self.register_predicate(name);
        self.signatures.insert(key, sorts);
        Ok(())
    }

    fn register_predicate(&mut self, name: &str) {
        let head = Term::compound(functors::is_pred(), vec![Term::atom(name)]);
        // Idempotence: only assert the registry fact once.
        let already = self
            .kb
            .candidates(
                gdp_engine::PredKey {
                    name: functors::is_pred(),
                    arity: 1,
                },
                &gdp_engine::BindStore::new(),
                &[Term::atom(name)],
                &gdp_engine::BoundSet::default(),
            )
            .iter()
            .any(|c| c.head == head);
        if !already {
            self.kb
                .assert_clause_in(GroupId::named(groups::REGISTRY), head, Term::atom("true"));
        }
    }

    // ----- assertions -----------------------------------------------------

    /// Assert a basic fact (§II.B). The pattern must be ground; sorts are
    /// checked against the predicate's signature when one is declared and
    /// enforcement is on. `Sort::Object` positions auto-register their
    /// atoms as objects.
    pub fn assert_fact(&mut self, fact: FactPat) -> SpecResult<()> {
        let pred = fact
            .pred_name()
            .ok_or_else(|| SpecError::NonGroundFact(fact.pred.to_string()))?;
        let mut vars = Vec::new();
        fact.collect_vars(&mut vars);
        if !vars.is_empty() {
            return Err(SpecError::NonGroundFact(pred));
        }
        self.check_sorts(&pred, &fact)?;
        if let Some(crate::pattern::Pat::Atom(m)) = &fact.model {
            let m = m.clone();
            self.declare_model(&m);
        }
        self.register_predicate(&pred);
        let mut vt = VarTable::new();
        let term = fact.compile(&mut vt, Target::Holds);
        // A "ground" pattern may still contain wildcards; refuse those too.
        if !vt.is_empty() {
            return Err(SpecError::NonGroundFact(pred));
        }
        self.kb
            .try_assert_clause_in(GroupId::named(groups::FACTS), term, Term::atom("true"))?;
        Ok(())
    }

    /// Assert an accuracy-qualified fact `%a q(x)` (§VII.B). Stored in the
    /// separate fuzzy relation: it does **not** make the crisp fact
    /// provable.
    pub fn assert_fuzzy_fact(&mut self, fact: FactPat, accuracy: f64) -> SpecResult<()> {
        if !(0.0..=1.0).contains(&accuracy) {
            return Err(SpecError::InvalidAccuracy(accuracy));
        }
        let pred = fact
            .pred_name()
            .ok_or_else(|| SpecError::NonGroundFact(fact.pred.to_string()))?;
        let mut vars = Vec::new();
        fact.collect_vars(&mut vars);
        if !vars.is_empty() {
            return Err(SpecError::NonGroundFact(pred));
        }
        if let Some(crate::pattern::Pat::Atom(m)) = &fact.model {
            let m = m.clone();
            self.declare_model(&m);
        }
        self.register_predicate(&pred);
        let mut vt = VarTable::new();
        let term = fact.compile_fuzzy(
            &mut vt,
            &crate::pattern::Pat::Float(accuracy),
            Target::Holds,
        );
        if !vt.is_empty() {
            return Err(SpecError::NonGroundFact(pred));
        }
        self.kb
            .try_assert_clause_in(GroupId::named(groups::FACTS), term, Term::atom("true"))?;
        Ok(())
    }

    /// Withdraw a previously asserted basic fact ("data are often
    /// reinterpreted", §III.D — sometimes the raw datum itself is revised).
    /// The pattern must be ground, exactly as it was asserted. Returns
    /// whether a fact was removed.
    pub fn retract_fact(&mut self, fact: FactPat) -> SpecResult<bool> {
        let pred = fact
            .pred_name()
            .ok_or_else(|| SpecError::NonGroundFact(fact.pred.to_string()))?;
        let mut vars = Vec::new();
        fact.collect_vars(&mut vars);
        if !vars.is_empty() {
            return Err(SpecError::NonGroundFact(pred));
        }
        let mut vt = VarTable::new();
        let term = fact.compile(&mut vt, Target::Holds);
        if !vt.is_empty() {
            return Err(SpecError::NonGroundFact(pred));
        }
        Ok(self.kb.retract_fact(&term))
    }

    /// Withdraw a previously asserted fuzzy fact with its exact accuracy.
    pub fn retract_fuzzy_fact(&mut self, fact: FactPat, accuracy: f64) -> SpecResult<bool> {
        let pred = fact
            .pred_name()
            .ok_or_else(|| SpecError::NonGroundFact(fact.pred.to_string()))?;
        let mut vt = VarTable::new();
        let term = fact.compile_fuzzy(
            &mut vt,
            &crate::pattern::Pat::Float(accuracy),
            Target::Holds,
        );
        if !vt.is_empty() {
            return Err(SpecError::NonGroundFact(pred));
        }
        Ok(self.kb.retract_fact(&term))
    }

    fn check_sorts(&mut self, pred: &str, fact: &FactPat) -> SpecResult<()> {
        let Some(args) = fact.fixed_args() else {
            return Ok(());
        };
        let Some(sorts) = self
            .signatures
            .get(&(pred.to_string(), args.len()))
            .cloned()
        else {
            // No signature for this arity. If another arity is declared,
            // that's an arity mismatch worth reporting.
            if self.signatures.keys().any(|(n, _)| n == pred) {
                // Deterministic report: the smallest declared arity.
                let expected = self
                    .signatures
                    .keys()
                    .filter(|(n, _)| n == pred)
                    .map(|(_, a)| *a)
                    .min()
                    .unwrap_or(0);
                return Err(SpecError::ArityMismatch {
                    predicate: pred.to_string(),
                    expected,
                    found: args.len(),
                });
            }
            return Ok(());
        };
        for (i, (arg, sort)) in args.iter().zip(sorts.iter()).enumerate() {
            let mut vt = VarTable::new();
            let value = vt.compile(arg);
            match sort {
                Sort::Any => {}
                Sort::Object => match &value {
                    Term::Atom(s) => {
                        let name = s.as_str();
                        self.declare_object(&name);
                    }
                    other => {
                        if self.sort_enforcement == SortEnforcement::Reject {
                            return Err(SpecError::SortViolation {
                                predicate: pred.to_string(),
                                position: i,
                                domain: "object".to_string(),
                                value: other.to_string(),
                            });
                        }
                    }
                },
                Sort::Domain(d) => {
                    let ok = self
                        .domains
                        .read()
                        .get(d)
                        .map(|def| def.contains(&value))
                        .unwrap_or(false);
                    if !ok && self.sort_enforcement == SortEnforcement::Reject {
                        return Err(SpecError::SortViolation {
                            predicate: pred.to_string(),
                            position: i,
                            domain: d.clone(),
                            value: value.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Define a virtual fact (§III.A). The rule is validated against the
    /// formula-language range restrictions before being installed.
    pub fn define(&mut self, rule: Rule) -> SpecResult<()> {
        if let Some(p) = rule.head.pred_name() {
            self.register_predicate(&p);
        }
        if let Some(crate::pattern::Pat::Atom(m)) = &rule.head.model {
            let m = m.clone();
            self.declare_model(&m);
        }
        let (clause, _vt) = rule.compile(GroupId::named(groups::RULES))?;
        self.kb
            .try_assert_clause_in(GroupId::named(groups::RULES), clause.head, clause.body)?;
        Ok(())
    }

    /// Install a constraint (§III.C).
    pub fn constrain(&mut self, constraint: Constraint) -> SpecResult<()> {
        if let Some(crate::pattern::Pat::Atom(m)) = &constraint.model {
            let m = m.clone();
            self.declare_model(&m);
        }
        let (clause, _vt) = constraint.compile(GroupId::named(groups::RULES))?;
        self.kb
            .try_assert_clause_in(GroupId::named(groups::RULES), clause.head, clause.body)?;
        Ok(())
    }

    // ----- world view (§III.E) ---------------------------------------------

    /// Replace the world view: the set of models whose facts and
    /// constraints are visible. Every model must have been declared.
    pub fn set_world_view(&mut self, models: &[&str]) -> SpecResult<()> {
        for m in models {
            if !self.models.contains(*m) {
                return Err(SpecError::UnknownModel((*m).to_string()));
            }
        }
        self.world_view = models.iter().map(|m| m.to_string()).collect();
        self.apply_world_view();
        Ok(())
    }

    fn apply_world_view(&mut self) {
        let g = GroupId::named(groups::WORLD_VIEW);
        self.kb.retract_group(g);
        for m in &self.world_view {
            self.kb.assert_clause_in(
                g,
                Term::compound(functors::active_model(), vec![Term::atom(m)]),
                Term::atom("true"),
            );
        }
    }

    /// The currently active world view.
    pub fn world_view(&self) -> &[String] {
        &self.world_view
    }

    // ----- meta-view (§IV) --------------------------------------------------

    /// Register a meta-model (its natives are installed immediately; its
    /// rules stay dormant until activated).
    pub fn register_meta_model(&mut self, mm: MetaModel) {
        mm.run_setup(&mut self.kb);
        self.meta_models.insert(mm.name().to_string(), mm);
    }

    /// Activate a registered meta-model: its rule pack joins the knowledge
    /// base under its own clause group. Idempotent. Activation is atomic:
    /// a clause the engine rejects (e.g. a non-callable head in a
    /// hand-built pack) retracts the partially installed group and reports
    /// the engine error, leaving the meta-view unchanged.
    pub fn activate_meta_model(&mut self, name: &str) -> SpecResult<()> {
        let mm = self
            .meta_models
            .get(name)
            .ok_or_else(|| SpecError::UnknownMetaModel(name.to_string()))?
            .clone();
        if self.active_meta.iter().any(|n| n == name) {
            return Ok(());
        }
        let g = mm.group();
        for c in mm.clauses() {
            if let Err(e) = self
                .kb
                .try_assert_clause_in(g, c.head.clone(), c.body.clone())
            {
                self.kb.retract_group(g);
                return Err(SpecError::Engine(e));
            }
        }
        self.active_meta.push(name.to_string());
        Ok(())
    }

    /// Deactivate a meta-model, retracting its rule pack.
    pub fn deactivate_meta_model(&mut self, name: &str) -> SpecResult<()> {
        let mm = self
            .meta_models
            .get(name)
            .ok_or_else(|| SpecError::UnknownMetaModel(name.to_string()))?;
        self.kb.retract_group(mm.group());
        self.active_meta.retain(|n| n != name);
        Ok(())
    }

    /// The current meta-view (§IV.D): names of active meta-models, in
    /// activation order.
    pub fn meta_view(&self) -> &[String] {
        &self.active_meta
    }

    /// Replace the whole meta-view at once.
    pub fn set_meta_view(&mut self, names: &[&str]) -> SpecResult<()> {
        // Validate before touching anything: a typo must not strip the
        // current meta-view.
        for n in names {
            if !self.meta_models.contains_key(*n) {
                return Err(SpecError::UnknownMetaModel((*n).to_string()));
            }
        }
        let current: Vec<String> = self.active_meta.clone();
        for n in current {
            self.deactivate_meta_model(&n)?;
        }
        for n in names {
            self.activate_meta_model(n)?;
        }
        Ok(())
    }

    // ----- time (shared kernel state for §VI) -------------------------------

    /// Set the present moment (the `now` placeholder, §VI.B). Stored as the
    /// kernel fact `now_is(t)`.
    pub fn set_now(&mut self, t: f64) {
        let g = GroupId::named(groups::NOW);
        self.kb.retract_group(g);
        self.kb.assert_clause_in(
            g,
            Term::pred("now_is", vec![Term::float(t)]),
            Term::atom("true"),
        );
    }

    // ----- queries ----------------------------------------------------------

    fn budget(&self) -> Budget {
        self.budget_with_steps(self.step_limit)
    }

    /// A query budget with an explicit step limit (retries escalate it)
    /// and the session's deadline and cancellation token attached.
    fn budget_with_steps(&self, step_limit: u64) -> Budget {
        let mut budget = Budget::new(step_limit, self.depth_limit).with_cancel(self.cancel.clone());
        if let Some(d) = self.deadline {
            budget = budget.with_deadline_in(d);
        }
        budget
    }

    /// Snapshot a solver's counters as the most recent query's stats.
    fn record_stats<S: TraceSink>(&self, solver: &Solver<'_, S>) {
        *self.last_stats.lock() = solver.stats();
    }

    /// Is any observation (tracing or profiling) requested? When false,
    /// queries run on the `NullSink` fast path with zero overhead.
    fn observing(&self) -> bool {
        self.trace_enabled || self.profile_enabled
    }

    /// Build the observer for one query from the current settings.
    fn observer_sink(&self) -> ObserverSink {
        ObserverSink::new(
            self.profile_enabled,
            self.trace_enabled.then_some(self.trace_capacity),
        )
    }

    /// Fold one query's observations back into the specification: the
    /// profile accumulates, the trace ring replaces the previous one.
    fn harvest(&self, sink: ObserverSink) {
        let (prof, ring) = sink.into_parts();
        if let Some(p) = prof {
            self.profiler.lock().absorb(&p);
        }
        if let Some(r) = ring {
            *self.last_trace.lock() = Some(r);
        }
    }

    /// The shared solve path: every `&self` query funnels through here (or
    /// [`Self::prove_inner`]) so observation is wired in exactly once.
    fn solve_n_goal(&self, goal: Term, limit: usize) -> SpecResult<Vec<gdp_engine::Solution>> {
        self.solve_n_goal_budget(goal, limit, self.budget())
    }

    /// [`Self::solve_n_goal`] with an explicit budget (the retry path
    /// escalates step limits per attempt).
    fn solve_n_goal_budget(
        &self,
        goal: Term,
        limit: usize,
        budget: Budget,
    ) -> SpecResult<Vec<gdp_engine::Solution>> {
        if self.observing() {
            let solver = Solver::with_sink(&self.kb, budget, self.observer_sink());
            let out = solver.solve(goal, limit);
            self.record_stats(&solver);
            self.harvest(solver.into_sink());
            Ok(out?)
        } else {
            let solver = Solver::new(&self.kb, budget);
            let out = solver.solve(goal, limit);
            self.record_stats(&solver);
            Ok(out?)
        }
    }

    /// The shared prove path; see [`Self::solve_n_goal`].
    fn prove_inner(&self, goal: Term) -> SpecResult<bool> {
        if self.observing() {
            let solver = Solver::with_sink(&self.kb, self.budget(), self.observer_sink());
            let out = solver.prove(goal);
            self.record_stats(&solver);
            self.harvest(solver.into_sink());
            Ok(out?)
        } else {
            let solver = Solver::new(&self.kb, self.budget());
            let out = solver.prove(goal);
            self.record_stats(&solver);
            Ok(out?)
        }
    }

    /// Execution counters of the most recent query run through this
    /// specification (steps, clause resolutions, and answer-table
    /// hit/miss/insert/invalidation counts).
    pub fn solver_stats(&self) -> SolverStats {
        *self.last_stats.lock()
    }

    /// Cumulative answer-table counters over the KB's lifetime.
    pub fn table_stats(&self) -> gdp_engine::TableStats {
        self.kb.table().stats()
    }

    // ----- tabling ----------------------------------------------------------

    /// Switch goal-level answer tabling on or off (off by default). While
    /// on, predicates nominated by registered meta-models (and any marked
    /// through [`gdp_engine::KnowledgeBase::mark_tabled`]) have their
    /// complete answer sets memoized across queries; knowledge-base
    /// mutations invalidate affected entries automatically via the KB
    /// epoch.
    pub fn enable_tabling(&mut self, on: bool) {
        self.kb.set_tabling(on);
    }

    /// Is answer tabling enabled?
    pub fn tabling_enabled(&self) -> bool {
        self.kb.tabling_enabled()
    }

    /// Table every user predicate instead of only the nominated ones
    /// (effective only while tabling is enabled).
    pub fn set_table_all(&mut self, on: bool) {
        self.kb.set_table_all(on);
    }

    /// Set the KB-wide cycle policy for recursive tabled subgoals:
    /// [`CyclePolicy::Inductive`] (the default) computes the least
    /// fixpoint — a subgoal that can only be derived through itself
    /// fails — while [`CyclePolicy::Coinductive`] lets a recursive
    /// re-entry succeed (greatest-fixpoint reading). Changing the
    /// policy invalidates previously cached answer sets.
    pub fn set_cycle_policy(&mut self, policy: CyclePolicy) {
        self.kb.set_cycle_policy(policy);
    }

    /// The current KB-wide cycle policy for recursive tabled subgoals.
    pub fn cycle_policy(&self) -> CyclePolicy {
        self.kb.cycle_policy()
    }

    /// Adjust the per-query resource budget.
    pub fn set_budget(&mut self, step_limit: u64, depth_limit: u32) {
        self.step_limit = step_limit;
        self.depth_limit = depth_limit;
    }

    // ----- fault tolerance --------------------------------------------------

    /// Bound every query and audit by wall-clock time in addition to
    /// steps (`None` — the default — removes the bound). The deadline is
    /// per query: it starts when the query starts.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// The configured wall-clock deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// A handle to the session's cancellation token. Trip it from any
    /// thread ([`CancelToken::cancel`]) to stop the in-flight query with
    /// [`EngineError::Cancelled`]; [`CancelToken::reset`] re-arms it for
    /// the next query. The specification itself never resets the token —
    /// the interactive layer decides when a cancellation is consumed.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Configure how audits retry budget-exhausted goals.
    pub fn set_retry(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The active retry policy.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// Arm (or disarm) deterministic fault injection for audits. Also set
    /// at construction from the `GDP_CHAOS` environment variable; tests
    /// computing a fault-free baseline should explicitly pass `None`.
    pub fn set_chaos(&mut self, chaos: Option<ChaosConfig>) {
        self.chaos = chaos;
    }

    /// The active fault-injection point, if any.
    pub fn chaos(&self) -> Option<ChaosConfig> {
        self.chaos
    }

    // ----- observability ----------------------------------------------------

    /// Switch port-event tracing on or off (off by default). While on,
    /// every query keeps the last [`Self::set_trace_capacity`] port events
    /// (Call/Exit/Redo/Fail plus table and native ports) in a ring
    /// retrievable with [`Self::last_trace`] — a post-mortem of what the
    /// solver was doing right before a failure or budget exhaustion.
    pub fn set_trace(&mut self, on: bool) {
        self.trace_enabled = on;
    }

    /// Is port-event tracing enabled?
    pub fn trace_enabled(&self) -> bool {
        self.trace_enabled
    }

    /// Set how many port events the trace ring retains per query
    /// (default 512).
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace_capacity = capacity;
    }

    /// The port-event ring of the most recent traced query, or `None` when
    /// no query has run with tracing on.
    pub fn last_trace(&self) -> Option<RingTrace> {
        self.last_trace.lock().clone()
    }

    /// Switch per-predicate profiling on or off (off by default). While
    /// on, every query folds its per-predicate call/exit/redo/fail/step
    /// counters into an accumulated [`Profiler`] retrievable with
    /// [`Self::profile`].
    pub fn set_profile(&mut self, on: bool) {
        self.profile_enabled = on;
    }

    /// Is per-predicate profiling enabled?
    pub fn profile_enabled(&self) -> bool {
        self.profile_enabled
    }

    /// A snapshot of the accumulated per-predicate profile.
    pub fn profile(&self) -> Profiler {
        self.profiler.lock().clone()
    }

    /// Clear the accumulated profile (e.g. to isolate one workload).
    pub fn reset_profile(&self) {
        *self.profiler.lock() = Profiler::new();
    }

    /// All answers to a fact pattern, looked up through the active world
    /// view.
    pub fn query(&self, pat: FactPat) -> SpecResult<Vec<Answer>> {
        self.query_n(pat, usize::MAX)
    }

    /// Up to `limit` answers to a fact pattern.
    pub fn query_n(&self, pat: FactPat, limit: usize) -> SpecResult<Vec<Answer>> {
        let mut vt = VarTable::new();
        let goal = pat.compile(&mut vt, Target::Visible);
        self.run_query(goal, vt, limit)
    }

    /// Like [`Specification::query`], with duplicate answers removed
    /// (first-occurrence order kept). Facts derivable along several
    /// meta-rule paths — e.g. a ground point inside a patch reachable both
    /// directly and through a finer resolution — repeat in raw SLD output;
    /// most callers want each answer once.
    pub fn query_distinct(&self, pat: FactPat) -> SpecResult<Vec<Answer>> {
        let mut answers = self.query(pat)?;
        let mut seen: Vec<Answer> = Vec::new();
        answers.retain(|a| {
            if seen.contains(a) {
                false
            } else {
                seen.push(a.clone());
                true
            }
        });
        Ok(answers)
    }

    /// Is the fact pattern provable under the active world view?
    pub fn provable(&self, pat: FactPat) -> SpecResult<bool> {
        let mut vt = VarTable::new();
        let goal = pat.compile(&mut vt, Target::Visible);
        self.prove_inner(goal)
    }

    /// All answers to an arbitrary formula.
    pub fn satisfy(&self, formula: &Formula) -> SpecResult<Vec<Answer>> {
        Self::check_query_safety(formula)?;
        let mut vt = VarTable::new();
        let goal = formula.compile(&mut vt);
        self.run_query(goal, vt, usize::MAX)
    }

    /// Queries obey the same range restrictions as rule bodies (with no
    /// head to export): a top-level `not(open(X))` with free `X` is the
    /// floundering query the paper's I2 ⊆ I side condition forbids, and is
    /// reported here rather than silently answered closed-world.
    fn check_query_safety(formula: &Formula) -> SpecResult<()> {
        formula
            .check_safety(&[])
            .map_err(|reason| SpecError::UnsafeRule {
                rule: "?-".to_string(),
                reason,
            })
    }

    /// Is the formula satisfiable under the active world view?
    pub fn satisfiable(&self, formula: &Formula) -> SpecResult<bool> {
        Self::check_query_safety(formula)?;
        let mut vt = VarTable::new();
        let goal = formula.compile(&mut vt);
        self.prove_inner(goal)
    }

    fn run_query(&self, goal: Term, vt: VarTable, limit: usize) -> SpecResult<Vec<Answer>> {
        let solutions = self.solve_n_goal(goal, limit)?;
        let named: Vec<(String, u32)> = vt.named().map(|(n, v)| (n.to_string(), v)).collect();
        Ok(solutions
            .into_iter()
            .map(|sol| Answer {
                bindings: named
                    .iter()
                    .map(|(n, v)| {
                        let t = sol
                            .get(gdp_engine::Var(*v))
                            .cloned()
                            .unwrap_or(Term::var(*v));
                        (n.clone(), t)
                    })
                    .collect(),
            })
            .collect())
    }

    /// Explain why a fact pattern is provable (its first solution's proof
    /// tree), or `None` when it is not. See [`crate::explain`].
    pub fn explain_fact(&self, pat: FactPat) -> SpecResult<Option<crate::explain::Proof>> {
        let mut vt = VarTable::new();
        let goal = pat.compile(&mut vt, Target::Visible);
        crate::explain::explain(self, goal)
    }

    /// Evaluate every constraint visible in the active world view and
    /// return the violations (§III.C, §III.E). An empty result means the
    /// world view is *consistent*.
    ///
    /// Budget-exhausted checks are retried under the active
    /// [`RetryPolicy`] with escalated step limits before the error is
    /// surfaced. (The sequential check evaluates one goal, so there is no
    /// partial report to degrade to — use
    /// [`Self::audit_world_views`] for per-member degraded evaluation.)
    pub fn check_consistency(&self) -> SpecResult<Vec<Violation>> {
        let goal = reify::visible(
            Term::var(0),
            Term::var(1),
            Term::var(2),
            Term::atom(ERROR_PRED),
            Term::var(3),
        );
        let mut attempt = 0u32;
        let solutions = loop {
            let budget = self.budget_with_steps(self.retry.escalated(self.step_limit, attempt));
            match self.solve_n_goal_budget(goal.clone(), usize::MAX, budget) {
                Ok(solutions) => break solutions,
                Err(SpecError::Engine(e))
                    if e.is_recoverable() && attempt < self.retry.attempts =>
                {
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        };
        let mut out = Vec::new();
        for sol in solutions {
            let model = sol.get(gdp_engine::Var(0)).cloned().unwrap_or(Term::var(0));
            let v = Self::violation_from(model, &sol);
            if !out.contains(&v) {
                out.push(v);
            }
        }
        Ok(out)
    }

    /// The violations one world-view member's constraints derive, in
    /// derivation order, *without* cross-model deduplication — the raw
    /// per-model list [`Self::audit_world_views`] merges. Exposed so the
    /// fault-tolerance harness can state its key property ("a degraded
    /// audit equals the fault-free audit restricted to the goals that
    /// completed") against independently computed per-model baselines.
    pub fn violations_for_model(&self, model: &str) -> SpecResult<Vec<Violation>> {
        let solutions = self.solve_n_goal(Self::audit_goal(model), usize::MAX)?;
        Ok(solutions
            .iter()
            .map(|sol| Self::violation_from(Term::atom(model), sol))
            .collect())
    }

    /// The per-model `ERROR`-derivation goal the audit fans out.
    fn audit_goal(model: &str) -> Term {
        reify::visible(
            Term::atom(model),
            Term::var(1),
            Term::var(2),
            Term::atom(ERROR_PRED),
            Term::var(3),
        )
    }

    /// Decode one `visible(M, S, T, error, A)` solution into a
    /// [`Violation`]. `model` is supplied by the caller: the sequential
    /// audit reads it from the solution's first variable, the per-model
    /// parallel audit already knows it (the goal carries it ground).
    fn violation_from(model: Term, sol: &gdp_engine::Solution) -> Violation {
        let space = sol.get(gdp_engine::Var(1)).cloned().unwrap_or(Term::var(1));
        let time = sol.get(gdp_engine::Var(2)).cloned().unwrap_or(Term::var(2));
        let args = sol.get(gdp_engine::Var(3)).cloned().unwrap_or(Term::nil());
        let items = list_to_vec(&args).unwrap_or_default();
        let (error_type, witnesses) = match items.split_first() {
            Some((t, w)) => (t.clone(), w.to_vec()),
            None => (Term::atom("unknown"), Vec::new()),
        };
        Violation {
            model,
            error_type,
            witnesses,
            space,
            time,
        }
    }

    /// The parallel counterpart of [`Self::check_consistency`]: fan one
    /// `ERROR`-derivation goal per world-view member across `workers`
    /// threads (the paper's per-world-view consistency story, §III.C/§VI,
    /// is an independent-goal fan-out: each model's constraint violations
    /// derive without reference to the others').
    ///
    /// The merge is deterministic and reproduces the sequential audit
    /// exactly: the kernel's `visible/5` clause enumerates models in
    /// `active_model` assertion order — which *is* the world-view order —
    /// so concatenating per-model answers in world-view order and then
    /// deduplicating globally yields the identical violation list,
    /// byte-for-byte, at any worker count.
    ///
    /// The step budget is global: each worker receives an equal share, so
    /// the audit can consume at most the same budget as the sequential
    /// check. Merged per-worker counters (including any retry attempts)
    /// are recorded as the specification's last stats and returned in the
    /// report.
    ///
    /// ## Degraded-mode evaluation
    ///
    /// A failing goal no longer aborts the audit. Each member's goal that
    /// errors — budget exhaustion, deadline, cancellation, or a contained
    /// panic — is first re-attempted under the active [`RetryPolicy`]
    /// (budget-recoverable errors only, sequentially, with escalated step
    /// limits), and if it still fails it is recorded in
    /// [`AuditReport::incomplete`] with a zero count in
    /// [`AuditReport::per_model`], while every other member's violations
    /// are reported normally. Callers decide whether a partial audit is
    /// acceptable via [`AuditReport::is_complete`].
    pub fn audit_world_views(&self, workers: usize) -> SpecResult<AuditReport> {
        let goals: Vec<Term> = self
            .world_view
            .iter()
            .map(|m| Self::audit_goal(m))
            .collect();
        let mut par = gdp_engine::ParallelSolver::with_budget(
            &self.kb,
            workers,
            self.step_limit,
            self.depth_limit,
        );
        if self.profile_enabled {
            // Per-worker profiles merge at the batch join, exactly like
            // the per-worker stats. (The trace ring stays sequential-only:
            // interleaved per-worker event orders are not meaningful.)
            par.enable_profile();
        }
        par.set_deadline(self.deadline);
        par.set_cancel(self.cancel.clone());
        par.set_chaos(self.chaos);
        let results = par.solve_batch(&goals);
        let mut stats = par.stats();
        if let Some(p) = par.profile() {
            self.profiler.lock().absorb(&p);
        }
        let mut members = Vec::with_capacity(goals.len());
        for ((name, goal), result) in self.world_view.iter().zip(&goals).zip(results) {
            let result = match result {
                Ok(solutions) => Ok(solutions),
                Err(e) => self.retry_audit_goal(goal, e, &mut stats),
            };
            members.push(Self::member_outcome(name, result));
        }
        let (violations, per_model, incomplete) = self.merge_member_outcomes(&members);
        if self.incremental {
            *self.audit_cache.lock() = Some(AuditCache {
                world_view: self.world_view.clone(),
                members,
            });
        }
        *self.last_stats.lock() = stats;
        Ok(AuditReport {
            violations,
            per_model,
            stats,
            incomplete,
            workers: par.workers(),
        })
    }

    /// Decode one member's (possibly retried) solve result into a cached
    /// outcome: the raw violation list, or the terminal failure.
    fn member_outcome(
        name: &str,
        result: Result<Vec<gdp_engine::Solution>, (EngineError, u32)>,
    ) -> MemberOutcome {
        match result {
            Ok(solutions) => MemberOutcome::Solved(
                solutions
                    .iter()
                    .map(|sol| Self::violation_from(Term::atom(name), sol))
                    .collect(),
            ),
            Err((error, attempts)) => MemberOutcome::Failed { error, attempts },
        }
    }

    /// The audit merge, shared between the full and incremental paths:
    /// concatenate per-member raw violation lists in world-view order,
    /// deduplicating globally (first occurrence wins) and counting each
    /// member's post-dedup contribution; failures become
    /// [`AuditFailure`]s with zero counts. Because the inputs are
    /// per-member and the merge is a pure fold, re-running it over a mix
    /// of cached and freshly solved members reproduces the full audit
    /// byte-for-byte.
    fn merge_member_outcomes(
        &self,
        members: &[MemberOutcome],
    ) -> (Vec<Violation>, Vec<(String, usize)>, Vec<AuditFailure>) {
        let mut violations: Vec<Violation> = Vec::new();
        let mut per_model = Vec::with_capacity(members.len());
        let mut incomplete = Vec::new();
        for (name, outcome) in self.world_view.iter().zip(members) {
            match outcome {
                MemberOutcome::Solved(raw) => {
                    let mut count = 0usize;
                    for v in raw {
                        if !violations.contains(v) {
                            violations.push(v.clone());
                            count += 1;
                        }
                    }
                    per_model.push((name.clone(), count));
                }
                MemberOutcome::Failed { error, attempts } => {
                    per_model.push((name.clone(), 0));
                    incomplete.push(AuditFailure {
                        model: name.clone(),
                        goal: Self::audit_goal(name),
                        error: error.clone(),
                        attempts: *attempts,
                    });
                }
            }
        }
        (violations, per_model, incomplete)
    }

    /// Re-attempt one audit goal that failed in the parallel fan-out.
    /// Only budget-recoverable errors ([`EngineError::is_recoverable`])
    /// are retried, sequentially, each attempt under an escalated step
    /// limit; the fault-injection token is deliberately *not* re-attached,
    /// so an injected fault costs one attempt, not the whole policy. Every
    /// attempt's counters fold into `stats` so the merged ledger still
    /// reconciles with the absorbed profile. Returns the solutions, or the
    /// final error together with the number of retry attempts made.
    fn retry_audit_goal(
        &self,
        goal: &Term,
        first: EngineError,
        stats: &mut SolverStats,
    ) -> Result<Vec<gdp_engine::Solution>, (EngineError, u32)> {
        let mut error = first;
        let mut attempt = 0u32;
        while error.is_recoverable() && attempt < self.retry.attempts {
            attempt += 1;
            let budget = self.budget_with_steps(self.retry.escalated(self.step_limit, attempt));
            // catch_unwind mirrors the parallel solver's per-goal isolation:
            // a panicking native must degrade this member, not the audit.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if self.profile_enabled {
                    let solver = Solver::with_sink(&self.kb, budget, Profiler::new());
                    let out = solver.solve(goal.clone(), usize::MAX);
                    let s = solver.stats();
                    (out, s, Some(solver.into_sink()))
                } else {
                    let solver = Solver::new(&self.kb, budget);
                    let out = solver.solve(goal.clone(), usize::MAX);
                    let s = solver.stats();
                    (out, s, None)
                }
            }));
            match outcome {
                Ok((out, s, prof)) => {
                    stats.absorb(&s);
                    if let Some(p) = prof {
                        self.profiler.lock().absorb(&p);
                    }
                    match out {
                        Ok(solutions) => return Ok(solutions),
                        Err(e) => error = e,
                    }
                }
                Err(payload) => {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    error = EngineError::GoalPanicked { message };
                }
            }
        }
        Err((error, attempt))
    }

    // ----- transactions & incremental audits (map-data revision) -------------

    /// Switch incremental-audit mode on or off (off by default; also set
    /// at construction from `GDP_INCREMENTAL=1`). While on,
    /// [`Self::audit_world_views`] caches its per-member results so
    /// [`Self::audit_incremental`] can confine a re-audit to the members a
    /// committed delta can actually have affected. Turning it off drops
    /// the cache.
    pub fn set_incremental(&mut self, on: bool) {
        self.incremental = on;
        if !on {
            *self.audit_cache.lock() = None;
        }
    }

    /// Is incremental-audit mode on?
    pub fn incremental_enabled(&self) -> bool {
        self.incremental
    }

    /// Open a transaction: every subsequent assertion and retraction is
    /// recorded (invertibly) until [`Self::commit_txn`] or
    /// [`Self::rollback_txn`]. Transactions do not nest.
    pub fn begin_txn(&mut self) -> SpecResult<()> {
        if self.txn_start.is_some() {
            return Err(SpecError::Transaction(
                "a transaction is already open".to_string(),
            ));
        }
        self.kb.begin_delta();
        self.txn_start = Some(self.kb.delta_len());
        Ok(())
    }

    /// Is a transaction open?
    pub fn in_txn(&self) -> bool {
        self.txn_start.is_some()
    }

    /// Commit the open transaction, returning the recorded [`Delta`] —
    /// the currency of [`Self::audit_incremental`]. Ends knowledge-base
    /// recording. With tracing on, one `D-CMT` port event carrying the
    /// dirtied predicates lands in the trace ring.
    pub fn commit_txn(&mut self) -> SpecResult<Delta> {
        let Some(mark) = self.txn_start.take() else {
            return Err(SpecError::Transaction("no transaction is open".to_string()));
        };
        let delta = self.kb.delta_since(mark);
        self.kb.end_delta();
        if self.trace_enabled {
            self.record_commit_event(&delta);
        }
        Ok(delta)
    }

    /// Abort the open transaction, undoing every recorded operation
    /// (newest first) and restoring the exact prior clause store —
    /// including clause positions, which are observable through solution
    /// order. Returns the number of operations undone.
    pub fn rollback_txn(&mut self) -> SpecResult<usize> {
        let Some(mark) = self.txn_start.take() else {
            return Err(SpecError::Transaction("no transaction is open".to_string()));
        };
        let undone = self.kb.rollback_to(mark);
        self.kb.end_delta();
        Ok(undone)
    }

    /// Record one `D-CMT` port event in the trace ring: the commit's
    /// scope (its dirtied predicates, sorted for determinism) as a list.
    fn record_commit_event(&self, delta: &Delta) {
        let mut names: Vec<String> = delta
            .dirty_preds()
            .into_iter()
            .map(|k| format!("{}/{}", k.name.as_str(), k.arity))
            .collect();
        names.sort();
        let goal = list_from_iter(names.iter().map(|n| Term::atom(n)));
        let mut guard = self.last_trace.lock();
        let ring = guard.get_or_insert_with(|| RingTrace::new(self.trace_capacity));
        ring.event(&TraceEvent {
            port: Port::DeltaCommit,
            depth: 0,
            key: PredKey::new("txn", 0),
            goal,
        });
    }

    /// The delta-driven counterpart of [`Self::audit_world_views`]: given
    /// the [`Delta`] of a committed transaction, re-solve only the
    /// world-view members whose audit goals *transitively depend* on a
    /// predicate the delta dirtied (per the static dependency graph, with
    /// first-argument/model specialization), splice the fresh results
    /// into the cached per-member results, and re-run the merge. The
    /// report is byte-identical to a full re-audit — the dependency
    /// closure over-approximates, so a member it clears cannot have
    /// changed its answers.
    ///
    /// Members whose previous audit failed are always re-solved (a full
    /// re-audit would re-attempt them). Falls back to a full audit when
    /// no cache exists or the world view changed since it was built;
    /// either way the cache is refreshed, so successive commits can chain
    /// `audit_incremental` calls. Requires incremental mode
    /// ([`Self::set_incremental`]) for the cache to populate.
    pub fn audit_incremental(&self, delta: &Delta, workers: usize) -> SpecResult<AuditReport> {
        let cache = self
            .audit_cache
            .lock()
            .clone()
            .filter(|c| c.world_view == self.world_view);
        let Some(cache) = cache else {
            return self.audit_world_views(workers);
        };
        let dirty = delta.dirty_nodes();
        let graph = self.kb.dep_graph();
        let stale: Vec<usize> = self
            .world_view
            .iter()
            .zip(&cache.members)
            .enumerate()
            .filter(|(_, (name, outcome))| {
                matches!(outcome, MemberOutcome::Failed { .. })
                    || graph
                        .goal_closure(&Self::audit_goal(name))
                        .depends_on(&dirty)
            })
            .map(|(i, _)| i)
            .collect();
        if stale.is_empty() {
            // Nothing the delta touched reaches any audit goal: the
            // cached member results *are* the current audit.
            let (violations, per_model, incomplete) = self.merge_member_outcomes(&cache.members);
            let stats = SolverStats::default();
            *self.last_stats.lock() = stats;
            return Ok(AuditReport {
                violations,
                per_model,
                stats,
                incomplete,
                workers: 0,
            });
        }
        let goals: Vec<Term> = stale
            .iter()
            .map(|&i| Self::audit_goal(&self.world_view[i]))
            .collect();
        let mut par = gdp_engine::ParallelSolver::with_budget(
            &self.kb,
            workers,
            self.step_limit,
            self.depth_limit,
        );
        if self.profile_enabled {
            par.enable_profile();
        }
        par.set_deadline(self.deadline);
        par.set_cancel(self.cancel.clone());
        par.set_chaos(self.chaos);
        let results = par.solve_batch(&goals);
        let mut stats = par.stats();
        if let Some(p) = par.profile() {
            self.profiler.lock().absorb(&p);
        }
        let mut members = cache.members;
        for ((&i, goal), result) in stale.iter().zip(&goals).zip(results) {
            let name = &self.world_view[i];
            let result = match result {
                Ok(solutions) => Ok(solutions),
                Err(e) => self.retry_audit_goal(goal, e, &mut stats),
            };
            members[i] = Self::member_outcome(name, result);
        }
        let (violations, per_model, incomplete) = self.merge_member_outcomes(&members);
        *self.audit_cache.lock() = Some(AuditCache {
            world_view: self.world_view.clone(),
            members,
        });
        *self.last_stats.lock() = stats;
        Ok(AuditReport {
            violations,
            per_model,
            stats,
            incomplete,
            workers: par.workers(),
        })
    }

    // ----- low-level access (sibling crates, diagnostics) --------------------

    /// The underlying knowledge base (read).
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// The underlying knowledge base (write). Reserved for the spatial /
    /// temporal / fuzzy / rendering layers; going around the assertion API
    /// skips sort checking.
    pub fn kb_mut(&mut self) -> &mut KnowledgeBase {
        &mut self.kb
    }

    /// Shared handle to the semantic-domain table.
    pub fn domain_table(&self) -> Arc<RwLock<DomainTable>> {
        Arc::clone(&self.domains)
    }

    // ----- MVCC snapshots ----------------------------------------------------

    /// An MVCC snapshot of this specification at its current generation:
    /// the knowledge base is shared copy-on-write (no clause is cloned),
    /// the answer table is a pinned copy whose hits surface as `S-HIT`
    /// port events, and the session state — registries, world view, limits,
    /// trace/profile switches, audit cache — is carried over. The snapshot
    /// gets a *fresh* cancel token and empty counters, so readers can be
    /// cancelled and profiled independently of the live writer. The
    /// semantic-domain table stays shared (domain natives captured its
    /// `Arc` at registration): domain *declarations* are not versioned.
    pub fn snapshot(&self) -> Specification {
        self.snapshot_impl(None)
    }

    /// Like [`Self::snapshot`], but pinned `newer.len()` commits back from
    /// head: `newer` is the suffix of committed [`CommitRecord`]s (oldest
    /// first) that happened *after* the desired generation, and the
    /// snapshot's knowledge base un-applies them newest-first. Per-predicate
    /// generations and the epoch are restored to their pre-commit values,
    /// so answer-table entries built after the pin fail validation
    /// automatically. The audit cache is dropped unless pinned at head —
    /// its member outcomes were computed against newer clauses.
    pub fn snapshot_at(&self, newer: &[CommitRecord]) -> Specification {
        self.snapshot_impl(Some(newer))
    }

    fn snapshot_impl(&self, newer: Option<&[CommitRecord]>) -> Specification {
        let (kb, audit_cache) = match newer {
            None | Some([]) => (self.kb.snapshot(), self.audit_cache.lock().clone()),
            Some(records) => (self.kb.snapshot_at(records), None),
        };
        Specification {
            kb,
            domains: Arc::clone(&self.domains),
            signatures: self.signatures.clone(),
            objects: self.objects.clone(),
            models: self.models.clone(),
            meta_models: self.meta_models.clone(),
            active_meta: self.active_meta.clone(),
            world_view: self.world_view.clone(),
            sort_enforcement: self.sort_enforcement,
            step_limit: self.step_limit,
            depth_limit: self.depth_limit,
            last_stats: Mutex::new(SolverStats::default()),
            trace_enabled: self.trace_enabled,
            profile_enabled: self.profile_enabled,
            trace_capacity: self.trace_capacity,
            profiler: Mutex::new(Profiler::new()),
            last_trace: Mutex::new(None),
            deadline: self.deadline,
            cancel: CancelToken::new(),
            retry: self.retry,
            chaos: self.chaos,
            incremental: self.incremental,
            txn_start: None,
            audit_cache: Mutex::new(audit_cache),
        }
    }

    /// Assert a raw engine clause under a named group.
    pub fn assert_raw(&mut self, group: &str, clause: RawClause) {
        self.kb
            .assert_clause_in(GroupId::named(group), clause.head, clause.body);
    }

    /// Fallible counterpart of [`Self::assert_raw`]: a head the engine
    /// cannot store (arity beyond the index limit, or a non-callable term
    /// like a bare integer) is reported as [`SpecError::Engine`] instead
    /// of panicking. The language loader funnels through this so a bad
    /// head in a source file becomes a line-numbered diagnostic.
    pub fn try_assert_raw(&mut self, group: &str, clause: RawClause) -> SpecResult<()> {
        self.kb
            .try_assert_clause_in(GroupId::named(group), clause.head, clause.body)
            .map_err(SpecError::from)
    }

    /// Retract a named clause group; returns the number of clauses removed.
    pub fn retract_raw_group(&mut self, group: &str) -> usize {
        self.kb.retract_group(GroupId::named(group))
    }

    /// Prove a raw engine goal (diagnostics and sibling crates).
    pub fn prove_goal(&self, goal: Term) -> SpecResult<bool> {
        self.prove_inner(goal)
    }

    /// Solve a raw engine goal, returning engine-level solutions.
    pub fn solve_goal(&self, goal: Term) -> SpecResult<Vec<gdp_engine::Solution>> {
        self.solve_n_goal(goal, usize::MAX)
    }

    /// Declared objects.
    pub fn objects(&self) -> impl Iterator<Item = &str> {
        self.objects.iter().map(String::as_str)
    }

    /// Declared models.
    pub fn models(&self) -> impl Iterator<Item = &str> {
        self.models.iter().map(String::as_str)
    }

    /// Switch sort enforcement mode.
    pub fn set_sort_enforcement(&mut self, mode: SortEnforcement) {
        self.sort_enforcement = mode;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::CmpOp;
    use crate::pattern::Pat;

    fn fact(pred: &str, args: &[&str]) -> FactPat {
        let mut f = FactPat::new(pred);
        for a in args {
            f = f.arg(*a);
        }
        f
    }

    #[test]
    fn assert_and_query_basic_facts() {
        let mut spec = Specification::new();
        spec.assert_fact(fact("road", &["s1"])).unwrap();
        spec.assert_fact(fact("road", &["s2"])).unwrap();
        let answers = spec.query(fact("road", &["X"])).unwrap();
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].get("X").unwrap(), &Term::atom("s1"));
    }

    #[test]
    fn non_ground_basic_fact_rejected() {
        let mut spec = Specification::new();
        let err = spec.assert_fact(fact("road", &["X"])).unwrap_err();
        assert!(matches!(err, SpecError::NonGroundFact(_)));
    }

    #[test]
    fn retract_fact_round_trip() {
        let mut spec = Specification::new();
        spec.assert_fact(fact("road", &["s1"])).unwrap();
        assert!(spec.provable(fact("road", &["s1"])).unwrap());
        assert!(spec.retract_fact(fact("road", &["s1"])).unwrap());
        assert!(!spec.provable(fact("road", &["s1"])).unwrap());
        assert!(!spec.retract_fact(fact("road", &["s1"])).unwrap());
        // Fuzzy retraction needs the exact accuracy.
        spec.assert_fuzzy_fact(fact("clarity", &["img"]), 0.8)
            .unwrap();
        assert!(!spec
            .retract_fuzzy_fact(fact("clarity", &["img"]), 0.7)
            .unwrap());
        assert!(spec
            .retract_fuzzy_fact(fact("clarity", &["img"]), 0.8)
            .unwrap());
    }

    #[test]
    fn virtual_fact_derives() {
        let mut spec = Specification::new();
        spec.assert_fact(fact("bridge", &["b1"])).unwrap();
        spec.assert_fact(fact("open", &["b1"])).unwrap();
        spec.define(Rule::new(
            fact("known_status", &["X"]),
            Formula::and(
                Formula::fact(fact("bridge", &["X"])),
                Formula::or(
                    Formula::fact(fact("open", &["X"])),
                    Formula::fact(fact("closed", &["X"])),
                ),
            ),
        ))
        .unwrap();
        assert!(spec.provable(fact("known_status", &["b1"])).unwrap());
    }

    #[test]
    fn query_distinct_dedups() {
        let mut spec = Specification::new();
        spec.assert_fact(fact("p", &["a"])).unwrap();
        // Two rules derive the same conclusion.
        for _ in 0..2 {
            spec.define(Rule::new(
                fact("q", &["X"]),
                Formula::fact(fact("p", &["X"])),
            ))
            .unwrap();
        }
        assert_eq!(spec.query(fact("q", &["X"])).unwrap().len(), 2);
        assert_eq!(spec.query_distinct(fact("q", &["X"])).unwrap().len(), 1);
    }

    #[test]
    fn model_scoping_and_world_view() {
        let mut spec = Specification::new();
        spec.assert_fact(
            fact("freezing_point", &[])
                .model("celsius")
                .arg(Pat::Int(0))
                .arg("x"),
        )
        .unwrap();
        // Not visible: celsius not in the world view.
        assert!(!spec
            .provable(fact("freezing_point", &[]).arg(Pat::Int(0)).arg("x"))
            .unwrap());
        spec.set_world_view(&["omega", "celsius"]).unwrap();
        assert!(spec
            .provable(fact("freezing_point", &[]).arg(Pat::Int(0)).arg("x"))
            .unwrap());
        // Query with explicit model qualifier.
        assert!(spec
            .provable(
                fact("freezing_point", &[])
                    .model("celsius")
                    .arg(Pat::Int(0))
                    .arg("x")
            )
            .unwrap());
    }

    #[test]
    fn unknown_model_in_world_view_rejected() {
        let mut spec = Specification::new();
        assert!(matches!(
            spec.set_world_view(&["nope"]),
            Err(SpecError::UnknownModel(_))
        ));
    }

    #[test]
    fn consistency_checking_is_world_view_relative() {
        let mut spec = Specification::new();
        spec.assert_fact(fact("capital_of", &["jc", "mo"])).unwrap();
        spec.assert_fact(fact("capital_of", &["stl", "mo"]).model("rumor"))
            .unwrap();
        spec.constrain(
            Constraint::new("two_capitals")
                .witness("Z")
                .when(Formula::all(vec![
                    Formula::fact(fact("capital_of", &["X", "Z"])),
                    Formula::fact(fact("capital_of", &["Y", "Z"])),
                    Formula::Cmp(CmpOp::NotUnify, Pat::var("X"), Pat::var("Y")),
                ])),
        )
        .unwrap();
        // Default world view: only omega's fact — consistent.
        assert!(spec.check_consistency().unwrap().is_empty());
        // Include the rumor model: two capitals for mo — violation.
        spec.set_world_view(&["omega", "rumor"]).unwrap();
        let violations = spec.check_consistency().unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].error_type, Term::atom("two_capitals"));
        assert_eq!(violations[0].witnesses, vec![Term::atom("mo")]);
    }

    #[test]
    fn sorts_reject_bad_temperature() {
        let mut spec = Specification::new();
        spec.declare_domain(
            "temperature",
            DomainDef::FloatRange {
                min: -100.0,
                max: 200.0,
            },
        )
        .unwrap();
        spec.declare_predicate(
            "average_temperature",
            vec![Sort::domain("temperature"), Sort::Object],
        )
        .unwrap();
        spec.assert_fact(
            FactPat::new("average_temperature")
                .arg(Pat::Float(45.0))
                .arg("saint_louis"),
        )
        .unwrap();
        let err = spec
            .assert_fact(
                FactPat::new("average_temperature")
                    .arg("green")
                    .arg("saint_louis"),
            )
            .unwrap_err();
        assert!(matches!(err, SpecError::SortViolation { .. }));
        // Objects auto-registered from Sort::Object positions.
        assert!(spec.objects().any(|o| o == "saint_louis"));
    }

    #[test]
    fn sort_enforcement_off_admits_anomalies() {
        let mut spec = Specification::new();
        spec.set_sort_enforcement(SortEnforcement::Off);
        spec.declare_domain("temperature", DomainDef::AnyNumber)
            .unwrap();
        spec.declare_predicate(
            "average_temperature",
            vec![Sort::domain("temperature"), Sort::Object],
        )
        .unwrap();
        spec.assert_fact(
            FactPat::new("average_temperature")
                .arg("green")
                .arg("saint_louis"),
        )
        .unwrap();
        // The anomaly is in; a domain constraint can now flag it.
        spec.constrain(Constraint::new("bad_temp").witness("X").when(Formula::and(
            Formula::fact(FactPat::new("average_temperature").arg("X").arg("Y")),
            Formula::not(Formula::Domain("temperature".into(), Pat::var("X"))),
        )))
        .unwrap();
        let violations = spec.check_consistency().unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].error_type, Term::atom("bad_temp"));
    }

    #[test]
    fn arity_mismatch_reported() {
        let mut spec = Specification::new();
        spec.declare_predicate("road", vec![Sort::Object]).unwrap();
        let err = spec.assert_fact(fact("road", &["a", "b"])).unwrap_err();
        assert!(matches!(err, SpecError::ArityMismatch { .. }));
    }

    #[test]
    fn meta_model_activation_cycle() {
        let mut spec = Specification::new();
        spec.assert_fact(fact("p", &["a"])).unwrap();
        let mm = MetaModel::new("copy_p_to_q")
            .clause(RawClause::rule(
                reify::holds(
                    Term::atom(DEFAULT_MODEL),
                    reify::any(),
                    reify::any(),
                    Term::atom("q"),
                    Term::var(0),
                ),
                reify::holds(
                    Term::atom(DEFAULT_MODEL),
                    reify::any(),
                    reify::any(),
                    Term::atom("p"),
                    Term::var(0),
                ),
            ))
            .build();
        spec.register_meta_model(mm);
        assert!(!spec.provable(fact("q", &["a"])).unwrap());
        spec.activate_meta_model("copy_p_to_q").unwrap();
        assert!(spec.provable(fact("q", &["a"])).unwrap());
        assert_eq!(spec.meta_view(), &["copy_p_to_q".to_string()]);
        spec.deactivate_meta_model("copy_p_to_q").unwrap();
        assert!(!spec.provable(fact("q", &["a"])).unwrap());
    }

    #[test]
    fn fuzzy_facts_do_not_prove_crisp_facts() {
        let mut spec = Specification::new();
        spec.assert_fuzzy_fact(fact("clarity", &["image"]), 0.85)
            .unwrap();
        // §VII.C: q(x) is not provable from %a q(x).
        assert!(!spec.provable(fact("clarity", &["image"])).unwrap());
        // But the fuzzy relation sees it.
        let answers = spec
            .satisfy(&Formula::FuzzyFact(
                fact("clarity", &["image"]),
                Pat::var("A"),
            ))
            .unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].get("A").unwrap().as_f64(), Some(0.85));
    }

    #[test]
    fn invalid_accuracy_rejected() {
        let mut spec = Specification::new();
        let err = spec
            .assert_fuzzy_fact(fact("clarity", &["image"]), 1.5)
            .unwrap_err();
        assert_eq!(err, SpecError::InvalidAccuracy(1.5));
    }

    #[test]
    fn set_now_updates() {
        let mut spec = Specification::new();
        spec.set_now(1990.0);
        assert!(spec
            .prove_goal(Term::pred("now_is", vec![Term::float(1990.0)]))
            .unwrap());
        spec.set_now(1991.0);
        assert!(!spec
            .prove_goal(Term::pred("now_is", vec![Term::float(1990.0)]))
            .unwrap());
    }

    #[test]
    fn observability_captures_trace_and_profile() {
        let mut spec = Specification::new();
        spec.assert_fact(fact("road", &["s1"])).unwrap();
        assert!(spec.last_trace().is_none());
        assert!(spec.profile().is_empty());
        spec.set_trace(true);
        spec.set_profile(true);
        assert!(spec.provable(fact("road", &["s1"])).unwrap());
        let trace = spec.last_trace().unwrap();
        assert!(!trace.is_empty());
        // The query goes through visible/5, and the trace says so.
        assert!(trace.render().contains("visible"));
        // Every step the solver took is attributed to some predicate.
        let prof = spec.profile();
        assert_eq!(prof.total_steps(), spec.solver_stats().steps);
        // Observation must not change the verdict.
        spec.set_trace(false);
        spec.set_profile(false);
        assert!(spec.provable(fact("road", &["s1"])).unwrap());
    }

    #[test]
    fn profiled_parallel_audit_merges_workers() {
        let mut spec = Specification::new();
        spec.assert_fact(fact("capital_of", &["jc", "mo"])).unwrap();
        spec.assert_fact(fact("capital_of", &["stl", "mo"]).model("rumor"))
            .unwrap();
        spec.constrain(
            Constraint::new("two_capitals")
                .witness("Z")
                .when(Formula::all(vec![
                    Formula::fact(fact("capital_of", &["X", "Z"])),
                    Formula::fact(fact("capital_of", &["Y", "Z"])),
                    Formula::Cmp(CmpOp::NotUnify, Pat::var("X"), Pat::var("Y")),
                ])),
        )
        .unwrap();
        spec.set_world_view(&["omega", "rumor"]).unwrap();
        spec.set_profile(true);
        spec.reset_profile();
        let report = spec.audit_world_views(4).unwrap();
        assert_eq!(report.violations.len(), 1);
        let prof = spec.profile();
        assert_eq!(prof.total_steps(), report.stats.steps);
        let row_sum: u64 = prof.rows().iter().map(|(_, p)| p.steps).sum();
        assert_eq!(row_sum, report.stats.steps);
    }

    /// A world view whose `omega` member carries a cheap satisfied
    /// constraint and whose `bad` member carries a constraint over a
    /// divergent rule (`loop(a) :- loop(a)`), so `bad`'s audit goal can
    /// only end by exhausting a resource bound.
    fn spec_with_divergent_member() -> Specification {
        let mut spec = Specification::new();
        spec.assert_fact(fact("marker", &["m1"]).model("bad"))
            .unwrap();
        spec.assert_fact(fact("capital_of", &["jc", "mo"])).unwrap();
        spec.assert_fact(fact("capital_of", &["stl", "mo"]))
            .unwrap();
        spec.define(Rule::new(
            fact("loop", &["a"]),
            Formula::fact(fact("loop", &["a"])),
        ))
        .unwrap();
        spec.constrain(
            Constraint::new("two_capitals")
                .witness("Z")
                .when(Formula::all(vec![
                    Formula::fact(fact("capital_of", &["X", "Z"])),
                    Formula::fact(fact("capital_of", &["Y", "Z"])),
                    Formula::Cmp(CmpOp::NotUnify, Pat::var("X"), Pat::var("Y")),
                ])),
        )
        .unwrap();
        spec.constrain(
            Constraint::new("diverges")
                .model("bad")
                .when(Formula::fact(fact("loop", &["a"]))),
        )
        .unwrap();
        spec.set_world_view(&["omega", "bad"]).unwrap();
        spec
    }

    #[test]
    fn audit_degrades_per_member_on_budget_exhaustion() {
        let mut spec = spec_with_divergent_member();
        spec.set_budget(4_000, 64);
        let report = spec.audit_world_views(2).unwrap();
        // omega's violation is still found...
        assert_eq!(report.violations.len(), 1);
        // ...and the divergent member is reported, not fatal.
        assert!(!report.is_complete());
        assert_eq!(report.incomplete.len(), 1);
        let failure = &report.incomplete[0];
        assert_eq!(failure.model, "bad");
        assert_eq!(failure.attempts, 0); // default policy: no retries
        assert!(failure.error.is_recoverable());
        assert_eq!(
            report.per_model,
            vec![("omega".to_string(), 1), ("bad".to_string(), 0)]
        );
    }

    #[test]
    fn deadline_degrades_divergent_audit_member() {
        let mut spec = spec_with_divergent_member();
        spec.set_budget(u64::MAX, 64);
        spec.set_deadline(Some(Duration::from_millis(25)));
        let report = spec.audit_world_views(2).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(report
            .incomplete
            .iter()
            .any(|f| matches!(f.error, EngineError::DeadlineExceeded { .. })));
        // A deadline is not budget-recoverable: no retries were burned.
        assert_eq!(report.incomplete[0].attempts, 0);
    }

    #[test]
    fn retry_policy_rescues_budget_limited_audit_goals() {
        let mut spec = Specification::new();
        // Enough facts that the constraint's quadratic join exceeds the
        // base per-worker budget but fits an escalated one.
        let names: Vec<String> = (0..40).map(|i| format!("x{i}")).collect();
        for n in &names {
            spec.assert_fact(fact("p", &[n.as_str()])).unwrap();
        }
        spec.constrain(
            Constraint::new("crowded")
                .witness("X")
                .witness("Y")
                .when(Formula::all(vec![
                    Formula::fact(fact("p", &["X"])),
                    Formula::fact(fact("p", &["Y"])),
                    Formula::Cmp(CmpOp::NotUnify, Pat::var("X"), Pat::var("Y")),
                ])),
        )
        .unwrap();
        spec.set_budget(2_000, 64);
        spec.set_profile(true);
        spec.reset_profile();

        // Without retries the goal is budget-limited...
        let report = spec.audit_world_views(1).unwrap();
        assert!(!report.is_complete());
        assert!(matches!(
            report.incomplete[0].error,
            EngineError::StepLimit { .. }
        ));

        // ...and with an escalating policy the same audit completes.
        spec.set_retry(RetryPolicy::retries(3));
        spec.reset_profile();
        let report = spec.audit_world_views(1).unwrap();
        assert!(report.is_complete(), "escalation should rescue the goal");
        assert_eq!(report.violations.len(), 40 * 39);
        // Retry attempts fold into the merged ledger: the absorbed profile
        // still accounts for every recorded step.
        let prof = spec.profile();
        assert_eq!(prof.total_steps(), report.stats.steps);
    }

    #[test]
    fn violations_for_model_matches_audit_restriction() {
        let mut spec = spec_with_divergent_member();
        spec.set_budget(4_000, 64);
        let report = spec.audit_world_views(2).unwrap();
        let mut expected: Vec<Violation> = Vec::new();
        for (name, _) in report.per_model.iter() {
            if report.incomplete.iter().any(|f| &f.model == name) {
                continue;
            }
            for v in spec.violations_for_model(name).unwrap() {
                if !expected.contains(&v) {
                    expected.push(v);
                }
            }
        }
        assert_eq!(report.violations, expected);
    }

    #[test]
    fn txn_rollback_restores_prior_state() {
        let mut spec = Specification::new();
        spec.assert_fact(fact("road", &["s1"])).unwrap();
        let before = spec.query(fact("road", &["X"])).unwrap();
        spec.begin_txn().unwrap();
        assert!(spec.in_txn());
        spec.assert_fact(fact("road", &["s2"])).unwrap();
        assert!(spec.retract_fact(fact("road", &["s1"])).unwrap());
        let undone = spec.rollback_txn().unwrap();
        assert_eq!(undone, 2);
        assert!(!spec.in_txn());
        assert_eq!(spec.query(fact("road", &["X"])).unwrap(), before);
    }

    #[test]
    fn txn_commit_returns_dirty_delta() {
        let mut spec = Specification::new();
        spec.begin_txn().unwrap();
        spec.assert_fact(fact("road", &["s1"])).unwrap();
        let delta = spec.commit_txn().unwrap();
        assert!(!delta.is_empty());
        // Facts land in the reified holds relation: h/5 is dirtied.
        assert!(delta
            .dirty_preds()
            .iter()
            .any(|k| k.name.as_str() == "h" && k.arity == 5));
        assert!(spec.provable(fact("road", &["s1"])).unwrap());
    }

    #[test]
    fn txn_misuse_is_reported() {
        let mut spec = Specification::new();
        assert!(matches!(spec.commit_txn(), Err(SpecError::Transaction(_))));
        assert!(matches!(
            spec.rollback_txn(),
            Err(SpecError::Transaction(_))
        ));
        spec.begin_txn().unwrap();
        assert!(matches!(spec.begin_txn(), Err(SpecError::Transaction(_))));
        spec.rollback_txn().unwrap();
    }

    /// Two world-view members with disjoint fact bases: dirtying one
    /// member's facts must re-audit only that member, and the incremental
    /// report must equal a from-scratch full audit byte-for-byte.
    #[test]
    fn incremental_audit_matches_full_and_skips_clean_members() {
        let mut spec = Specification::new();
        spec.set_incremental(true);
        spec.assert_fact(fact("wet", &["c1"])).unwrap();
        spec.assert_fact(fact("dry", &["c2"]).model("survey"))
            .unwrap();
        spec.constrain(Constraint::new("soggy").witness("X").when(Formula::and(
            Formula::fact(fact("wet", &["X"])),
            Formula::fact(fact("dry", &["X"])),
        )))
        .unwrap();
        spec.constrain(
            Constraint::new("arid")
                .model("survey")
                .witness("X")
                .when(Formula::fact(fact("dry", &["X"]))),
        )
        .unwrap();
        spec.set_world_view(&["omega", "survey"]).unwrap();
        // Seed the cache with a full audit.
        let full = spec.audit_world_views(2).unwrap();
        assert_eq!(
            full.per_model,
            vec![("omega".into(), 0), ("survey".into(), 1)]
        );
        // A delta confined to omega's facts…
        spec.begin_txn().unwrap();
        spec.assert_fact(fact("dry", &["c1"])).unwrap();
        let delta = spec.commit_txn().unwrap();
        // …must reproduce the full re-audit…
        let incremental = spec.audit_incremental(&delta, 2).unwrap();
        let reference = spec.audit_world_views(2).unwrap();
        assert_eq!(incremental.violations, reference.violations);
        assert_eq!(incremental.per_model, reference.per_model);
        // soggy(c1) in omega; arid(c2) and now arid(c1) in survey (the
        // new omega fact is visible to survey's constraint too).
        assert_eq!(incremental.violations.len(), 3);
        // An empty delta re-solves nothing at all.
        let noop = spec.audit_incremental(&Delta::new(), 2).unwrap();
        assert_eq!(noop.violations, reference.violations);
        assert_eq!(noop.per_model, reference.per_model);
        assert_eq!(noop.workers, 0, "no member may be re-solved");
        assert_eq!(noop.stats.steps, 0);
    }

    #[test]
    fn incremental_audit_without_cache_falls_back_to_full() {
        let mut spec = Specification::new();
        spec.set_incremental(true);
        spec.assert_fact(fact("wet", &["c1"])).unwrap();
        spec.constrain(
            Constraint::new("damp")
                .witness("X")
                .when(Formula::fact(fact("wet", &["X"]))),
        )
        .unwrap();
        // No prior full audit: must fall back (and then be cached).
        let report = spec.audit_incremental(&Delta::new(), 2).unwrap();
        assert_eq!(report.violations.len(), 1);
        let again = spec.audit_incremental(&Delta::new(), 2).unwrap();
        assert_eq!(again.workers, 0, "second call must hit the cache");
        assert_eq!(again.violations, report.violations);
    }

    #[test]
    fn commit_with_trace_records_delta_port() {
        let mut spec = Specification::new();
        spec.set_trace(true);
        spec.begin_txn().unwrap();
        spec.assert_fact(fact("road", &["s1"])).unwrap();
        spec.commit_txn().unwrap();
        let trace = spec.last_trace().expect("commit must leave a trace");
        assert!(trace.render().contains("D-CMT"));
    }

    #[test]
    fn satisfy_general_formula() {
        let mut spec = Specification::new();
        spec.assert_fact(fact("population", &[]).arg("stl").arg(Pat::Int(2_800_000)))
            .unwrap();
        // large_city style query: population(X, N), N > 1_000_000.
        let answers = spec
            .satisfy(&Formula::and(
                Formula::fact(FactPat::new("population").arg("X").arg("N")),
                Formula::Cmp(CmpOp::Gt, Pat::var("N"), Pat::Int(1_000_000)),
            ))
            .unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].get("X").unwrap(), &Term::atom("stl"));
    }
}
