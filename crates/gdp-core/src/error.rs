//! Specification-level errors.

use std::fmt;

use gdp_engine::EngineError;

/// `Result` specialized to [`SpecError`].
pub type SpecResult<T> = Result<T, SpecError>;

/// Errors raised while building or querying a specification.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// The underlying inference engine reported an error.
    Engine(EngineError),
    /// A rule violates the formula-language restrictions of §III.A —
    /// typically a variable in a `not`/`forall` or in the head that is not
    /// range-restricted by a positive body atom.
    UnsafeRule {
        /// The rule's head predicate.
        rule: String,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A fact argument failed its declared semantic-domain (sort) check.
    SortViolation {
        /// Predicate the fact asserts.
        predicate: String,
        /// Zero-based argument position.
        position: usize,
        /// Expected domain name.
        domain: String,
        /// The offending value, rendered.
        value: String,
    },
    /// A fact was asserted with the wrong number of arguments for its
    /// declared signature.
    ArityMismatch {
        /// Predicate the fact asserts.
        predicate: String,
        /// Arity from the signature.
        expected: usize,
        /// Arity of the offending fact.
        found: usize,
    },
    /// Reference to a semantic domain that has not been declared.
    UnknownDomain(String),
    /// Reference to a model that has not been declared.
    UnknownModel(String),
    /// Reference to a meta-model that has not been registered.
    UnknownMetaModel(String),
    /// Reference to a resolution function (logical space) that has not
    /// been registered.
    UnknownResolution(String),
    /// An accuracy value outside the closed interval `[0, 1]` (§VII.B).
    InvalidAccuracy(f64),
    /// A basic fact must be ground — "basic facts … are simply assumed to
    /// be true" of particular objects (§II.B); only virtual facts may
    /// contain variables.
    NonGroundFact(String),
    /// A name was declared twice with conflicting definitions.
    Redeclaration(String),
    /// Transaction misuse: opening a transaction while one is already
    /// open, or committing / rolling back with none open.
    Transaction(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Engine(e) => write!(f, "engine: {e}"),
            SpecError::UnsafeRule { rule, reason } => {
                write!(f, "unsafe rule for `{rule}`: {reason}")
            }
            SpecError::SortViolation {
                predicate,
                position,
                domain,
                value,
            } => write!(
                f,
                "sort violation: `{predicate}` argument {position} must be in domain \
                 `{domain}`, got `{value}`"
            ),
            SpecError::ArityMismatch {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch: `{predicate}` declared with {expected} arguments, \
                 fact has {found}"
            ),
            SpecError::UnknownDomain(d) => write!(f, "unknown semantic domain `{d}`"),
            SpecError::UnknownModel(m) => write!(f, "unknown model `{m}`"),
            SpecError::UnknownMetaModel(m) => write!(f, "unknown meta-model `{m}`"),
            SpecError::UnknownResolution(r) => {
                write!(f, "unknown resolution function (grid) `{r}`")
            }
            SpecError::InvalidAccuracy(a) => {
                write!(f, "accuracy {a} outside the closed interval [0, 1]")
            }
            SpecError::Redeclaration(n) => write!(f, "`{n}` is already declared"),
            SpecError::NonGroundFact(p) => write!(
                f,
                "basic fact for `{p}` contains variables; use a virtual-fact \
                 definition instead"
            ),
            SpecError::Transaction(m) => write!(f, "transaction error: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<EngineError> for SpecError {
    fn from(e: EngineError) -> SpecError {
        SpecError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_error_converts() {
        let e: SpecError = EngineError::DivisionByZero.into();
        assert_eq!(e, SpecError::Engine(EngineError::DivisionByZero));
    }

    #[test]
    fn display_mentions_details() {
        let e = SpecError::SortViolation {
            predicate: "average_temperature".into(),
            position: 0,
            domain: "temperature".into(),
            value: "green".into(),
        };
        let s = e.to_string();
        assert!(s.contains("average_temperature"));
        assert!(s.contains("green"));
    }
}
