//! Virtual-fact definitions and constraints.
//!
//! A [`Rule`] is the paper's virtual-fact definition
//! `(∀ Xi): (F(Xi) ⇒ q(Xk))` (§III.A); a [`Constraint`] is the same shape
//! concluding the distinguished `ERROR` predicate (§III.C). Both compile to
//! engine clauses over the reified `h/5` relation, with bodies reading
//! through the world-view-filtered `visible/5`.

use gdp_engine::{Clause, GroupId, Term};

use crate::error::{SpecError, SpecResult};
use crate::fact::{FactPat, Target};
use crate::formula::Formula;
use crate::pattern::{Pat, VarTable};

/// A virtual-fact definition.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// The derived fact (the `q(Xk)` conclusion).
    pub head: FactPat,
    /// The defining formula `F(Xi)`.
    pub body: Formula,
}

impl Rule {
    /// Build a rule.
    pub fn new(head: FactPat, body: Formula) -> Rule {
        Rule { head, body }
    }

    /// Validate range restrictions and compile to an engine clause.
    ///
    /// Returns the clause together with the variable table (callers use it
    /// to report variable names in diagnostics).
    pub fn compile(&self, group: GroupId) -> SpecResult<(Clause, VarTable)> {
        let mut head_vars = Vec::new();
        self.head.collect_vars(&mut head_vars);
        if let Err(reason) = self.body.check_safety(&head_vars) {
            return Err(SpecError::UnsafeRule {
                rule: self
                    .head
                    .pred_name()
                    .unwrap_or_else(|| self.head.pred.to_string()),
                reason,
            });
        }
        let mut vt = VarTable::new();
        // Compile the head first so head variables get the low indices —
        // purely cosmetic, but it makes dumped clauses readable.
        let head = self.head.compile(&mut vt, Target::Holds);
        let body = self.body.compile_pushdown(&mut vt);
        Ok((Clause::new(head, body, group), vt))
    }

    /// Compile without the safety check (meta-rules legitimately break the
    /// first-order range restrictions — e.g. the closed-world assumption
    /// binds `X` through the `is_object` registry rather than a user fact).
    pub fn compile_unchecked(&self, group: GroupId) -> (Clause, VarTable) {
        let mut vt = VarTable::new();
        let head = self.head.compile(&mut vt, Target::Holds);
        let body = self.body.compile_pushdown(&mut vt);
        (Clause::new(head, body, group), vt)
    }
}

/// A semantic-consistency constraint: `F(Xi) ⇒ ERROR(type, Xk)` (§III.C).
///
/// Constraints are ordinary rules whose head is the reserved `error`
/// predicate, so a violation is itself a derivable fact — and, like any
/// fact, is relative to a model and therefore to the active world view
/// ("a constraint violation may occur in one world view but not in the
/// other", §III.E).
#[derive(Clone, Debug, PartialEq)]
pub struct Constraint {
    /// The violation tag (`two_capitals`, `bad_temp`, …).
    pub error_type: String,
    /// Witness arguments reported with the violation.
    pub witnesses: Vec<Pat>,
    /// The model this constraint belongs to; `None` = default model.
    pub model: Option<Pat>,
    /// The violating condition.
    pub condition: Formula,
}

impl Constraint {
    /// Start building a constraint with the given violation tag.
    #[allow(clippy::new_ret_no_self)] // builder entry point
    pub fn new(error_type: &str) -> ConstraintBuilder {
        ConstraintBuilder {
            error_type: error_type.to_string(),
            witnesses: Vec::new(),
            model: None,
        }
    }

    /// Lower to the equivalent [`Rule`] with head
    /// `error(type, witness₁, …)`.
    pub fn to_rule(&self) -> Rule {
        let mut head = FactPat::new(crate::ERROR_PRED).arg(Pat::Atom(self.error_type.clone()));
        for w in &self.witnesses {
            head = head.arg(w.clone());
        }
        if let Some(m) = &self.model {
            head = head.model(m.clone());
        }
        Rule::new(head, self.condition.clone())
    }

    /// Validate and compile, like [`Rule::compile`].
    pub fn compile(&self, group: GroupId) -> SpecResult<(Clause, VarTable)> {
        self.to_rule().compile(group)
    }
}

/// Builder for [`Constraint`].
pub struct ConstraintBuilder {
    error_type: String,
    witnesses: Vec<Pat>,
    model: Option<Pat>,
}

impl ConstraintBuilder {
    /// Add a witness argument reported with the violation.
    pub fn witness(mut self, w: impl Into<Pat>) -> ConstraintBuilder {
        self.witnesses.push(w.into());
        self
    }

    /// Attach the constraint to a model.
    pub fn model(mut self, m: impl Into<Pat>) -> ConstraintBuilder {
        self.model = Some(m.into());
        self
    }

    /// Finish with the violating condition.
    pub fn when(self, condition: Formula) -> Constraint {
        Constraint {
            error_type: self.error_type,
            witnesses: self.witnesses,
            model: self.model,
            condition,
        }
    }
}

/// A raw engine clause pair used by meta-model rule packs: heads and bodies
/// are engine terms built directly by the spatial/temporal/fuzzy crates.
#[derive(Clone, Debug)]
pub struct RawClause {
    /// Clause head.
    pub head: Term,
    /// Clause body (`true` for facts).
    pub body: Term,
}

impl RawClause {
    /// A fact (body `true`).
    pub fn fact(head: Term) -> RawClause {
        RawClause {
            head,
            body: Term::atom("true"),
        }
    }

    /// A rule.
    pub fn rule(head: Term, body: Term) -> RawClause {
        RawClause { head, body }
    }

    /// Build a clause from named-variable patterns sharing one variable
    /// table — the convenient way for meta-model rule packs to state rules
    /// readably.
    pub fn build(head: &Pat, body: &[Pat]) -> RawClause {
        let mut vt = VarTable::new();
        let h = vt.compile(head);
        let goals: Vec<Term> = body.iter().map(|p| vt.compile(p)).collect();
        RawClause {
            head: h,
            body: Term::conj(goals),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::CmpOp;

    #[test]
    fn open_road_rule_compiles() {
        // (∀X): road(X) ∧ (∀Y): (bridge(Y,X) → open(Y)) ⇒ open_road(X)
        let rule = Rule::new(
            FactPat::new("open_road").arg("X"),
            Formula::and(
                Formula::fact(FactPat::new("road").arg("X")),
                Formula::forall(
                    Formula::fact(FactPat::new("bridge").arg("Y").arg("X")),
                    Formula::fact(FactPat::new("open").arg("Y")),
                ),
            ),
        );
        let (clause, _vt) = rule.compile(GroupId::root()).unwrap();
        assert!(clause.head.to_string().starts_with("h(omega"));
        // forall compiles to its existential normal form
        // absent((C, absent(T))): the model variable of each visible/5
        // lookup is existential, so the strict form would flounder.
        assert!(clause.body.to_string().contains("absent("));
        assert!(clause.n_vars >= 2);
    }

    #[test]
    fn unsafe_rule_rejected_with_predicate_name() {
        let rule = Rule::new(
            FactPat::new("ghost").arg("Z"),
            Formula::fact(FactPat::new("road").arg("X")),
        );
        match rule.compile(GroupId::root()) {
            Err(SpecError::UnsafeRule { rule, reason }) => {
                assert_eq!(rule, "ghost");
                assert!(reason.contains("Z"));
            }
            other => panic!("expected UnsafeRule, got {other:?}"),
        }
    }

    #[test]
    fn two_capitals_constraint() {
        // capital_of(X,Z) ∧ capital_of(Y,Z) ∧ X ≠ Y ⇒ ERROR(two_capitals, Z)
        let c = Constraint::new("two_capitals")
            .witness("Z")
            .when(Formula::all(vec![
                Formula::fact(FactPat::new("capital_of").arg("X").arg("Z")),
                Formula::fact(FactPat::new("capital_of").arg("Y").arg("Z")),
                Formula::Cmp(CmpOp::NotUnify, Pat::var("X"), Pat::var("Y")),
            ]));
        let (clause, _) = c.compile(GroupId::root()).unwrap();
        assert!(clause.head.to_string().contains("error, [two_capitals"));
    }

    #[test]
    fn constraint_model_scoping() {
        let c = Constraint::new("check")
            .model("strict_view")
            .when(Formula::fact(FactPat::new("p")));
        let (clause, _) = c.compile(GroupId::root()).unwrap();
        assert!(clause.head.to_string().starts_with("h(strict_view"));
    }
}
