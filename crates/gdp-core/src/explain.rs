//! Proof explanation.
//!
//! The whole point of an *executable* requirements formalism is validation:
//! when a fact is derivable, the requirements engineer needs to see *which
//! rules and raw data* make it so (and when it is not, which branch
//! failed). [`explain`] re-derives a provable goal top-down and returns the
//! proof tree; [`Proof::render`] prints it with reified facts decoded back
//! into the paper's notation (`model'@p q(args)`).

use gdp_engine::{resolve_deep, symbols, Budget, EngineError, GroupId, PredKey, Solver, Term};

use crate::error::SpecResult;
use crate::reify::functors;
use crate::spec::Specification;

/// One node of a proof tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Proof {
    /// A stored fact (clause with body `true`).
    Fact {
        /// The proved (ground) goal.
        goal: Term,
        /// The clause group it came from (model, meta-model, kernel, …).
        group: GroupId,
    },
    /// A rule application.
    Rule {
        /// The proved (ground) goal.
        goal: Term,
        /// The group of the applied clause.
        group: GroupId,
        /// Proofs of the (instantiated) body goals.
        children: Vec<Proof>,
    },
    /// A builtin or native predicate that held.
    Builtin {
        /// The goal.
        goal: Term,
    },
    /// Negation as failure: the inner goal was not provable.
    Naf {
        /// The unprovable inner goal.
        goal: Term,
    },
    /// Bounded universal quantification that held; children are proofs of
    /// the conclusion for each condition instance.
    Forall {
        /// The forall goal.
        goal: Term,
        /// One conclusion proof per condition solution.
        children: Vec<Proof>,
    },
}

impl Proof {
    /// The goal this node proves.
    pub fn goal(&self) -> &Term {
        match self {
            Proof::Fact { goal, .. }
            | Proof::Rule { goal, .. }
            | Proof::Builtin { goal }
            | Proof::Naf { goal }
            | Proof::Forall { goal, .. } => goal,
        }
    }

    /// Total number of nodes in the tree.
    pub fn size(&self) -> usize {
        1 + match self {
            Proof::Rule { children, .. } | Proof::Forall { children, .. } => {
                children.iter().map(Proof::size).sum()
            }
            _ => 0,
        }
    }

    /// Render as an indented tree, decoding reified facts into the paper's
    /// notation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let indent = "  ".repeat(depth);
        match self {
            Proof::Fact { goal, group } => {
                out.push_str(&format!(
                    "{indent}{}   [fact in {}]\n",
                    decode(goal),
                    group.name()
                ));
            }
            Proof::Rule {
                goal,
                group,
                children,
            } => {
                out.push_str(&format!(
                    "{indent}{}   [rule in {}]\n",
                    decode(goal),
                    group.name()
                ));
                for child in children {
                    child.render_into(out, depth + 1);
                }
            }
            Proof::Builtin { goal } => {
                out.push_str(&format!("{indent}{}   [builtin]\n", decode(goal)));
            }
            Proof::Naf { goal } => {
                out.push_str(&format!("{indent}not {}   [unprovable]\n", decode(goal)));
            }
            Proof::Forall { goal, children } => {
                out.push_str(&format!(
                    "{indent}{}   [forall, {} instances]\n",
                    decode(goal),
                    children.len()
                ));
                for child in children {
                    child.render_into(out, depth + 1);
                }
            }
        }
    }
}

/// Decode a reified `h/5`, `fh/6`, `visible/5`, or `fvisible/6` term back
/// into the paper's surface notation; other terms render as-is.
pub fn decode(t: &Term) -> String {
    let Some(functor) = t.functor() else {
        return t.to_string();
    };
    let args = t.args();
    let (model, space, time, acc, pred, fact_args) =
        if (functor == functors::holds() || functor == functors::visible()) && args.len() == 5 {
            (&args[0], &args[1], &args[2], None, &args[3], &args[4])
        } else if (functor == functors::fuzzy_holds() || functor == functors::fuzzy_visible())
            && args.len() == 6
        {
            (
                &args[0],
                &args[1],
                &args[2],
                Some(&args[3]),
                &args[4],
                &args[5],
            )
        } else {
            return t.to_string();
        };
    let mut out = String::new();
    if let Some(a) = acc {
        out.push_str(&format!("%{a} "));
    }
    let any = Term::Atom(functors::any());
    if *space != any {
        out.push_str(&format!("{} ", decode_qual(space, "@")));
    }
    if *time != any {
        out.push_str(&format!("{} ", decode_qual(time, "&")));
    }
    // An unbound model variable means "any active model"; the default
    // model ω is implicit. Everything else is shown as a qualifier.
    if !matches!(model, Term::Var(_))
        && model.as_atom() != Some(gdp_engine::Sym::new(crate::DEFAULT_MODEL))
    {
        out.push_str(&format!("{model}'"));
    }
    out.push_str(&pred.to_string());
    match gdp_engine::list_to_vec(fact_args) {
        Some(items) if !items.is_empty() => {
            let rendered: Vec<String> = items.iter().map(Term::to_string).collect();
            out.push_str(&format!("({})", rendered.join(", ")));
        }
        Some(_) => {}
        None => out.push_str(&format!("({fact_args})")),
    }
    out
}

fn decode_qual(q: &Term, sigil: &str) -> String {
    let Some(f) = q.functor() else {
        return q.to_string();
    };
    let name = f.as_str();
    let args = q.args();
    match (name.as_str(), args.len()) {
        ("sat", 1) => format!("{sigil} {}", args[0]),
        ("tat", 1) => format!("{sigil} {}", args[0]),
        ("su", 2) => format!("{sigil}u[{}] {}", args[0], args[1]),
        ("ss", 2) => format!("{sigil}s[{}] {}", args[0], args[1]),
        ("sa", 2) => format!("{sigil}a[{}] {}", args[0], args[1]),
        ("tu", 1) => format!("{sigil}u{}", args[0]),
        ("ts", 1) => format!("{sigil}s{}", args[0]),
        ("ta", 1) => format!("{sigil}a{}", args[0]),
        _ => q.to_string(),
    }
}

/// Maximum explanation recursion depth (proof trees deeper than this are
/// truncated into a `Builtin`-style leaf).
const MAX_DEPTH: usize = 64;

/// Explain why `goal` (an engine-level term, e.g. a compiled fact pattern)
/// is provable. Returns `None` when it is not provable at all.
///
/// If the goal has variables, the explanation covers its *first* solution.
pub fn explain(spec: &Specification, goal: Term) -> SpecResult<Option<Proof>> {
    let solver = Solver::new(spec.kb(), Budget::default());
    let solutions = solver.solve(goal.clone(), 1)?;
    if solutions.is_empty() {
        return Ok(None);
    }
    // Ground the goal with its first solution.
    let mut grounded = goal.clone();
    for (var, value) in solutions[0].bindings() {
        grounded = substitute(&grounded, *var, value);
    }
    Ok(Some(explain_ground(spec, &grounded, 0)?))
}

fn substitute(t: &Term, var: gdp_engine::Var, value: &Term) -> Term {
    match t {
        Term::Var(v) if *v == var => value.clone(),
        Term::Compound(f, args) => {
            let new_args: Vec<Term> = args.iter().map(|a| substitute(a, var, value)).collect();
            Term::Compound(*f, new_args.into())
        }
        other => other.clone(),
    }
}

fn explain_ground(spec: &Specification, goal: &Term, depth: usize) -> SpecResult<Proof> {
    if depth > MAX_DEPTH {
        return Ok(Proof::Builtin { goal: goal.clone() });
    }
    let functor = goal.functor();
    let args = goal.args();

    // Control constructs.
    if let Some(f) = functor {
        if f == symbols::and() && args.len() == 2 {
            // Flatten conjunctions into one Rule-less list by explaining
            // both sides and merging (callers wrap them).
            let left = explain_ground(spec, &args[0], depth + 1)?;
            let right = explain_ground(spec, &args[1], depth + 1)?;
            return Ok(Proof::Rule {
                goal: goal.clone(),
                group: GroupId::named("conjunction"),
                children: vec![left, right],
            });
        }
        if f == symbols::or() && args.len() == 2 {
            // Explain whichever branch holds (prefer the left).
            let solver = Solver::new(spec.kb(), Budget::default());
            if solver.prove(args[0].clone())? {
                return explain_ground(spec, &args[0], depth + 1);
            }
            return explain_ground(spec, &args[1], depth + 1);
        }
        if (f == symbols::not() || f == symbols::absent()) && args.len() == 1 {
            // `absent((C, absent(T)))` is the compiled form of
            // `forall(C, T)`; decode it back into the quantifier so the
            // proof tree shows one conclusion proof per condition instance.
            if f == symbols::absent() {
                if let Term::Compound(c, conj) = &args[0] {
                    if *c == symbols::and() && conj.len() == 2 {
                        if let Term::Compound(inner, t) = &conj[1] {
                            if *inner == symbols::absent() && t.len() == 1 {
                                return explain_forall(spec, goal, &conj[0], &t[0], depth);
                            }
                        }
                    }
                }
            }
            return Ok(Proof::Naf {
                goal: args[0].clone(),
            });
        }
        if f == symbols::forall() && args.len() == 2 {
            return explain_forall(spec, goal, &args[0], &args[1], depth);
        }
    }

    // User predicates: find the first applicable clause and recurse.
    if let Some(key) = PredKey::of_term(goal) {
        if spec.kb().native(key).is_none() {
            let store = gdp_engine::BindStore::new();
            let candidates =
                spec.kb()
                    .candidates(key, &store, args, &gdp_engine::BoundSet::default());
            for clause in candidates.iter() {
                let mut store = gdp_engine::BindStore::new();
                if let Some(max) = goal.max_var() {
                    store.ensure(max);
                }
                let base = store.alloc_block(clause.n_vars);
                let head = clause.head.offset_vars(base);
                if !store.unify(goal, &head) {
                    continue;
                }
                let body = resolve_deep(&store, &clause.body.offset_vars(base));
                if body == Term::atom("true") {
                    return Ok(Proof::Fact {
                        goal: goal.clone(),
                        group: clause.group,
                    });
                }
                // The body may still have free variables; take its first
                // solution and ground it before recursing.
                let solver = Solver::new(spec.kb(), Budget::default());
                let solutions = match solver.solve(body.clone(), 1) {
                    Ok(s) => s,
                    Err(EngineError::StepLimit { .. }) | Err(EngineError::DepthLimit { .. }) => {
                        continue
                    }
                    Err(e) => return Err(e.into()),
                };
                let Some(solution) = solutions.first() else {
                    continue;
                };
                let mut grounded = body.clone();
                for (var, value) in solution.bindings() {
                    grounded = substitute(&grounded, *var, value);
                }
                let children = explain_conjuncts(spec, &grounded, depth + 1)?;
                return Ok(Proof::Rule {
                    goal: goal.clone(),
                    group: clause.group,
                    children,
                });
            }
        }
    }

    // Builtins, natives, or anything we could not decompose.
    Ok(Proof::Builtin { goal: goal.clone() })
}

/// Explain a (ground) conjunction as a flat list of child proofs.
/// Explain a held universal quantifier (`forall(C, T)` or its compiled
/// `absent((C, absent(T)))` form): one child proof of the conclusion per
/// condition instance.
fn explain_forall(
    spec: &Specification,
    goal: &Term,
    cond: &Term,
    then_tpl: &Term,
    depth: usize,
) -> SpecResult<Proof> {
    let solver = Solver::new(spec.kb(), Budget::default());
    let cond_solutions = solver.solve_all(cond.clone())?;
    let mut children = Vec::new();
    for sol in cond_solutions {
        let mut then = then_tpl.clone();
        for (var, value) in sol.bindings() {
            then = substitute(&then, *var, value);
        }
        // Residual variables in the conclusion (e.g. the fresh model
        // variable of a `visible` lookup) are grounded by its own first
        // solution before recursing.
        if !then.is_ground() {
            let sols = solver.solve(then.clone(), 1)?;
            if let Some(sol) = sols.first() {
                for (var, value) in sol.bindings() {
                    then = substitute(&then, *var, value);
                }
            }
        }
        if then.is_ground() {
            children.push(explain_ground(spec, &then, depth + 1)?);
        }
    }
    Ok(Proof::Forall {
        goal: goal.clone(),
        children,
    })
}

fn explain_conjuncts(spec: &Specification, body: &Term, depth: usize) -> SpecResult<Vec<Proof>> {
    if let Some(f) = body.functor() {
        if f == symbols::and() && body.args().len() == 2 {
            let mut left = explain_conjuncts(spec, &body.args()[0], depth)?;
            let right = explain_conjuncts(spec, &body.args()[1], depth)?;
            left.extend(right);
            return Ok(left);
        }
    }
    Ok(vec![explain_ground(spec, body, depth)?])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::{FactPat, Target};
    use crate::formula::Formula;
    use crate::pattern::VarTable;
    use crate::rule::Rule;

    fn fact(pred: &str, args: &[&str]) -> FactPat {
        let mut f = FactPat::new(pred);
        for a in args {
            f = f.arg(*a);
        }
        f
    }

    fn compile_goal(pat: FactPat) -> Term {
        let mut vt = VarTable::new();
        pat.compile(&mut vt, Target::Visible)
    }

    fn bridge_spec() -> Specification {
        let mut spec = Specification::new();
        spec.assert_fact(fact("road", &["s1"])).unwrap();
        spec.assert_fact(fact("bridge", &["b1", "s1"])).unwrap();
        spec.assert_fact(fact("bridge", &["b2", "s1"])).unwrap();
        spec.assert_fact(fact("open", &["b1"])).unwrap();
        spec.assert_fact(fact("open", &["b2"])).unwrap();
        spec.define(Rule::new(
            fact("open_road", &["X"]),
            Formula::and(
                Formula::fact(fact("road", &["X"])),
                Formula::forall(
                    Formula::fact(fact("bridge", &["Y", "X"])),
                    Formula::fact(fact("open", &["Y"])),
                ),
            ),
        ))
        .unwrap();
        spec
    }

    #[test]
    fn explains_a_stored_fact() {
        let spec = bridge_spec();
        let proof = explain(&spec, compile_goal(fact("road", &["s1"])))
            .unwrap()
            .expect("provable");
        // visible → kernel rule → stored h fact.
        let rendered = proof.render();
        assert!(rendered.contains("[fact"), "{rendered}");
        assert!(rendered.contains("road(s1)"), "{rendered}");
    }

    #[test]
    fn explains_a_rule_with_forall() {
        let spec = bridge_spec();
        let proof = explain(&spec, compile_goal(fact("open_road", &["s1"])))
            .unwrap()
            .expect("provable");
        let rendered = proof.render();
        assert!(rendered.contains("open_road(s1)"), "{rendered}");
        assert!(rendered.contains("forall"), "{rendered}");
        // Both bridges appear as instances of the quantifier.
        assert!(rendered.contains("open(b1)"), "{rendered}");
        assert!(rendered.contains("open(b2)"), "{rendered}");
        assert!(proof.size() >= 5);
    }

    #[test]
    fn unprovable_goals_have_no_proof() {
        let spec = bridge_spec();
        let proof = explain(&spec, compile_goal(fact("open_road", &["s9"]))).unwrap();
        assert!(proof.is_none());
    }

    #[test]
    fn explains_negation_as_failure() {
        let mut spec = bridge_spec();
        spec.assert_fact(fact("bridge", &["b3", "s1"])).unwrap();
        spec.define(Rule::new(
            fact("closed", &["X"]),
            Formula::and(
                Formula::fact(fact("bridge", &["X", "R"])),
                Formula::not(Formula::fact(fact("open", &["X"]))),
            ),
        ))
        .unwrap();
        let proof = explain(&spec, compile_goal(fact("closed", &["b3"])))
            .unwrap()
            .expect("provable");
        let rendered = proof.render();
        assert!(rendered.contains("[unprovable]"), "{rendered}");
    }

    #[test]
    fn explains_first_solution_of_open_query() {
        let spec = bridge_spec();
        let proof = explain(&spec, compile_goal(fact("bridge", &["B", "S"])))
            .unwrap()
            .expect("provable");
        assert!(proof.render().contains("bridge(b1, s1)"));
    }

    #[test]
    fn decode_renders_paper_notation() {
        let h = crate::reify::holds(
            Term::atom("celsius"),
            crate::reify::space_at(Term::pred("pt", vec![Term::float(3.0), Term::float(4.0)])),
            Term::Atom(functors::any()),
            Term::atom("vegetation"),
            Term::list(vec![Term::atom("pine"), Term::atom("hill")]),
        );
        assert_eq!(decode(&h), "@ pt(3.0, 4.0) celsius'vegetation(pine, hill)");
        let fh = crate::reify::fuzzy_holds(
            Term::atom(crate::DEFAULT_MODEL),
            Term::Atom(functors::any()),
            Term::Atom(functors::any()),
            Term::float(0.85),
            Term::atom("clarity"),
            Term::list(vec![Term::atom("image")]),
        );
        assert_eq!(decode(&fh), "%0.85 clarity(image)");
        // Non-reified terms render as-is.
        assert_eq!(decode(&Term::atom("plain")), "plain");
    }
}
