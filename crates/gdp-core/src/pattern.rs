//! Named-variable patterns.
//!
//! Users of the formalism write facts and rules with *named* variables
//! ("any city X whose population exceeds one million…"); the engine wants
//! densely numbered [`gdp_engine::Var`]s. A [`Pat`] is a term with named
//! variables, and a [`VarTable`] maps names to engine variable indices
//! consistently across the head and body of one rule.

use std::fmt;

use gdp_engine::{FxHashMap, Term};

/// A term pattern with named variables.
#[derive(Clone, Debug, PartialEq)]
pub enum Pat {
    /// A named variable; the same name denotes the same variable within one
    /// rule or query.
    Var(String),
    /// An anonymous variable: every occurrence is distinct (Prolog's `_`).
    Wild,
    /// An atom constant.
    Atom(String),
    /// An integer constant.
    Int(i64),
    /// A float constant.
    Float(f64),
    /// A string constant.
    Str(String),
    /// A compound pattern `f(p1, …, pn)`.
    Compound(String, Vec<Pat>),
    /// An already-built engine term spliced in verbatim. Any engine
    /// variables it contains are the caller's responsibility; used by the
    /// higher layers when mixing generated terms into patterns.
    Term(Term),
}

impl Pat {
    /// Shorthand: named variable.
    pub fn var(name: &str) -> Pat {
        Pat::Var(name.to_string())
    }

    /// Shorthand: atom.
    pub fn atom(name: &str) -> Pat {
        Pat::Atom(name.to_string())
    }

    /// Shorthand: compound.
    pub fn app(functor: &str, args: Vec<Pat>) -> Pat {
        Pat::Compound(functor.to_string(), args)
    }

    /// Collect the named variables of this pattern, in first-occurrence
    /// order, into `out` (deduplicated).
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Pat::Var(n) if !out.iter().any(|v| v == n) => {
                out.push(n.clone());
            }
            Pat::Compound(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            _ => {}
        }
    }
}

impl fmt::Display for Pat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pat::Var(n) => write!(f, "{n}"),
            Pat::Wild => write!(f, "_"),
            Pat::Atom(a) => write!(f, "{a}"),
            Pat::Int(i) => write!(f, "{i}"),
            Pat::Float(x) => write!(f, "{x}"),
            Pat::Str(s) => write!(f, "{s:?}"),
            Pat::Compound(functor, args) => {
                write!(f, "{functor}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Pat::Term(t) => write!(f, "{t}"),
        }
    }
}

impl From<i64> for Pat {
    fn from(v: i64) -> Pat {
        Pat::Int(v)
    }
}

impl From<f64> for Pat {
    fn from(v: f64) -> Pat {
        Pat::Float(v)
    }
}

impl From<&str> for Pat {
    /// `"X"`, `"Y0"`, … (leading uppercase) become variables; `"_"` becomes
    /// a wildcard; everything else an atom — mirroring Prolog lexing so
    /// builder-style code reads like the paper's examples.
    fn from(s: &str) -> Pat {
        if s == "_" {
            Pat::Wild
        } else if s.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            Pat::Var(s.to_string())
        } else {
            Pat::Atom(s.to_string())
        }
    }
}

impl From<Term> for Pat {
    fn from(t: Term) -> Pat {
        Pat::Term(t)
    }
}

/// Maps variable names to engine variable indices within one rule or query.
#[derive(Default, Debug)]
pub struct VarTable {
    by_name: FxHashMap<String, u32>,
    names: Vec<String>,
}

impl VarTable {
    /// Empty table.
    pub fn new() -> VarTable {
        VarTable::default()
    }

    /// The engine variable for `name`, allocating on first sight.
    pub fn var(&mut self, name: &str) -> u32 {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = self.names.len() as u32;
        self.by_name.insert(name.to_string(), v);
        self.names.push(name.to_string());
        v
    }

    /// A fresh anonymous variable (never returned by name lookups).
    pub fn fresh(&mut self) -> u32 {
        let v = self.names.len() as u32;
        self.names.push(format!("_G{v}"));
        v
    }

    /// Number of variables allocated so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no variable has been allocated.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The names in allocation order (anonymous slots included).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Iterate over `(name, index)` pairs for *named* variables only.
    pub fn named(&self) -> impl Iterator<Item = (&str, u32)> + '_ {
        self.by_name.iter().map(|(n, &v)| (n.as_str(), v))
    }

    /// Compile a pattern into an engine term under this table.
    pub fn compile(&mut self, pat: &Pat) -> Term {
        match pat {
            Pat::Var(n) => Term::var(self.var(n)),
            Pat::Wild => Term::var(self.fresh()),
            Pat::Atom(a) => Term::atom(a),
            Pat::Int(i) => Term::Int(*i),
            Pat::Float(x) => Term::float(*x),
            Pat::Str(s) => Term::str(s),
            Pat::Compound(functor, args) => {
                let compiled: Vec<Term> = args.iter().map(|a| self.compile(a)).collect();
                Term::pred(functor, compiled)
            }
            Pat::Term(t) => t.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_var() {
        let mut vt = VarTable::new();
        let t1 = vt.compile(&Pat::var("X"));
        let t2 = vt.compile(&Pat::var("X"));
        assert_eq!(t1, t2);
        let t3 = vt.compile(&Pat::var("Y"));
        assert_ne!(t1, t3);
    }

    #[test]
    fn wildcards_are_distinct() {
        let mut vt = VarTable::new();
        let t1 = vt.compile(&Pat::Wild);
        let t2 = vt.compile(&Pat::Wild);
        assert_ne!(t1, t2);
    }

    #[test]
    fn compound_compiles_recursively() {
        let mut vt = VarTable::new();
        let p = Pat::app("pt", vec![Pat::var("X"), Pat::Float(2.0)]);
        let t = vt.compile(&p);
        assert_eq!(t, Term::pred("pt", vec![Term::var(0), Term::float(2.0)]));
    }

    #[test]
    fn from_str_follows_prolog_convention() {
        assert_eq!(Pat::from("X"), Pat::Var("X".into()));
        assert_eq!(Pat::from("saint_louis"), Pat::Atom("saint_louis".into()));
        assert_eq!(Pat::from("_"), Pat::Wild);
    }

    #[test]
    fn collect_vars_dedups_in_order() {
        let p = Pat::app(
            "f",
            vec![
                Pat::var("B"),
                Pat::app("g", vec![Pat::var("A"), Pat::var("B")]),
            ],
        );
        let mut vars = Vec::new();
        p.collect_vars(&mut vars);
        assert_eq!(vars, vec!["B".to_string(), "A".to_string()]);
    }

    #[test]
    fn spliced_terms_pass_through() {
        let mut vt = VarTable::new();
        let t = Term::pred("iv", vec![Term::int(1), Term::int(2)]);
        assert_eq!(vt.compile(&Pat::Term(t.clone())), t);
        assert_eq!(vt.len(), 0);
    }
}
