//! Meta-models and the meta-view (§IV).
//!
//! A meta-model packages "one or more semantic domains, their associated
//! operations, and pertinent meta-rules" so that rules of reasoning can be
//! activated on demand and swapped without touching the rest of the
//! formalization (§IV.C). Here a [`MetaModel`] is a named pack of raw
//! engine clauses plus an optional native-registration hook for the domain
//! operations (distance functions, resolution mapping, interpolation, …).
//!
//! The *meta-view* — "all the meta-models in use at one particular point in
//! time" (§IV.D) — is managed by [`crate::Specification`]: activating a
//! meta-model asserts its clauses under a dedicated clause group;
//! deactivating retracts the group.

use std::sync::Arc;

use gdp_engine::{GroupId, KnowledgeBase, PredKey, RangeSpec};

use crate::rule::RawClause;

/// Hook run once when a meta-model is registered, used to install native
/// predicates its rules rely on.
pub type NativeSetup = Arc<dyn Fn(&mut KnowledgeBase) + Send + Sync>;

/// A named, activatable pack of reasoning rules.
#[derive(Clone)]
pub struct MetaModel {
    name: String,
    doc: String,
    clauses: Vec<RawClause>,
    setup: Option<NativeSetup>,
    tabled: Vec<PredKey>,
    range_indexed: Vec<(PredKey, RangeSpec)>,
}

impl std::fmt::Debug for MetaModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaModel")
            .field("name", &self.name)
            .field("clauses", &self.clauses.len())
            .field("has_setup", &self.setup.is_some())
            .field("tabled", &self.tabled)
            .field("range_indexed", &self.range_indexed.len())
            .finish()
    }
}

impl MetaModel {
    /// Start building a meta-model.
    #[allow(clippy::new_ret_no_self)] // builder entry point
    pub fn new(name: &str) -> MetaModelBuilder {
        MetaModelBuilder {
            name: name.to_string(),
            doc: String::new(),
            clauses: Vec::new(),
            setup: None,
            tabled: Vec::new(),
            range_indexed: Vec::new(),
        }
    }

    /// The meta-model's name (also its clause-group name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line description shown in listings.
    pub fn doc(&self) -> &str {
        &self.doc
    }

    /// The rule pack.
    pub fn clauses(&self) -> &[RawClause] {
        &self.clauses
    }

    /// The clause group its rules are asserted under when active.
    pub fn group(&self) -> GroupId {
        GroupId::named(&format!("meta${}", self.name))
    }

    /// Predicates this meta-model nominates for answer tabling (memoized
    /// only when the specification enables tabling).
    pub fn tabled(&self) -> &[PredKey] {
        &self.tabled
    }

    /// Range-index nominations (predicate → grid/interval access path).
    pub fn range_indexed(&self) -> &[(PredKey, RangeSpec)] {
        &self.range_indexed
    }

    /// Run the native-registration hook (idempotent: natives are keyed by
    /// name/arity, so re-registration simply overwrites) and mark the
    /// model's tabling and range-index nominations on the KB.
    pub fn run_setup(&self, kb: &mut KnowledgeBase) {
        if let Some(setup) = &self.setup {
            setup(kb);
        }
        for &key in &self.tabled {
            kb.mark_tabled(key);
        }
        for (key, spec) in &self.range_indexed {
            kb.add_range_index(*key, spec.clone());
        }
    }
}

/// Builder for [`MetaModel`].
pub struct MetaModelBuilder {
    name: String,
    doc: String,
    clauses: Vec<RawClause>,
    setup: Option<NativeSetup>,
    tabled: Vec<PredKey>,
    range_indexed: Vec<(PredKey, RangeSpec)>,
}

impl MetaModelBuilder {
    /// Attach a one-line description.
    pub fn doc(mut self, doc: &str) -> MetaModelBuilder {
        self.doc = doc.to_string();
        self
    }

    /// Add one clause to the rule pack.
    pub fn clause(mut self, c: RawClause) -> MetaModelBuilder {
        self.clauses.push(c);
        self
    }

    /// Add many clauses.
    pub fn clauses(mut self, cs: Vec<RawClause>) -> MetaModelBuilder {
        self.clauses.extend(cs);
        self
    }

    /// Attach the native-registration hook.
    pub fn setup(
        mut self,
        f: impl Fn(&mut KnowledgeBase) + Send + Sync + 'static,
    ) -> MetaModelBuilder {
        self.setup = Some(Arc::new(f));
        self
    }

    /// Nominate `name/arity` for answer tabling. The mark takes effect
    /// when the model is registered; answers are actually memoized only
    /// while the specification's tabling switch is on.
    pub fn table(mut self, name: &str, arity: usize) -> MetaModelBuilder {
        self.tabled.push(PredKey::new(name, arity));
        self
    }

    /// Nominate a grid/interval range index on `name/arity` — the
    /// range-access analogue of [`MetaModelBuilder::table`]. Takes effect
    /// when the model is registered; consulted only while the
    /// specification's indexing switch is on.
    pub fn range_index(mut self, name: &str, arity: usize, spec: RangeSpec) -> MetaModelBuilder {
        self.range_indexed.push((PredKey::new(name, arity), spec));
        self
    }

    /// Finish.
    pub fn build(self) -> MetaModel {
        MetaModel {
            name: self.name,
            doc: self.doc,
            clauses: self.clauses,
            setup: self.setup,
            tabled: self.tabled,
            range_indexed: self.range_indexed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_engine::Term;

    #[test]
    fn builder_collects_clauses() {
        let mm = MetaModel::new("cwa")
            .doc("closed-world assumption")
            .clause(RawClause::fact(Term::atom("marker")))
            .build();
        assert_eq!(mm.name(), "cwa");
        assert_eq!(mm.clauses().len(), 1);
        assert_eq!(mm.group(), GroupId::named("meta$cwa"));
    }

    #[test]
    fn setup_hook_runs() {
        let mm = MetaModel::new("with_native")
            .setup(|kb| kb.register_native("marker_native", 0, |_, _| Ok(true)))
            .build();
        let mut kb = KnowledgeBase::new();
        mm.run_setup(&mut kb);
        assert!(kb.defined(gdp_engine::PredKey::new("marker_native", 0)));
    }
}
