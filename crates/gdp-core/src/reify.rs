//! The reified fact encoding.
//!
//! The paper's meta-facts are second-order: variables range over predicates
//! and models (§IV.A). The standard way to execute that subset on a
//! first-order engine is *reification*: every qualified fact is stored as a
//! first-order term
//!
//! ```text
//! h(Model, Space, Time, Pred, Args)
//! ```
//!
//! so a meta-rule like the closed-world assumption quantifies over `Pred`
//! and `Model` as ordinary variables. Accuracy-qualified facts (§VII) live
//! in a *separate* relation
//!
//! ```text
//! fh(Model, Space, Time, Accuracy, Pred, Args)
//! ```
//!
//! because "a formula such as q(x) is not provable from facts of the form
//! %a q(x)" (§VII.C) — crisp truth and graded truth must not leak into each
//! other except through explicitly activated meta-rules.
//!
//! Qualifier encodings:
//!
//! | paper | term |
//! |---|---|
//! | unqualified | `any` |
//! | `@p`  (simple spatial)       | `sat(P)` |
//! | `@u[R]p` (area uniform)      | `su(R, P)` |
//! | `@s[R]p` (area sampled)      | `ss(R, P)` |
//! | `@a[R]p` (area averaged)     | `sa(R, P)` |
//! | `&t`  (simple temporal)      | `tat(T)` |
//! | `&u[l,u]` (interval uniform) | `tu(iv(L, U, LC, RC))` |
//! | `&s[l,u]` (interval sampled) | `ts(iv(L, U, LC, RC))` |
//! | `&a[l,u]` (interval averaged)| `ta(iv(L, U, LC, RC))` |
//!
//! where `LC`/`RC` are the atoms `closed`/`open` marking interval ends.

use gdp_engine::{Sym, Term};

/// Functor names of the reified encoding, interned once.
pub mod functors {
    use super::Sym;
    use std::sync::OnceLock;

    macro_rules! known {
        ($($fn_name:ident => $text:expr;)*) => {
            $(
                /// Interned functor used by the reified encoding.
                pub fn $fn_name() -> Sym {
                    static S: OnceLock<Sym> = OnceLock::new();
                    *S.get_or_init(|| Sym::new($text))
                }
            )*
        };
    }

    known! {
        holds => "h";
        fuzzy_holds => "fh";
        visible => "visible";
        fuzzy_visible => "fvisible";
        active_model => "active_model";
        is_object => "is_object";
        is_model => "is_model";
        is_pred => "is_pred";
        any => "any";
        space_at => "sat";
        space_uniform => "su";
        space_sampled => "ss";
        space_averaged => "sa";
        time_at => "tat";
        time_uniform => "tu";
        time_sampled => "ts";
        time_averaged => "ta";
        interval => "iv";
        closed => "closed";
        open => "open";
        error => "error";
        res_def => "res_def";
    }
}

/// The unqualified marker `any`.
pub fn any() -> Term {
    Term::Atom(functors::any())
}

/// Build `h(Model, Space, Time, Pred, Args)`.
pub fn holds(model: Term, space: Term, time: Term, pred: Term, args: Term) -> Term {
    Term::compound(functors::holds(), vec![model, space, time, pred, args])
}

/// Build `fh(Model, Space, Time, Accuracy, Pred, Args)`.
pub fn fuzzy_holds(
    model: Term,
    space: Term,
    time: Term,
    accuracy: Term,
    pred: Term,
    args: Term,
) -> Term {
    Term::compound(
        functors::fuzzy_holds(),
        vec![model, space, time, accuracy, pred, args],
    )
}

/// Build `visible(Model, Space, Time, Pred, Args)` — the world-view-filtered
/// lookup used by rule bodies (§III.E: facts in inactive models "are assumed
/// to be not provable").
pub fn visible(model: Term, space: Term, time: Term, pred: Term, args: Term) -> Term {
    Term::compound(functors::visible(), vec![model, space, time, pred, args])
}

/// Build `fvisible(Model, Space, Time, Accuracy, Pred, Args)` — the
/// world-view-filtered counterpart of `fh/6`.
pub fn fuzzy_visible(
    model: Term,
    space: Term,
    time: Term,
    accuracy: Term,
    pred: Term,
    args: Term,
) -> Term {
    Term::compound(
        functors::fuzzy_visible(),
        vec![model, space, time, accuracy, pred, args],
    )
}

/// Build the spatial qualifier `sat(P)`.
pub fn space_at(p: Term) -> Term {
    Term::compound(functors::space_at(), vec![p])
}

/// Build `su(R, P)`.
pub fn space_uniform(r: Term, p: Term) -> Term {
    Term::compound(functors::space_uniform(), vec![r, p])
}

/// Build `ss(R, P)`.
pub fn space_sampled(r: Term, p: Term) -> Term {
    Term::compound(functors::space_sampled(), vec![r, p])
}

/// Build `sa(R, P)`.
pub fn space_averaged(r: Term, p: Term) -> Term {
    Term::compound(functors::space_averaged(), vec![r, p])
}

/// Build the temporal qualifier `tat(T)`.
pub fn time_at(t: Term) -> Term {
    Term::compound(functors::time_at(), vec![t])
}

/// Build `iv(Lo, Hi, LeftEnd, RightEnd)` with `closed`/`open` end markers.
pub fn interval(lo: Term, hi: Term, left_closed: bool, right_closed: bool) -> Term {
    let end = |closed: bool| {
        Term::Atom(if closed {
            functors::closed()
        } else {
            functors::open()
        })
    };
    Term::compound(
        functors::interval(),
        vec![lo, hi, end(left_closed), end(right_closed)],
    )
}

/// Build `tu(IV)`.
pub fn time_uniform(iv: Term) -> Term {
    Term::compound(functors::time_uniform(), vec![iv])
}

/// Build `ts(IV)`.
pub fn time_sampled(iv: Term) -> Term {
    Term::compound(functors::time_sampled(), vec![iv])
}

/// Build `ta(IV)`.
pub fn time_averaged(iv: Term) -> Term {
    Term::compound(functors::time_averaged(), vec![iv])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_shape() {
        let t = holds(
            Term::atom("omega"),
            any(),
            any(),
            Term::atom("road"),
            Term::list(vec![Term::atom("s1")]),
        );
        assert_eq!(t.to_string(), "h(omega, any, any, road, [s1])");
    }

    #[test]
    fn interval_encoding() {
        let iv = interval(Term::int(1970), Term::int(1980), true, false);
        assert_eq!(iv.to_string(), "iv(1970, 1980, closed, open)");
    }

    #[test]
    fn qualifier_functor_arities() {
        assert_eq!(space_uniform(Term::var(0), Term::var(1)).arity(), Some(2));
        assert_eq!(time_at(Term::int(5)).arity(), Some(1));
        assert_eq!(
            fuzzy_holds(
                Term::atom("omega"),
                any(),
                any(),
                Term::float(0.8),
                Term::atom("clarity"),
                Term::nil()
            )
            .arity(),
            Some(6)
        );
    }
}
