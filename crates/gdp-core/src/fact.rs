//! Fact patterns — the user-facing shape of qualified facts.
//!
//! A [`FactPat`] describes a (possibly non-ground) fact: which model asserts
//! it, where and when it holds, the predicate, and the argument list. It is
//! the unit out of which basic facts, virtual-fact definitions, constraints,
//! and queries are all built.

use gdp_engine::{list_from_iter, Term};

use crate::pattern::{Pat, VarTable};
use crate::qualifiers::{SpaceQual, TimeQual};
use crate::reify;

/// How a fact pattern's argument list is described.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgsPat {
    /// A fixed argument list `q(a1, …, an)`.
    Fixed(Vec<Pat>),
    /// A prefix of known arguments followed by a pattern for the rest —
    /// `q(true | Rest)`. Meta-rules use this shape: the closed-world
    /// assumption's `M'Q(false)(X)` is `[false | Xs]` (§IV.A).
    HeadTail(Vec<Pat>, Pat),
    /// The whole argument list as one pattern (a variable in meta-rules
    /// that relate two occurrences of "the same fact").
    Whole(Pat),
}

impl ArgsPat {
    fn compile(&self, vt: &mut VarTable) -> Term {
        match self {
            ArgsPat::Fixed(items) => {
                list_from_iter(items.iter().map(|p| vt.compile(p)).collect::<Vec<_>>())
            }
            ArgsPat::HeadTail(items, tail) => {
                let tail = vt.compile(tail);
                items
                    .iter()
                    .rev()
                    .fold(tail, |acc, p| Term::cons(vt.compile(p), acc))
            }
            ArgsPat::Whole(p) => vt.compile(p),
        }
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            ArgsPat::Fixed(items) => {
                for p in items {
                    p.collect_vars(out);
                }
            }
            ArgsPat::HeadTail(items, tail) => {
                for p in items {
                    p.collect_vars(out);
                }
                tail.collect_vars(out);
            }
            ArgsPat::Whole(p) => p.collect_vars(out),
        }
    }
}

/// Which reified relation a fact pattern compiles into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// `h/5` — direct storage; used for rule heads and raw assertions.
    Holds,
    /// `visible/5` — world-view-filtered lookup; used for rule bodies.
    Visible,
}

/// A qualified fact pattern.
///
/// ```
/// use gdp_core::FactPat;
///
/// // capital_of(X, Z)  — in whatever models are active
/// let pat = FactPat::new("capital_of").arg("X").arg("Z");
/// assert_eq!(pat.pred_name(), Some("capital_of".to_string()));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FactPat {
    /// The asserting model; `None` means "default model ω" in heads and
    /// "any active model" in bodies/queries.
    pub model: Option<Pat>,
    /// Spatial qualifier.
    pub space: SpaceQual,
    /// Temporal qualifier.
    pub time: TimeQual,
    /// Predicate — usually an atom, a variable in meta-rules.
    pub pred: Pat,
    /// Argument list.
    pub args: ArgsPat,
}

impl FactPat {
    /// A fact pattern for predicate `pred` with no arguments or qualifiers.
    pub fn new(pred: &str) -> FactPat {
        FactPat {
            model: None,
            space: SpaceQual::Any,
            time: TimeQual::Any,
            pred: Pat::Atom(pred.to_string()),
            args: ArgsPat::Fixed(Vec::new()),
        }
    }

    /// A fact pattern whose predicate position is itself a pattern — used
    /// by meta-rules that quantify over predicates (§IV.A).
    pub fn meta(pred: impl Into<Pat>) -> FactPat {
        FactPat {
            model: None,
            space: SpaceQual::Any,
            time: TimeQual::Any,
            pred: pred.into(),
            args: ArgsPat::Fixed(Vec::new()),
        }
    }

    /// Append an argument. `&str` arguments follow the Prolog convention:
    /// capitalized = variable, otherwise atom.
    pub fn arg(mut self, a: impl Into<Pat>) -> FactPat {
        match &mut self.args {
            ArgsPat::Fixed(items) | ArgsPat::HeadTail(items, _) => items.push(a.into()),
            ArgsPat::Whole(_) => panic!("cannot append to a whole-list args pattern"),
        }
        self
    }

    /// Set all arguments at once.
    pub fn args(mut self, args: Vec<Pat>) -> FactPat {
        self.args = ArgsPat::Fixed(args);
        self
    }

    /// Use an explicit args pattern (meta-rule shapes).
    pub fn args_pat(mut self, args: ArgsPat) -> FactPat {
        self.args = args;
        self
    }

    /// Qualify with a model: `m'fact` (§III.D).
    pub fn model(mut self, m: impl Into<Pat>) -> FactPat {
        self.model = Some(m.into());
        self
    }

    /// Qualify with a spatial operator.
    pub fn space(mut self, q: SpaceQual) -> FactPat {
        self.space = q;
        self
    }

    /// Shorthand for the simple spatial operator `@p`.
    pub fn at(self, p: impl Into<Pat>) -> FactPat {
        self.space(SpaceQual::At(p.into()))
    }

    /// Qualify with a temporal operator.
    pub fn time(mut self, q: TimeQual) -> FactPat {
        self.time = q;
        self
    }

    /// Shorthand for the simple temporal operator `&t`.
    pub fn at_time(self, t: impl Into<Pat>) -> FactPat {
        self.time(TimeQual::At(t.into()))
    }

    /// The predicate name, when it is a constant.
    pub fn pred_name(&self) -> Option<String> {
        match &self.pred {
            Pat::Atom(a) => Some(a.clone()),
            _ => None,
        }
    }

    /// Number of arguments, when fixed.
    pub fn fixed_arity(&self) -> Option<usize> {
        match &self.args {
            ArgsPat::Fixed(items) => Some(items.len()),
            _ => None,
        }
    }

    /// The fixed argument patterns, when available.
    pub fn fixed_args(&self) -> Option<&[Pat]> {
        match &self.args {
            ArgsPat::Fixed(items) => Some(items),
            _ => None,
        }
    }

    /// Compile into the reified `h/5` or `visible/5` term.
    ///
    /// An unspecified model compiles to the default model ω for
    /// [`Target::Holds`] and to a fresh variable ("whichever active model")
    /// for [`Target::Visible`].
    pub fn compile(&self, vt: &mut VarTable, target: Target) -> Term {
        let model = match (&self.model, target) {
            (Some(m), _) => vt.compile(m),
            (None, Target::Holds) => Term::atom(crate::DEFAULT_MODEL),
            (None, Target::Visible) => Term::var(vt.fresh()),
        };
        let space = self.space.compile(vt);
        let time = self.time.compile(vt);
        let pred = vt.compile(&self.pred);
        let args = self.args.compile(vt);
        match target {
            Target::Holds => reify::holds(model, space, time, pred, args),
            Target::Visible => reify::visible(model, space, time, pred, args),
        }
    }

    /// Compile into the fuzzy relation: `fh/6` for storage targets,
    /// `fvisible/6` (world-view filtered) for lookup targets.
    pub fn compile_fuzzy(&self, vt: &mut VarTable, accuracy: &Pat, target: Target) -> Term {
        let model = match (&self.model, target) {
            (Some(m), _) => vt.compile(m),
            (None, Target::Holds) => Term::atom(crate::DEFAULT_MODEL),
            (None, Target::Visible) => Term::var(vt.fresh()),
        };
        let space = self.space.compile(vt);
        let time = self.time.compile(vt);
        let acc = vt.compile(accuracy);
        let pred = vt.compile(&self.pred);
        let args = self.args.compile(vt);
        match target {
            Target::Holds => reify::fuzzy_holds(model, space, time, acc, pred, args),
            Target::Visible => reify::fuzzy_visible(model, space, time, acc, pred, args),
        }
    }

    /// All named variables of the pattern, in first-occurrence order
    /// (model, space, time, predicate, arguments).
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        if let Some(m) = &self.model {
            m.collect_vars(out);
        }
        self.space.collect_vars(out);
        self.time.collect_vars(out);
        self.pred.collect_vars(out);
        self.args.collect_vars(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_fact_compiles_to_default_model() {
        let mut vt = VarTable::new();
        let t = FactPat::new("road")
            .arg("s1")
            .compile(&mut vt, Target::Holds);
        assert_eq!(t.to_string(), "h(omega, any, any, road, [s1])");
    }

    #[test]
    fn visible_gets_fresh_model_var() {
        let mut vt = VarTable::new();
        let t = FactPat::new("road")
            .arg("X")
            .compile(&mut vt, Target::Visible);
        // The fresh model variable is allocated before the argument vars.
        assert_eq!(t.to_string(), "visible(_0, any, any, road, [_1])");
    }

    #[test]
    fn explicit_model_is_kept() {
        let mut vt = VarTable::new();
        let t = FactPat::new("freezing_point")
            .model("celsius")
            .arg(Pat::Int(0))
            .arg("x")
            .compile(&mut vt, Target::Holds);
        assert_eq!(
            t.to_string(),
            "h(celsius, any, any, freezing_point, [0, x])"
        );
    }

    #[test]
    fn spatial_and_temporal_quals() {
        let mut vt = VarTable::new();
        let t = FactPat::new("vegetation")
            .arg("pine")
            .arg("hill")
            .at(Pat::app("pt", vec![Pat::Float(3.0), Pat::Float(4.0)]))
            .at_time(Pat::Int(1986))
            .compile(&mut vt, Target::Holds);
        assert_eq!(
            t.to_string(),
            "h(omega, sat(pt(3.0, 4.0)), tat(1986), vegetation, [pine, hill])"
        );
    }

    #[test]
    fn head_tail_args_for_meta_rules() {
        let mut vt = VarTable::new();
        let t = FactPat::meta(Pat::var("Q"))
            .args_pat(ArgsPat::HeadTail(vec![Pat::atom("false")], Pat::var("Xs")))
            .compile(&mut vt, Target::Holds);
        assert_eq!(t.to_string(), "h(omega, any, any, _0, [false | _1])");
    }

    #[test]
    fn fuzzy_compile_has_accuracy_slot() {
        let mut vt = VarTable::new();
        let t = FactPat::new("clarity").arg("image").compile_fuzzy(
            &mut vt,
            &Pat::Float(0.85),
            Target::Holds,
        );
        assert_eq!(t.to_string(), "fh(omega, any, any, 0.85, clarity, [image])");
    }

    #[test]
    fn collect_vars_spans_all_positions() {
        let f = FactPat::new("elevation")
            .model(Pat::var("M"))
            .arg("Z")
            .arg("X")
            .at(Pat::var("P"));
        let mut vars = Vec::new();
        f.collect_vars(&mut vars);
        assert_eq!(vars, vec!["M", "P", "Z", "X"]);
    }
}
