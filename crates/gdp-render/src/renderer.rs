//! Query-driven map rendering.
//!
//! A [`MapRenderer`] is a stack of [`Layer`]s over one logical space
//! (grid). For each representative point of the grid, each layer asks the
//! specification whether its predicate holds there — through `@u[R]p`
//! (uniform: "this patch is water") or `@s[R]p` (sampled: "a road passes
//! somewhere through this patch", the map-making case of §V.C) — and
//! paints the cell when the answer is yes. Later layers draw on top.

use gdp_core::{ArgsPat, FactPat, Pat, SpaceQual, SpecResult, Specification, TimeQual};
use gdp_spatial::{Point, SpatialRegistry};

use crate::frame::{Framebuffer, Rgb};

/// How a layer queries its patch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerOp {
    /// `@u[R]p` — the property holds uniformly over the patch.
    Uniform,
    /// `@s[R]p` — the property holds somewhere in the patch.
    Sampled,
}

/// Visual style of one layer.
#[derive(Clone, Copy, Debug)]
pub struct Style {
    /// Glyph used in ASCII output.
    pub glyph: char,
    /// Fill color used in PPM/SVG output.
    pub color: Rgb,
}

/// One queryable map layer.
#[derive(Clone, Debug)]
pub struct Layer {
    /// Predicate to query.
    pub predicate: String,
    /// Fixed arguments; `None` matches any argument list.
    pub args: Option<Vec<Pat>>,
    /// Query mode.
    pub op: LayerOp,
    /// Rendering style.
    pub style: Style,
}

impl Layer {
    /// A uniform-operator layer.
    pub fn uniform(predicate: &str, glyph: char, color: Rgb) -> Layer {
        Layer {
            predicate: predicate.to_string(),
            args: None,
            op: LayerOp::Uniform,
            style: Style { glyph, color },
        }
    }

    /// A sampled-operator layer (point features that must still be drawn,
    /// like roads thinner than the map resolution).
    pub fn sampled(predicate: &str, glyph: char, color: Rgb) -> Layer {
        Layer {
            predicate: predicate.to_string(),
            args: None,
            op: LayerOp::Sampled,
            style: Style { glyph, color },
        }
    }

    /// Restrict the layer to facts with these exact arguments.
    pub fn with_args(mut self, args: Vec<Pat>) -> Layer {
        self.args = Some(args);
        self
    }

    fn pattern(&self, grid: &str, rep: Point, time: &TimeQual) -> FactPat {
        let mut fact = FactPat::new(&self.predicate);
        fact = match &self.args {
            Some(args) => fact.args(args.clone()),
            None => fact.args_pat(ArgsPat::Whole(Pat::Wild)),
        };
        let at = Pat::Term(rep.to_term());
        let res = Pat::atom(grid);
        fact.space(match self.op {
            LayerOp::Uniform => SpaceQual::AreaUniform { res, at },
            LayerOp::Sampled => SpaceQual::AreaSampled { res, at },
        })
        .time(time.clone())
    }
}

/// A renderer for one logical space.
#[derive(Clone, Debug)]
pub struct MapRenderer {
    grid: String,
    layers: Vec<Layer>,
    background: Style,
    time: TimeQual,
}

impl MapRenderer {
    /// A renderer over the named (registered) grid.
    pub fn new(grid: &str) -> MapRenderer {
        MapRenderer {
            grid: grid.to_string(),
            layers: Vec::new(),
            background: Style {
                glyph: '.',
                color: Rgb(20, 20, 28),
            },
            time: TimeQual::Any,
        }
    }

    /// Render the map *as of* a temporal qualifier: every layer query is
    /// additionally time-qualified, so historical maps come straight from
    /// the temporal operators (e.g. the continuity assumption).
    pub fn at_time(mut self, time: TimeQual) -> MapRenderer {
        self.time = time;
        self
    }

    /// Change the background style.
    pub fn background(mut self, style: Style) -> MapRenderer {
        self.background = style;
        self
    }

    /// Push a layer (later layers draw on top).
    pub fn layer(mut self, layer: Layer) -> MapRenderer {
        self.layers.push(layer);
        self
    }

    /// Evaluate every layer at every patch; returns the style index map
    /// (row-major, row 0 = *north*/top edge, matching image conventions).
    fn evaluate(
        &self,
        spec: &Specification,
        reg: &SpatialRegistry,
    ) -> SpecResult<(u32, u32, Vec<Option<usize>>)> {
        let grid = reg
            .grid(&self.grid)
            .ok_or_else(|| gdp_core::SpecError::UnknownResolution(self.grid.clone()))?;
        let (nx, ny) = (grid.nx, grid.ny);
        let mut cells: Vec<Option<usize>> = vec![None; (nx * ny) as usize];
        for j in 0..ny {
            for i in 0..nx {
                let rep = grid.rep_of_cell(i, j);
                // Image row 0 is the top; grid row 0 is the bottom.
                let out_idx = (((ny - 1 - j) * nx) + i) as usize;
                for (layer_idx, layer) in self.layers.iter().enumerate() {
                    if spec.provable(layer.pattern(&self.grid, rep, &self.time))? {
                        cells[out_idx] = Some(layer_idx);
                    }
                }
            }
        }
        Ok((nx, ny, cells))
    }

    /// Render to an ASCII map (one glyph per patch, newline per row).
    pub fn render_ascii(&self, spec: &Specification, reg: &SpatialRegistry) -> SpecResult<String> {
        let (nx, ny, cells) = self.evaluate(spec, reg)?;
        let mut out = String::with_capacity(((nx + 1) * ny) as usize);
        for row in 0..ny {
            for col in 0..nx {
                let cell = cells[(row * nx + col) as usize];
                out.push(match cell {
                    Some(layer) => self.layers[layer].style.glyph,
                    None => self.background.glyph,
                });
            }
            out.push('\n');
        }
        Ok(out)
    }

    /// Render to a framebuffer (one pixel per patch).
    pub fn render_frame(
        &self,
        spec: &Specification,
        reg: &SpatialRegistry,
    ) -> SpecResult<Framebuffer> {
        let (nx, ny, cells) = self.evaluate(spec, reg)?;
        let mut fb = Framebuffer::new(nx, ny, self.background.color);
        for row in 0..ny {
            for col in 0..nx {
                if let Some(layer) = cells[(row * nx + col) as usize] {
                    fb.set(col, row, self.layers[layer].style.color);
                }
            }
        }
        Ok(fb)
    }

    /// Render straight to PPM bytes.
    pub fn render_ppm(&self, spec: &Specification, reg: &SpatialRegistry) -> SpecResult<Vec<u8>> {
        Ok(self.render_frame(spec, reg)?.to_ppm())
    }

    /// Render straight to SVG with `cell_px`-sized cells.
    pub fn render_svg(
        &self,
        spec: &Specification,
        reg: &SpatialRegistry,
        cell_px: u32,
    ) -> SpecResult<String> {
        Ok(self.render_frame(spec, reg)?.to_svg(cell_px))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_spatial::GridResolution;

    fn setup() -> (Specification, SpatialRegistry) {
        let mut spec = Specification::new();
        let reg = gdp_spatial::install_default(&mut spec).unwrap();
        reg.add_grid(
            &mut spec,
            "map",
            GridResolution::square(0.0, 0.0, 10.0, 4, 4),
        )
        .unwrap();
        (spec, reg)
    }

    fn uniform_at(spec: &mut Specification, pred: &str, obj: &str, x: f64, y: f64) {
        spec.assert_fact(FactPat::new(pred).arg(obj).space(SpaceQual::AreaUniform {
            res: Pat::atom("map"),
            at: Pat::app("pt", vec![Pat::Float(x), Pat::Float(y)]),
        }))
        .unwrap();
    }

    #[test]
    fn ascii_map_paints_patches() {
        let (mut spec, reg) = setup();
        // Water in the bottom-left patch, forest top-right.
        uniform_at(&mut spec, "water", "lake1", 5.0, 5.0);
        uniform_at(&mut spec, "forest", "wood1", 35.0, 35.0);
        let map = MapRenderer::new("map")
            .layer(Layer::uniform("water", '~', Rgb(40, 80, 200)))
            .layer(Layer::uniform("forest", 'T', Rgb(30, 140, 60)));
        let ascii = map.render_ascii(&spec, &reg).unwrap();
        let rows: Vec<&str> = ascii.lines().collect();
        assert_eq!(rows.len(), 4);
        // Grid row 0 (y∈[0,10)) renders at the BOTTOM (image row 3).
        assert_eq!(&rows[3][0..1], "~");
        // Forest at top-right (image row 0, col 3).
        assert_eq!(&rows[0][3..4], "T");
        // Empty patch stays background.
        assert_eq!(&rows[1][1..2], ".");
    }

    #[test]
    fn sampled_layer_draws_thin_features() {
        let (mut spec, reg) = setup();
        // A road at a single point — thinner than the patch.
        spec.assert_fact(FactPat::new("road").arg("rc").space(SpaceQual::At(Pat::app(
            "pt",
            vec![Pat::Float(12.0), Pat::Float(3.0)],
        ))))
        .unwrap();
        let map = MapRenderer::new("map").layer(Layer::sampled("road", '=', Rgb(200, 200, 0)));
        let ascii = map.render_ascii(&spec, &reg).unwrap();
        let rows: Vec<&str> = ascii.lines().collect();
        assert_eq!(&rows[3][1..2], "=");
        // A uniform layer would NOT see the point feature.
        let strict = MapRenderer::new("map").layer(Layer::uniform("road", '=', Rgb(0, 0, 0)));
        let ascii = strict.render_ascii(&spec, &reg).unwrap();
        assert!(!ascii.contains('='));
    }

    #[test]
    fn later_layers_draw_on_top() {
        let (mut spec, reg) = setup();
        uniform_at(&mut spec, "water", "lake1", 5.0, 5.0);
        uniform_at(&mut spec, "ice", "floe1", 5.0, 5.0);
        let map = MapRenderer::new("map")
            .layer(Layer::uniform("water", '~', Rgb(0, 0, 255)))
            .layer(Layer::uniform("ice", '*', Rgb(255, 255, 255)));
        let ascii = map.render_ascii(&spec, &reg).unwrap();
        assert!(ascii.contains('*'));
        assert!(!ascii.contains('~'));
    }

    #[test]
    fn frame_and_formats_agree() {
        let (mut spec, reg) = setup();
        uniform_at(&mut spec, "water", "lake1", 15.0, 25.0);
        let map = MapRenderer::new("map").layer(Layer::uniform("water", '~', Rgb(1, 2, 3)));
        let fb = map.render_frame(&spec, &reg).unwrap();
        // Grid cell (1, 2) → image (col 1, row ny-1-2 = 1).
        assert_eq!(fb.get(1, 1), Rgb(1, 2, 3));
        let ppm = map.render_ppm(&spec, &reg).unwrap();
        assert!(ppm.starts_with(b"P6\n4 4\n255\n"));
        let svg = map.render_svg(&spec, &reg, 8).unwrap();
        assert!(svg.contains("#010203"));
    }

    #[test]
    fn unknown_grid_is_an_error() {
        let (spec, reg) = setup();
        let map = MapRenderer::new("nope");
        assert!(map.render_ascii(&spec, &reg).is_err());
    }

    #[test]
    fn temporal_rendering_respects_intervals() {
        use gdp_core::IntervalPat;
        let (mut spec, reg) = setup();
        gdp_temporal::install_default(&mut spec).unwrap();
        // The lake exists only during [1970, 1980).
        spec.assert_fact(
            FactPat::new("water")
                .arg("ephemeral_lake")
                .space(SpaceQual::AreaUniform {
                    res: Pat::atom("map"),
                    at: Pat::app("pt", vec![Pat::Float(5.0), Pat::Float(5.0)]),
                })
                .time(TimeQual::IntervalUniform(IntervalPat::right_open(
                    1970, 1980,
                ))),
        )
        .unwrap();
        let map_at = |t: i64| {
            MapRenderer::new("map")
                .at_time(TimeQual::At(Pat::Int(t)))
                .layer(Layer::uniform("water", '~', Rgb(0, 0, 255)))
        };
        let wet = map_at(1975).render_ascii(&spec, &reg).unwrap();
        assert!(
            wet.contains('~'),
            "lake visible in 1975:
{wet}"
        );
        let dry = map_at(1985).render_ascii(&spec, &reg).unwrap();
        assert!(
            !dry.contains('~'),
            "lake gone by 1985:
{dry}"
        );
    }

    #[test]
    fn layer_with_fixed_args_filters() {
        let (mut spec, reg) = setup();
        uniform_at(&mut spec, "vegetation", "pine", 5.0, 5.0);
        uniform_at(&mut spec, "vegetation", "oak", 15.0, 5.0);
        let pines = MapRenderer::new("map").layer(
            Layer::uniform("vegetation", 'p', Rgb(0, 99, 0)).with_args(vec![Pat::atom("pine")]),
        );
        let ascii = pines.render_ascii(&spec, &reg).unwrap();
        assert_eq!(ascii.matches('p').count(), 1);
    }
}
