//! A software framebuffer with PPM and SVG writers.

/// A 24-bit RGB color.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rgb(pub u8, pub u8, pub u8);

impl Rgb {
    /// CSS-style hex rendering, e.g. `#1f77b4`.
    pub fn hex(self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.0, self.1, self.2)
    }
}

/// A width×height pixel buffer.
#[derive(Clone, Debug)]
pub struct Framebuffer {
    width: u32,
    height: u32,
    pixels: Vec<Rgb>,
}

impl Framebuffer {
    /// A buffer filled with `background`.
    pub fn new(width: u32, height: u32, background: Rgb) -> Framebuffer {
        assert!(width > 0 && height > 0, "empty framebuffer");
        Framebuffer {
            width,
            height,
            pixels: vec![background; (width * height) as usize],
        }
    }

    /// Buffer width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Buffer height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Set one pixel; row 0 is the *top* row (image convention).
    pub fn set(&mut self, x: u32, y: u32, color: Rgb) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[(y * self.width + x) as usize] = color;
    }

    /// Read one pixel.
    pub fn get(&self, x: u32, y: u32) -> Rgb {
        self.pixels[(y * self.width + x) as usize]
    }

    /// Serialize as binary PPM (P6).
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.reserve(self.pixels.len() * 3);
        for p in &self.pixels {
            out.extend_from_slice(&[p.0, p.1, p.2]);
        }
        out
    }

    /// Serialize as SVG, one `cell_px`-sized rect per pixel (adjacent
    /// same-color pixels in a row are merged into one rect).
    pub fn to_svg(&self, cell_px: u32) -> String {
        let mut svg = format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\">\n",
            self.width * cell_px,
            self.height * cell_px
        );
        for y in 0..self.height {
            let mut x = 0;
            while x < self.width {
                let color = self.get(x, y);
                let mut run = 1;
                while x + run < self.width && self.get(x + run, y) == color {
                    run += 1;
                }
                svg.push_str(&format!(
                    "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{}\"/>\n",
                    x * cell_px,
                    y * cell_px,
                    run * cell_px,
                    cell_px,
                    color.hex()
                ));
                x += run;
            }
        }
        svg.push_str("</svg>\n");
        svg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut fb = Framebuffer::new(4, 3, Rgb(0, 0, 0));
        fb.set(2, 1, Rgb(255, 0, 0));
        assert_eq!(fb.get(2, 1), Rgb(255, 0, 0));
        assert_eq!(fb.get(0, 0), Rgb(0, 0, 0));
    }

    #[test]
    fn ppm_header_and_size() {
        let fb = Framebuffer::new(4, 3, Rgb(1, 2, 3));
        let ppm = fb.to_ppm();
        assert!(ppm.starts_with(b"P6\n4 3\n255\n"));
        assert_eq!(ppm.len(), b"P6\n4 3\n255\n".len() + 4 * 3 * 3);
        assert_eq!(&ppm[ppm.len() - 3..], &[1, 2, 3]);
    }

    #[test]
    fn svg_merges_runs() {
        let mut fb = Framebuffer::new(4, 1, Rgb(0, 0, 0));
        fb.set(3, 0, Rgb(255, 255, 255));
        let svg = fb.to_svg(10);
        // One run of 3 black + one white pixel = 2 rects.
        assert_eq!(svg.matches("<rect").count(), 2);
        assert!(svg.contains("#ffffff"));
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(Rgb(31, 119, 180).hex(), "#1f77b4");
    }
}
