//! # gdp-render — graphical rendering of logical information
//!
//! The prototype "provides the means for graphical rendering of logical
//! information on a high resolution color display" (a Gould/DeAnza
//! IP8500, §I). This crate is the software stand-in: it drives the same
//! *logical* interface — per-patch queries of the spatial operators
//! (`@u[R]p`, `@s[R]p`) against a [`gdp_core::Specification`] — and
//! rasterizes the answers to ASCII maps, binary PPM images, and SVG.
//!
//! Nothing here inspects stored data structures directly: every pixel is
//! the answer to a logic query, which is precisely the demonstration the
//! prototype's display made.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod frame;
mod renderer;

pub use frame::{Framebuffer, Rgb};
pub use renderer::{Layer, LayerOp, MapRenderer, Style};
