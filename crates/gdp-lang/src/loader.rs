//! Loading parsed statements into a specification.

use gdp_core::{Answer, Formula, Specification};
use gdp_spatial::{GridResolution, SpatialRegistry};

use crate::ast::Statement;
use crate::error::{LangError, LangResult};
use crate::parser::parse_program_diagnostics;
use crate::token::Pos;

/// What a load produced.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LoadSummary {
    /// Basic facts asserted (crisp + fuzzy).
    pub facts: usize,
    /// Virtual-fact definitions installed (crisp + fuzzy).
    pub rules: usize,
    /// Constraints installed.
    pub constraints: usize,
    /// Directives executed.
    pub directives: usize,
    /// Results of each `?-` query, in source order.
    pub query_results: Vec<Vec<Answer>>,
}

/// Loads source text into a [`Specification`], optionally with a
/// [`SpatialRegistry`] for `#grid` directives.
pub struct Loader<'a> {
    spec: &'a mut Specification,
    spatial: Option<&'a SpatialRegistry>,
}

impl<'a> Loader<'a> {
    /// A loader without spatial support (`#grid` directives error).
    pub fn new(spec: &'a mut Specification) -> Loader<'a> {
        Loader {
            spec,
            spatial: None,
        }
    }

    /// A loader that can register grids.
    pub fn with_spatial(spec: &'a mut Specification, spatial: &'a SpatialRegistry) -> Loader<'a> {
        Loader {
            spec,
            spatial: Some(spatial),
        }
    }

    /// Parse and execute `src`.
    ///
    /// The load is *resilient*: parsing recovers at clause boundaries, and
    /// a statement the specification rejects does not stop the statements
    /// after it from being applied. All diagnostics are collected — a
    /// single one is returned as itself, several as
    /// [`LangError::Batch`] — so a source with multiple defects reports
    /// every problem (with line numbers) in one pass. The summary of what
    /// *did* load is folded into the error-free case only; statements that
    /// applied before/after a failure remain applied either way.
    pub fn load_str(&mut self, src: &str) -> LangResult<LoadSummary> {
        self.load_str_guarded(src, || {})
    }

    /// Like [`Self::load_str`], but run `before` ahead of every statement.
    ///
    /// This is the shell's cancellation seam: an interactive session
    /// passes a closure that rearms its [`gdp_engine::CancelToken`], so a
    /// Ctrl-C that lands during one statement of a multi-statement source
    /// (or a `:load`ed file) kills only the in-flight query — the
    /// statements after it still run instead of dying instantly with a
    /// stale `Cancelled`.
    pub fn load_str_guarded(
        &mut self,
        src: &str,
        mut before: impl FnMut(),
    ) -> LangResult<LoadSummary> {
        let (statements, mut errors) = parse_program_diagnostics(src);
        let mut summary = LoadSummary::default();
        for (idx, (pos, stmt)) in statements.into_iter().enumerate() {
            before();
            if let Err(e) = self.apply(idx, pos, stmt, &mut summary) {
                errors.push(e);
            }
        }
        match errors.len() {
            0 => Ok(summary),
            1 => Err(errors.pop().expect("len checked")),
            _ => Err(LangError::Batch(errors)),
        }
    }

    fn apply(
        &mut self,
        idx: usize,
        pos: Pos,
        stmt: Statement,
        summary: &mut LoadSummary,
    ) -> LangResult<()> {
        let load_err = |error| LangError::Load {
            statement: idx,
            line: pos.line,
            error,
        };
        match stmt {
            Statement::Domain { name, def } => {
                self.spec.declare_domain(&name, def).map_err(load_err)?;
                summary.directives += 1;
            }
            Statement::Predicate { name, sorts } => {
                self.spec
                    .declare_predicate(&name, sorts)
                    .map_err(load_err)?;
                summary.directives += 1;
            }
            Statement::Model(m) => {
                self.spec.declare_model(&m);
                summary.directives += 1;
            }
            Statement::Object(o) => {
                self.spec.declare_object(&o);
                summary.directives += 1;
            }
            Statement::WorldView(models) => {
                let refs: Vec<&str> = models.iter().map(String::as_str).collect();
                self.spec.set_world_view(&refs).map_err(load_err)?;
                summary.directives += 1;
            }
            Statement::MetaView(metas) => {
                let refs: Vec<&str> = metas.iter().map(String::as_str).collect();
                self.spec.set_meta_view(&refs).map_err(load_err)?;
                summary.directives += 1;
            }
            Statement::Activate(m) => {
                self.spec.activate_meta_model(&m).map_err(load_err)?;
                summary.directives += 1;
            }
            Statement::Deactivate(m) => {
                self.spec.deactivate_meta_model(&m).map_err(load_err)?;
                summary.directives += 1;
            }
            Statement::Grid {
                name,
                x0,
                y0,
                cell,
                nx,
                ny,
            } => {
                let Some(spatial) = self.spatial else {
                    return Err(LangError::Unsupported {
                        pos,
                        message: format!(
                            "#grid {name}: no spatial registry attached to this loader"
                        ),
                    });
                };
                spatial
                    .add_grid(
                        self.spec,
                        &name,
                        GridResolution::square(x0, y0, cell, nx, ny),
                    )
                    .map_err(load_err)?;
                summary.directives += 1;
            }
            Statement::Now(t) => {
                self.spec.set_now(t);
                summary.directives += 1;
            }
            Statement::Retract(f) => {
                self.spec.retract_fact(f).map_err(load_err)?;
                summary.directives += 1;
            }
            Statement::Fact(f) => {
                self.spec.assert_fact(f).map_err(load_err)?;
                summary.facts += 1;
            }
            Statement::FuzzyFact(f, a) => {
                self.spec.assert_fuzzy_fact(f, a).map_err(load_err)?;
                summary.facts += 1;
            }
            Statement::Rule(r) => {
                self.spec.define(r).map_err(load_err)?;
                summary.rules += 1;
            }
            Statement::FuzzyRule {
                head,
                accuracy,
                body,
            } => {
                gdp_fuzzy::define_fuzzy(self.spec, head, accuracy, body).map_err(load_err)?;
                summary.rules += 1;
            }
            Statement::Constraint(c) => {
                self.spec.constrain(c).map_err(load_err)?;
                summary.constraints += 1;
            }
            Statement::Query(f) => {
                let answers = self.spec.satisfy(&f).map_err(load_err)?;
                summary.query_results.push(answers);
            }
        }
        Ok(())
    }
}

/// One-shot convenience: load `src` into `spec`.
pub fn load(spec: &mut Specification, src: &str) -> LangResult<LoadSummary> {
    Loader::new(spec).load_str(src)
}

/// One-shot convenience: evaluate a query string against `spec`.
pub fn query(spec: &Specification, src: &str) -> LangResult<Vec<Answer>> {
    let f: Formula = crate::parser::parse_formula(src)?;
    spec.satisfy(&f).map_err(|error| LangError::Load {
        statement: 0,
        line: 0,
        error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_engine::Term;

    #[test]
    fn loads_the_papers_bridge_world() {
        let mut spec = Specification::new();
        let summary = load(
            &mut spec,
            r#"
            // §II.B basic facts
            road(s1). road(s2).
            road_intersection(s1, s2).
            bridge(b1, s1). bridge(b2, s1). bridge(b3, s2).
            open(b1). open(b2).

            // §III.A virtual facts
            open_road(X) :- road(X), forall(bridge(Y, X), open(Y)).
            closed(X) :- bridge(X, R), not(open(X)).
            known_status(X) :- bridge(X, R), (open(X) ; closed(X)).

            ?- open_road(X).
            ?- closed(B).
            "#,
        )
        .unwrap();
        assert_eq!(summary.facts, 8);
        assert_eq!(summary.rules, 3);
        assert_eq!(summary.query_results.len(), 2);
        let open_roads = &summary.query_results[0];
        assert_eq!(open_roads.len(), 1);
        assert_eq!(open_roads[0].get("X").unwrap(), &Term::atom("s1"));
        let closed = &summary.query_results[1];
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].get("B").unwrap(), &Term::atom("b3"));
    }

    #[test]
    fn load_errors_carry_statement_index() {
        let mut spec = Specification::new();
        // Statement 2 (0-based index 1) is unsafe: head var unbound.
        let err = load(&mut spec, "p(a).\nghost(Z) :- p(X).").unwrap_err();
        match err {
            LangError::Load { statement, .. } => assert_eq!(statement, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn load_recovers_and_reports_every_diagnostic() {
        let mut spec = Specification::new();
        // Line 2 fails to parse, line 4 fails to load (unsafe head var);
        // the well-formed statements around them must still apply.
        let err = load(
            &mut spec,
            "road(s1).\n\
             road( .\n\
             road(s2).\n\
             ghost(Z) :- road(X).\n\
             road(s3).",
        )
        .unwrap_err();
        let diags = err.diagnostics();
        assert_eq!(diags.len(), 2);
        assert!(
            matches!(diags[0], LangError::Parse { pos, .. } if pos.line == 2),
            "{:?}",
            diags[0]
        );
        assert!(
            matches!(diags[1], LangError::Load { line: 4, .. }),
            "{:?}",
            diags[1]
        );
        // All three valid facts landed despite the two failures.
        assert_eq!(query(&spec, "road(X)").unwrap().len(), 3);
    }

    #[test]
    fn single_diagnostic_is_not_wrapped_in_a_batch() {
        let mut spec = Specification::new();
        let err = load(&mut spec, "road(s1).\nroad( .\nroad(s2).").unwrap_err();
        assert!(matches!(err, LangError::Parse { .. }), "{err:?}");
        assert_eq!(query(&spec, "road(X)").unwrap().len(), 2);
    }

    #[test]
    fn grid_without_registry_is_unsupported() {
        let mut spec = Specification::new();
        let err = load(&mut spec, "#grid r1 square(0, 0, 10, 4, 4).").unwrap_err();
        assert!(matches!(err, LangError::Unsupported { .. }));
    }

    #[test]
    fn grid_with_registry_registers() {
        let mut spec = Specification::new();
        let reg = gdp_spatial::install_default(&mut spec).unwrap();
        let src = r#"
            #grid r1 square(0, 0, 10, 4, 4).
            @u[r1] pt(5.0, 5.0) zone(wetland).
            ?- @ pt(3.0, 3.0) zone(wetland).
        "#;
        let summary = Loader::with_spatial(&mut spec, &reg).load_str(src).unwrap();
        assert_eq!(summary.query_results[0].len(), 1);
    }

    #[test]
    fn world_view_directive_switches_models() {
        let mut spec = Specification::new();
        load(
            &mut spec,
            r#"
            #model celsius.
            celsius'freezing_point(0)(x).
            "#,
        )
        .unwrap();
        assert!(query(&spec, "freezing_point(0)(x)").unwrap().is_empty());
        load(&mut spec, "#world_view { omega, celsius }.").unwrap();
        assert_eq!(query(&spec, "freezing_point(0)(x)").unwrap().len(), 1);
    }

    #[test]
    fn retract_directive_withdraws_facts() {
        let mut spec = Specification::new();
        load(&mut spec, "road(s1). road(s2).").unwrap();
        assert_eq!(query(&spec, "road(X)").unwrap().len(), 2);
        load(&mut spec, "#retract road(s1).").unwrap();
        let left = query(&spec, "road(X)").unwrap();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].get("X").unwrap().to_string(), "s2");
    }

    #[test]
    fn fuzzy_statements_load() {
        let mut spec = Specification::new();
        load(
            &mut spec,
            r#"
            %0.85 clarity(image).
            surveyed(c1). surveyed(c2).
            %A coverage(region) :- card(surveyed(C), N), A is N / 10.
            "#,
        )
        .unwrap();
        let answers = query(&spec, "%A coverage(region)").unwrap();
        assert_eq!(answers[0].get("A").unwrap().as_f64(), Some(0.2));
    }

    #[test]
    fn uncallable_meta_model_head_is_a_line_numbered_diagnostic() {
        use gdp_core::{MetaModel, RawClause};

        let mut spec = Specification::new();
        // A hand-built pack with a head the engine cannot store. Before
        // the fallible assertion path this panicked deep in the engine;
        // now `#activate` reports it with the source line, and the
        // statements around it still apply.
        let mm = MetaModel::new("broken")
            .clause(RawClause::fact(Term::int(3)))
            .build();
        spec.register_meta_model(mm);
        let err = load(&mut spec, "road(s1).\n#activate broken.\nroad(s2).").unwrap_err();
        match err {
            LangError::Load {
                line: 2,
                error: gdp_core::SpecError::Engine(e),
                ..
            } => assert!(
                matches!(e, gdp_engine::EngineError::UncallableHead { .. }),
                "{e:?}"
            ),
            other => panic!("{other:?}"),
        }
        // Activation was atomic: the meta-view is untouched.
        assert!(spec.meta_view().is_empty());
        assert_eq!(query(&spec, "road(X)").unwrap().len(), 2);
    }

    /// A specification whose `pair/2` join costs well over one budget
    /// check interval (48 × 48 answers), so a stale cancel token
    /// deterministically kills any query over it.
    fn cancellable_spec() -> Specification {
        let mut spec = Specification::new();
        let mut facts = String::new();
        for i in 0..48 {
            facts.push_str(&format!("p(a{i}). "));
        }
        facts.push_str("pair(X, Y) :- p(X), p(Y).");
        load(&mut spec, &facts).unwrap();
        spec
    }

    #[test]
    fn stale_cancellation_poisons_later_statements_without_the_guard() {
        let mut spec = cancellable_spec();
        // A Ctrl-C handler trips the session token between two sources.
        // Without the per-statement rearm, *every* later statement dies
        // with the same stale token — the residual hole the guarded
        // loader exists to close.
        spec.cancel_token().cancel();
        let err = load(
            &mut spec,
            "?- card(pair(X, Y), N).\n?- card(pair(X, Y), M).",
        )
        .unwrap_err();
        let diags = err.diagnostics();
        assert_eq!(diags.len(), 2, "{diags:?}");
        for d in diags {
            assert!(
                matches!(
                    d,
                    LangError::Load {
                        error: gdp_core::SpecError::Engine(gdp_engine::EngineError::Cancelled),
                        ..
                    }
                ),
                "{d:?}"
            );
        }
    }

    #[test]
    fn guarded_load_rearms_the_token_between_statements() {
        let mut spec = cancellable_spec();
        let token = spec.cancel_token();
        token.cancel();
        // The same stale token, but loaded through the shell's seam: the
        // guard rearms it ahead of each statement, so both joins run to
        // completion as if the interrupt had never lingered.
        let summary = Loader::new(&mut spec)
            .load_str_guarded("?- card(pair(X, Y), N).\n?- card(pair(X, Y), M).", || {
                token.reset()
            })
            .expect("rearmed load succeeds");
        assert_eq!(summary.query_results.len(), 2);
        for answers in &summary.query_results {
            assert_eq!(answers.len(), 1, "{answers:?}");
            assert!(
                format!("{:?}", answers[0].bindings()).contains("2304"),
                "{answers:?}"
            );
        }
    }

    #[test]
    fn sort_checking_applies_through_language() {
        let mut spec = Specification::new();
        let err = load(
            &mut spec,
            r#"
            #domain temperature float(-100, 200).
            #predicate average_temperature(temperature, object).
            average_temperature(green)(saint_louis).
            "#,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            LangError::Load {
                error: gdp_core::SpecError::SortViolation { .. },
                ..
            }
        ));
    }
}
