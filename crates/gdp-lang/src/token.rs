//! Lexer for the GDP specification language.
//!
//! The concrete syntax transliterates the paper's notation: Prolog-style
//! clauses with the paper's qualifier prefixes — `@`/`@u`/`@s`/`@a` for
//! the spatial operators (§V.C), `&`/`&u`/`&s`/`&a` for the temporal ones
//! (§VI), `%` for the simple fuzzy operator (§VII.B), and `m'fact` for
//! model qualification (§III.D). Comments are `//` and `/* … */` (`%` is
//! taken by the fuzzy operator).

use std::fmt;

use crate::error::{LangError, LangResult};

/// Source position (1-based line and column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Lowercase-initial identifier (or keyword — the parser decides).
    Atom(String),
    /// Uppercase- or underscore-initial identifier.
    Var(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Double-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `|`
    Pipe,
    /// `.` ending a statement.
    Dot,
    /// `:-`
    Neck,
    /// `?-`
    QueryNeck,
    /// `;`
    Semicolon,
    /// `'` model-qualifier separator.
    Quote,
    /// `#` directive marker.
    Hash,
    /// `@` simple spatial operator.
    At,
    /// `@u` area-uniform (followed by `[`).
    AtU,
    /// `@s` area-sampled.
    AtS,
    /// `@a` area-averaged.
    AtA,
    /// `&` simple temporal operator.
    Amp,
    /// `&u` interval-uniform (followed by `[` or `(`).
    AmpU,
    /// `&s` interval-sampled.
    AmpS,
    /// `&a` interval-averaged.
    AmpA,
    /// `%` simple fuzzy operator.
    Percent,
    /// An operator symbol: one of `< =< > >= =:= =\= \= = == \== + - * / //`.
    Op(String),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Atom(s) => write!(f, "{s}"),
            Tok::Var(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Comma => write!(f, ","),
            Tok::Pipe => write!(f, "|"),
            Tok::Dot => write!(f, "."),
            Tok::Neck => write!(f, ":-"),
            Tok::QueryNeck => write!(f, "?-"),
            Tok::Semicolon => write!(f, ";"),
            Tok::Quote => write!(f, "'"),
            Tok::Hash => write!(f, "#"),
            Tok::At => write!(f, "@"),
            Tok::AtU => write!(f, "@u"),
            Tok::AtS => write!(f, "@s"),
            Tok::AtA => write!(f, "@a"),
            Tok::Amp => write!(f, "&"),
            Tok::AmpU => write!(f, "&u"),
            Tok::AmpS => write!(f, "&s"),
            Tok::AmpA => write!(f, "&a"),
            Tok::Percent => write!(f, "%"),
            Tok::Op(s) => write!(f, "{s}"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenize a whole source string.
pub fn tokenize(src: &str) -> LangResult<Vec<Spanned>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            chars: src.chars().collect(),
            src,
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, msg: impl Into<String>) -> LangError {
        LangError::Lex {
            pos: self.pos(),
            message: msg.into(),
        }
    }

    fn run(mut self) -> LangResult<Vec<Spanned>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let pos = self.pos();
            let Some(c) = self.peek() else {
                out.push(Spanned { tok: Tok::Eof, pos });
                return Ok(out);
            };
            let tok = self.next_token(c)?;
            out.push(Spanned { tok, pos });
        }
    }

    fn skip_trivia(&mut self) -> LangResult<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(self.error("unterminated block comment"));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self, c: char) -> LangResult<Tok> {
        match c {
            '(' => {
                self.bump();
                Ok(Tok::LParen)
            }
            ')' => {
                self.bump();
                Ok(Tok::RParen)
            }
            '[' => {
                self.bump();
                Ok(Tok::LBracket)
            }
            ']' => {
                self.bump();
                Ok(Tok::RBracket)
            }
            '{' => {
                self.bump();
                Ok(Tok::LBrace)
            }
            '}' => {
                self.bump();
                Ok(Tok::RBrace)
            }
            ',' => {
                self.bump();
                Ok(Tok::Comma)
            }
            '|' => {
                self.bump();
                Ok(Tok::Pipe)
            }
            ';' => {
                self.bump();
                Ok(Tok::Semicolon)
            }
            '\'' => {
                self.bump();
                Ok(Tok::Quote)
            }
            '#' => {
                self.bump();
                Ok(Tok::Hash)
            }
            '@' => {
                self.bump();
                match (self.peek(), self.peek2()) {
                    (Some('u'), Some('[')) => {
                        self.bump();
                        Ok(Tok::AtU)
                    }
                    (Some('s'), Some('[')) => {
                        self.bump();
                        Ok(Tok::AtS)
                    }
                    (Some('a'), Some('[')) => {
                        self.bump();
                        Ok(Tok::AtA)
                    }
                    _ => Ok(Tok::At),
                }
            }
            '&' => {
                self.bump();
                match (self.peek(), self.peek2()) {
                    (Some('u'), Some('[' | '(')) => {
                        self.bump();
                        Ok(Tok::AmpU)
                    }
                    (Some('s'), Some('[' | '(')) => {
                        self.bump();
                        Ok(Tok::AmpS)
                    }
                    (Some('a'), Some('[' | '(')) => {
                        self.bump();
                        Ok(Tok::AmpA)
                    }
                    _ => Ok(Tok::Amp),
                }
            }
            '%' => {
                self.bump();
                Ok(Tok::Percent)
            }
            '.' => {
                // End of statement only when not a decimal continuation.
                self.bump();
                Ok(Tok::Dot)
            }
            ':' => {
                self.bump();
                if self.peek() == Some('-') {
                    self.bump();
                    Ok(Tok::Neck)
                } else {
                    Err(self.error("expected `:-`"))
                }
            }
            '?' => {
                self.bump();
                if self.peek() == Some('-') {
                    self.bump();
                    Ok(Tok::QueryNeck)
                } else {
                    Err(self.error("expected `?-`"))
                }
            }
            '"' => self.string(),
            '=' => {
                self.bump();
                match self.peek() {
                    Some('<') => {
                        self.bump();
                        Ok(Tok::Op("=<".into()))
                    }
                    Some(':') => {
                        self.bump();
                        if self.bump() == Some('=') {
                            Ok(Tok::Op("=:=".into()))
                        } else {
                            Err(self.error("expected `=:=`"))
                        }
                    }
                    Some('\\') => {
                        self.bump();
                        if self.bump() == Some('=') {
                            Ok(Tok::Op("=\\=".into()))
                        } else {
                            Err(self.error("expected `=\\=`"))
                        }
                    }
                    Some('=') => {
                        self.bump();
                        Ok(Tok::Op("==".into()))
                    }
                    Some('.') if self.peek2() == Some('.') => {
                        self.bump();
                        self.bump();
                        Ok(Tok::Op("=..".into()))
                    }
                    _ => Ok(Tok::Op("=".into())),
                }
            }
            '\\' => {
                self.bump();
                match self.peek() {
                    Some('=') => {
                        self.bump();
                        if self.peek() == Some('=') {
                            self.bump();
                            Ok(Tok::Op("\\==".into()))
                        } else {
                            Ok(Tok::Op("\\=".into()))
                        }
                    }
                    _ => Err(self.error("expected `\\=` or `\\==`")),
                }
            }
            '<' => {
                self.bump();
                Ok(Tok::Op("<".into()))
            }
            '>' => {
                self.bump();
                if self.peek() == Some('=') {
                    self.bump();
                    Ok(Tok::Op(">=".into()))
                } else {
                    Ok(Tok::Op(">".into()))
                }
            }
            '+' => {
                self.bump();
                Ok(Tok::Op("+".into()))
            }
            '-' => {
                self.bump();
                Ok(Tok::Op("-".into()))
            }
            '*' => {
                self.bump();
                Ok(Tok::Op("*".into()))
            }
            '/' => {
                self.bump();
                if self.peek() == Some('/') {
                    self.bump();
                    Ok(Tok::Op("//".into()))
                } else {
                    Ok(Tok::Op("/".into()))
                }
            }
            c if c.is_ascii_digit() => self.number(false),
            c if c.is_ascii_lowercase() => Ok(self.ident(false)),
            c if c.is_ascii_uppercase() || c == '_' => Ok(self.ident(true)),
            other => Err(self.error(format!("unexpected character `{other}`"))),
        }
    }

    fn string(&mut self) -> LangResult<Tok> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(Tok::Str(s)),
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    other => {
                        return Err(self.error(format!("bad escape `\\{}`", other.unwrap_or(' '))))
                    }
                },
                Some(c) => s.push(c),
                None => return Err(self.error("unterminated string literal")),
            }
        }
    }

    fn number(&mut self, negative: bool) -> LangResult<Tok> {
        let start = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        // A decimal point only when followed by a digit — `5.` is the
        // integer 5 ending a statement.
        if self.peek() == Some('.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            let save = self.i;
            self.bump();
            if matches!(self.peek(), Some('+' | '-')) {
                self.bump();
            }
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                self.i = save; // `3e` was an identifier boundary, back off
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        let _ = self.src; // positions already tracked incrementally
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.error(format!("bad float literal `{text}`")))?;
            Ok(Tok::Float(if negative { -v } else { v }))
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| self.error(format!("bad integer literal `{text}`")))?;
            Ok(Tok::Int(if negative { -v } else { v }))
        }
    }

    fn ident(&mut self, is_var: bool) -> Tok {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            self.bump();
        }
        let text: String = self.chars[start..self.i].iter().collect();
        if is_var {
            Tok::Var(text)
        } else {
            Tok::Atom(text)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn simple_fact() {
        assert_eq!(
            toks("road(s1)."),
            vec![
                Tok::Atom("road".into()),
                Tok::LParen,
                Tok::Atom("s1".into()),
                Tok::RParen,
                Tok::Dot,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn vars_and_numbers() {
        assert_eq!(
            toks("X _y 42 3.5 1e3"),
            vec![
                Tok::Var("X".into()),
                Tok::Var("_y".into()),
                Tok::Int(42),
                Tok::Float(3.5),
                Tok::Float(1000.0),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn integer_dot_ends_statement() {
        assert_eq!(
            toks("p(5)."),
            vec![
                Tok::Atom("p".into()),
                Tok::LParen,
                Tok::Int(5),
                Tok::RParen,
                Tok::Dot,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn qualifier_operators() {
        assert_eq!(
            toks("@u[r] @s[r] @a[r] @ &u[1,2] &s[1,2] &a[1,2] & %"),
            vec![
                Tok::AtU,
                Tok::LBracket,
                Tok::Atom("r".into()),
                Tok::RBracket,
                Tok::AtS,
                Tok::LBracket,
                Tok::Atom("r".into()),
                Tok::RBracket,
                Tok::AtA,
                Tok::LBracket,
                Tok::Atom("r".into()),
                Tok::RBracket,
                Tok::At,
                Tok::AmpU,
                Tok::LBracket,
                Tok::Int(1),
                Tok::Comma,
                Tok::Int(2),
                Tok::RBracket,
                Tok::AmpS,
                Tok::LBracket,
                Tok::Int(1),
                Tok::Comma,
                Tok::Int(2),
                Tok::RBracket,
                Tok::AmpA,
                Tok::LBracket,
                Tok::Int(1),
                Tok::Comma,
                Tok::Int(2),
                Tok::RBracket,
                Tok::Amp,
                Tok::Percent,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn at_followed_by_ident_is_simple_at() {
        // `@uphill(...)` must lex as `@` + atom `uphill`, not `@u`.
        assert_eq!(
            toks("@uphill"),
            vec![Tok::At, Tok::Atom("uphill".into()), Tok::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("< =< > >= =:= =\\= \\= = == \\== =.. is"),
            vec![
                Tok::Op("<".into()),
                Tok::Op("=<".into()),
                Tok::Op(">".into()),
                Tok::Op(">=".into()),
                Tok::Op("=:=".into()),
                Tok::Op("=\\=".into()),
                Tok::Op("\\=".into()),
                Tok::Op("=".into()),
                Tok::Op("==".into()),
                Tok::Op("\\==".into()),
                Tok::Op("=..".into()),
                Tok::Atom("is".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // line comment\n/* block\ncomment */ b"),
            vec![Tok::Atom("a".into()), Tok::Atom("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn neck_and_query() {
        assert_eq!(
            toks(":- ?- ; ' #"),
            vec![
                Tok::Neck,
                Tok::QueryNeck,
                Tok::Semicolon,
                Tok::Quote,
                Tok::Hash,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""hello\nworld""#),
            vec![Tok::Str("hello\nworld".into()), Tok::Eof]
        );
    }

    #[test]
    fn lex_errors_carry_position() {
        let err = tokenize("p(q).\n  $").unwrap_err();
        match err {
            LangError::Lex { pos, .. } => {
                assert_eq!(pos.line, 2);
                assert_eq!(pos.col, 3);
            }
            other => panic!("expected lex error, got {other:?}"),
        }
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(tokenize("/* never closed").is_err());
    }
}
