//! Language-layer errors.

use std::fmt;

use crate::token::Pos;

/// `Result` specialized to [`LangError`].
pub type LangResult<T> = Result<T, LangError>;

/// Errors from lexing, parsing, or loading a specification source.
#[derive(Clone, Debug, PartialEq)]
pub enum LangError {
    /// Tokenization failed.
    Lex {
        /// Where.
        pos: Pos,
        /// Why.
        message: String,
    },
    /// Parsing failed.
    Parse {
        /// Where.
        pos: Pos,
        /// Why.
        message: String,
    },
    /// A parsed statement was rejected by the specification layer.
    Load {
        /// Statement index (0-based) within the source.
        statement: usize,
        /// Source line the statement starts on (1-based; 0 when unknown,
        /// e.g. for queries built at runtime).
        line: u32,
        /// The underlying specification error.
        error: gdp_core::SpecError,
    },
    /// Several independent diagnostics from one load. The loader recovers
    /// at clause boundaries and keeps applying well-formed statements, so
    /// a source with multiple defects reports *all* of them in one pass
    /// instead of one per edit-reload cycle.
    Batch(Vec<LangError>),
    /// A directive referenced something the loader cannot provide (e.g. a
    /// `#grid` directive without a spatial registry attached).
    Unsupported {
        /// Where.
        pos: Pos,
        /// Why.
        message: String,
    },
}

impl LangError {
    /// The individual diagnostics behind this error: a
    /// [`LangError::Batch`] yields its members, anything else yields
    /// itself. Lets interactive frontends print one line per problem
    /// without matching on the batch structure.
    pub fn diagnostics(&self) -> Vec<&LangError> {
        match self {
            LangError::Batch(errors) => errors.iter().collect(),
            other => vec![other],
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            LangError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            LangError::Load {
                statement,
                line: 0,
                error,
            } => {
                write!(f, "load error in statement {}: {error}", statement + 1)
            }
            LangError::Load {
                statement,
                line,
                error,
            } => {
                write!(
                    f,
                    "load error in statement {} (line {line}): {error}",
                    statement + 1
                )
            }
            LangError::Batch(errors) => {
                write!(f, "{} errors:", errors.len())?;
                for e in errors {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
            LangError::Unsupported { pos, message } => {
                write!(f, "unsupported at {pos}: {message}")
            }
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_positions() {
        let e = LangError::Parse {
            pos: Pos { line: 3, col: 7 },
            message: "expected `.`".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:7: expected `.`");
    }
}
