//! # gdp-lang — concrete syntax for the GDP formalism
//!
//! A textual specification language transliterating the paper's notation:
//!
//! ```text
//! // §II.B basic facts                    // §V/§VI/§VII qualifiers
//! road(s1). road(s2).                     @ pt(3.0, 4.0) vegetation(pine)(hill).
//! road_intersection(s1, s2).              @u[r1] pt(5.0, 5.0) zone(wetland).
//!                                         &u[1970, 1980) open(b1).
//! // §III.A virtual facts                 &now capital(jc).
//! open_road(X) :-                         %0.85 clarity(image).
//!     road(X),
//!     forall(bridge(Y, X), open(Y)).      // §III.C constraints
//!                                         constraint two_capitals(Z) :-
//! // §III.D model qualification               capital_of(X, Z),
//! celsius'freezing_point(0)(x).           //  capital_of(Y, Z), X \= Y.
//! ```
//!
//! plus `#` directives for declarations (`#domain`, `#predicate`,
//! `#model`, `#object`, `#grid`, `#now`), view management (`#world_view`,
//! `#meta_view`, `#activate`, `#deactivate`), and `?-` queries.
//!
//! ## Quick example
//!
//! ```
//! use gdp_core::Specification;
//! use gdp_lang::{load, query};
//!
//! let mut spec = Specification::new();
//! load(&mut spec, r#"
//!     bridge(b1). bridge(b2). open(b1).
//!     closed(X) :- bridge(X), not(open(X)).
//! "#).unwrap();
//! let answers = query(&spec, "closed(X)").unwrap();
//! assert_eq!(answers.len(), 1);
//! assert_eq!(answers[0].get("X").unwrap().to_string(), "b2");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod ast;
mod error;
mod loader;
mod parser;
mod printer;
mod token;

pub use ast::Statement;
pub use error::{LangError, LangResult};
pub use loader::{load, query, LoadSummary, Loader};
pub use parser::{parse_formula, parse_program, parse_program_diagnostics};
pub use printer::{print_fact, print_formula, print_pat, print_statement};
pub use token::{tokenize, Pos, Spanned, Tok};
