//! Pretty-printer: renders statements back into concrete syntax.
//!
//! `parse ∘ print` is the identity on the AST (up to formatting), which
//! the property suite checks via print-idempotence.

use gdp_core::{
    AggOp, CmpOp, DomainDef, FactPat, Formula, IntervalPat, Pat, Sort, SpaceQual, TimeQual,
};

use crate::ast::Statement;

/// Render one statement, including the final `.`.
pub fn print_statement(s: &Statement) -> String {
    match s {
        Statement::Domain { name, def } => format!("#domain {name} {}.", print_domain(def)),
        Statement::Predicate { name, sorts } => {
            let sorts: Vec<String> = sorts
                .iter()
                .map(|s| match s {
                    Sort::Object => "object".to_string(),
                    Sort::Any => "any".to_string(),
                    Sort::Domain(d) => d.clone(),
                })
                .collect();
            format!("#predicate {name}({}).", sorts.join(", "))
        }
        Statement::Model(m) => format!("#model {m}."),
        Statement::Object(o) => format!("#object {o}."),
        Statement::WorldView(ms) => format!("#world_view {{ {} }}.", ms.join(", ")),
        Statement::MetaView(ms) => format!("#meta_view {{ {} }}.", ms.join(", ")),
        Statement::Activate(m) => format!("#activate {m}."),
        Statement::Deactivate(m) => format!("#deactivate {m}."),
        Statement::Grid {
            name,
            x0,
            y0,
            cell,
            nx,
            ny,
        } => format!("#grid {name} square({x0}, {y0}, {cell}, {nx}, {ny})."),
        Statement::Now(t) => format!("#now {t}."),
        Statement::Retract(f) => format!("#retract {}.", print_fact(f)),
        Statement::Fact(f) => format!("{}.", print_fact(f)),
        Statement::FuzzyFact(f, a) => format!("%{a} {}.", print_fact(f)),
        Statement::Rule(r) => format!("{} :- {}.", print_fact(&r.head), print_formula(&r.body)),
        Statement::FuzzyRule {
            head,
            accuracy,
            body,
        } => format!(
            "%{} {} :- {}.",
            print_pat(accuracy),
            print_fact(head),
            print_formula(body)
        ),
        Statement::Constraint(c) => {
            let witnesses: Vec<String> = c.witnesses.iter().map(print_pat).collect();
            let head = if witnesses.is_empty() {
                c.error_type.clone()
            } else {
                format!("{}({})", c.error_type, witnesses.join(", "))
            };
            format!("constraint {head} :- {}.", print_formula(&c.condition))
        }
        Statement::Query(f) => format!("?- {}.", print_formula(f)),
    }
}

fn print_domain(def: &DomainDef) -> String {
    match def {
        DomainDef::FloatRange { min, max } => format!("float({min}, {max})"),
        DomainDef::IntRange { min, max } => format!("int({min}, {max})"),
        DomainDef::Enumerated(items) => format!("{{ {} }}", items.join(", ")),
        DomainDef::AnyNumber => "number".to_string(),
        DomainDef::AnyAtom => "atom".to_string(),
        DomainDef::AnyGround => "any".to_string(),
        DomainDef::Custom(_) => "any /* custom (not expressible in syntax) */".to_string(),
    }
}

/// Render a fact pattern with its qualifiers.
pub fn print_fact(f: &FactPat) -> String {
    let mut out = String::new();
    match &f.space {
        SpaceQual::Any => {}
        SpaceQual::At(p) => out.push_str(&format!("@ {} ", print_pat(p))),
        SpaceQual::AreaUniform { res, at } => {
            out.push_str(&format!("@u[{}] {} ", print_pat(res), print_pat(at)))
        }
        SpaceQual::AreaSampled { res, at } => {
            out.push_str(&format!("@s[{}] {} ", print_pat(res), print_pat(at)))
        }
        SpaceQual::AreaAveraged { res, at } => {
            out.push_str(&format!("@a[{}] {} ", print_pat(res), print_pat(at)))
        }
    }
    match &f.time {
        TimeQual::Any => {}
        TimeQual::Now => out.push_str("& now "),
        TimeQual::At(p) => out.push_str(&format!("& {} ", print_pat(p))),
        TimeQual::IntervalUniform(iv) => out.push_str(&format!("&u{} ", print_interval(iv))),
        TimeQual::IntervalSampled(iv) => out.push_str(&format!("&s{} ", print_interval(iv))),
        TimeQual::IntervalAveraged(iv) => out.push_str(&format!("&a{} ", print_interval(iv))),
        TimeQual::Cyclic { .. } => out.push_str("/* cyclic (API-only qualifier) */ "),
    }
    if let Some(m) = &f.model {
        out.push_str(&format!("{}'", print_pat(m)));
    }
    out.push_str(&print_pat(&f.pred));
    if let Some(args) = f.fixed_args() {
        if !args.is_empty() {
            let rendered: Vec<String> = args.iter().map(print_pat).collect();
            out.push_str(&format!("({})", rendered.join(", ")));
        }
    }
    out
}

fn print_interval(iv: &IntervalPat) -> String {
    format!(
        "{}{}, {}{}",
        if iv.lo_closed { "[" } else { "(" },
        print_pat(&iv.lo),
        print_pat(&iv.hi),
        if iv.hi_closed { "]" } else { ")" },
    )
}

/// Render a formula.
pub fn print_formula(f: &Formula) -> String {
    match f {
        Formula::True => "true".to_string(),
        Formula::Fact(fp) => print_fact(fp),
        Formula::FuzzyFact(fp, acc) => format!("%{} {}", print_pat(acc), print_fact(fp)),
        Formula::And(a, b) => format!("{}, {}", print_formula(a), print_formula(b)),
        Formula::Or(a, b) => format!("({} ; {})", print_formula(a), print_formula(b)),
        Formula::Not(inner) => format!("not({})", print_formula(inner)),
        Formula::Forall(c, t) => {
            format!("forall({}, {})", print_formula(c), print_formula(t))
        }
        Formula::Cmp(op, a, b) => {
            let sym = match op {
                CmpOp::Lt => "<",
                CmpOp::Le => "=<",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
                CmpOp::NumEq => "=:=",
                CmpOp::NumNe => "=\\=",
                CmpOp::NotUnify => "\\=",
            };
            format!("{} {} {}", print_pat(a), sym, print_pat(b))
        }
        Formula::Unify(a, b) => format!("{} = {}", print_pat(a), print_pat(b)),
        Formula::Is(a, b) => format!("{} is {}", print_pat(a), print_pat(b)),
        Formula::Domain(d, v) => format!("domain({d}, {})", print_pat(v)),
        Formula::Card(inner, n) => {
            format!("card({}, {})", print_formula(inner), print_pat(n))
        }
        Formula::Agg(op, t, inner, r) => {
            let name = match op {
                AggOp::Avg => "avg",
                AggOp::Sum => "sum",
                AggOp::Min => "min",
                AggOp::Max => "max",
                AggOp::Count => "count",
            };
            format!(
                "{name}({}, {}, {})",
                print_pat(t),
                print_formula(inner),
                print_pat(r)
            )
        }
        Formula::Raw(p) => match p {
            Pat::Compound(op, args)
                if args.len() == 2 && matches!(op.as_str(), "==" | "\\==" | "=..") =>
            {
                format!("{} {op} {}", print_pat(&args[0]), print_pat(&args[1]))
            }
            other => print_pat(other),
        },
    }
}

/// Render a pattern, using infix notation for arithmetic.
pub fn print_pat(p: &Pat) -> String {
    match p {
        Pat::Var(n) => n.clone(),
        Pat::Wild => "_".to_string(),
        Pat::Atom(a) => a.clone(),
        Pat::Int(i) => i.to_string(),
        Pat::Float(x) => {
            if *x == x.trunc() && x.abs() < 1e15 {
                format!("{x:.1}")
            } else {
                format!("{x}")
            }
        }
        Pat::Str(s) => format!("{s:?}"),
        Pat::Compound(op, args)
            if args.len() == 2 && matches!(op.as_str(), "+" | "-" | "*" | "/" | "//" | "mod") =>
        {
            // Parenthesize operands to stay precedence-safe.
            let needs_parens = |p: &Pat| {
                matches!(p, Pat::Compound(o, a)
                    if a.len() == 2
                    && matches!(o.as_str(), "+" | "-" | "*" | "/" | "//" | "mod"))
            };
            let left = if needs_parens(&args[0]) {
                format!("({})", print_pat(&args[0]))
            } else {
                print_pat(&args[0])
            };
            let right = if needs_parens(&args[1]) {
                format!("({})", print_pat(&args[1]))
            } else {
                print_pat(&args[1])
            };
            format!("{left} {op} {right}")
        }
        Pat::Compound(f, args) if f == "." && args.len() == 2 => {
            // Lists.
            let mut items = vec![print_pat(&args[0])];
            let mut tail = &args[1];
            loop {
                match tail {
                    Pat::Compound(c, rest) if c == "." && rest.len() == 2 => {
                        items.push(print_pat(&rest[0]));
                        tail = &rest[1];
                    }
                    Pat::Term(t) if *t == gdp_engine::Term::nil() => {
                        return format!("[{}]", items.join(", "));
                    }
                    other => {
                        return format!("[{} | {}]", items.join(", "), print_pat(other));
                    }
                }
            }
        }
        Pat::Compound(f, args) => {
            let rendered: Vec<String> = args.iter().map(print_pat).collect();
            format!("{f}({})", rendered.join(", "))
        }
        Pat::Term(t) => format!("{t}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    /// `print` is idempotent through a parse cycle.
    fn idempotent(src: &str) {
        let stmts = parse_program(src).unwrap();
        let printed: Vec<String> = stmts.iter().map(print_statement).collect();
        let reparsed = parse_program(&printed.join("\n"))
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        let reprinted: Vec<String> = reparsed.iter().map(print_statement).collect();
        assert_eq!(printed, reprinted, "source: {src}");
    }

    #[test]
    fn facts_round_trip() {
        idempotent("road(s1).");
        idempotent("average_temperature(50)(saint_louis).");
        idempotent("celsius'freezing_point(0)(x).");
        idempotent("@ pt(3.0, 4.0) vegetation(pine)(hill).");
        idempotent("@u[r1] pt(5.0, 5.0) zone(wetland).");
        idempotent("&u[1970, 1980) open(b1).");
        idempotent("& now capital(jc).");
        idempotent("%0.85 clarity(image).");
    }

    #[test]
    fn rules_round_trip() {
        idempotent("open_road(X) :- road(X), forall(bridge(Y, X), open(Y)).");
        idempotent("closed(X) :- bridge(X), not(open(X)).");
        idempotent("known(X) :- bridge(X), (open(X) ; closed(X)).");
        idempotent("large_city(X) :- population(N)(X), N > 1000000.");
        idempotent("d(X, Y) :- p(X), Y is X * 2 + 1.");
        idempotent("m(A) :- avg(Z, elevation(Z)(X), A).");
        idempotent("n(N) :- card(@ P white(image), N).");
        idempotent("usable(X) :- %A clarity(X), A > 0.8.");
        idempotent("%A coverage(region) :- card(surveyed(C), N), A is N / 10.");
    }

    #[test]
    fn constraints_and_directives_round_trip() {
        idempotent("constraint two_capitals(Z) :- capital_of(X, Z), capital_of(Y, Z), X \\= Y.");
        idempotent("#domain temperature float(-100, 200).");
        idempotent("#domain zone { pine, oak }.");
        idempotent("#predicate average_temperature(temperature, object).");
        idempotent("#world_view { omega, celsius }.");
        idempotent("#grid r1 square(0, 0, 10, 4, 4).");
        idempotent("#now 1990.");
        idempotent("?- open_road(X).");
    }

    #[test]
    fn lists_round_trip() {
        idempotent("p([1, 2, 3]).");
        idempotent("p([1 | T]) :- q(T).");
    }

    #[test]
    fn nested_arithmetic_keeps_precedence() {
        let stmts = parse_program("d(Y) :- p(X), Y is (X + 1) * 2.").unwrap();
        let printed = print_statement(&stmts[0]);
        assert!(printed.contains("(X + 1) * 2"));
        idempotent("d(Y) :- p(X), Y is (X + 1) * 2.");
    }
}
