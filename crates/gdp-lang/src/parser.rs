//! Recursive-descent parser.
//!
//! Grammar sketch (see the module docs of [`crate::token`] for the lexical
//! level):
//!
//! ```text
//! program    := statement*
//! statement  := '#' directive '.' | '?-' formula '.'
//!             | 'constraint' call ':-' formula '.'
//!             | head (':-' formula)? '.'
//! head       := ['%' term] qualifier* call
//! qualifier  := '@' term | '@u[R]' term | '@s[R]' term | '@a[R]' term
//!             | '&' term | '&u' interval | '&s' interval | '&a' interval
//! call       := [atom '\''] atom [ '(' exprs ')' [ '(' exprs ')' ] ]
//! formula    := conj (';' conj)*
//! conj       := unit (',' unit)*
//! unit       := '(' formula ')' | 'not' '(' formula ')'
//!             | 'forall' '(' formula ',' formula ')'
//!             | 'card' '(' formula ',' expr ')'
//!             | ('avg'|'sum'|'min'|'max'|'count') '(' expr ',' formula ',' expr ')'
//!             | 'domain' '(' atom ',' expr ')' | 'true'
//!             | expr cmp expr | qualified call
//! expr       := arithmetic over terms with + - * / // mod
//! ```
//!
//! Known limitation: at formula level a leading `(` always opens a
//! sub*formula*, so write `X + 1 > 2` without wrapping the left-hand side
//! in parentheses.

use gdp_core::{
    CmpOp, Constraint, DomainDef, FactPat, Formula, IntervalPat, Pat, Rule, Sort, SpaceQual,
    TimeQual,
};

use crate::ast::Statement;
use crate::error::{LangError, LangResult};
use crate::token::{tokenize, Pos, Spanned, Tok};

/// Parse a whole source file into statements. Fails on the first
/// diagnostic; use [`parse_program_diagnostics`] to recover at clause
/// boundaries and collect every diagnostic in one pass.
pub fn parse_program(src: &str) -> LangResult<Vec<Statement>> {
    let (statements, errors) = parse_program_diagnostics(src);
    match errors.into_iter().next() {
        None => Ok(statements.into_iter().map(|(_, s)| s).collect()),
        Some(e) => Err(e),
    }
}

/// Parse a whole source file, recovering at clause boundaries: on a parse
/// error the parser records the diagnostic, skips forward through the
/// next statement terminator (`.`), and resumes, so one malformed
/// statement yields one positioned diagnostic instead of hiding
/// everything after it. Returns every statement that did parse (tagged
/// with the position of its first token) alongside every diagnostic, in
/// source order. Lexical errors are not recoverable (the token stream is
/// unavailable) and yield a single diagnostic.
pub fn parse_program_diagnostics(src: &str) -> (Vec<(Pos, Statement)>, Vec<LangError>) {
    let toks = match tokenize(src) {
        Ok(toks) => toks,
        Err(e) => return (Vec::new(), vec![e]),
    };
    let mut p = Parser { toks, i: 0 };
    let mut out = Vec::new();
    let mut errors = Vec::new();
    while !p.at(&Tok::Eof) {
        let start = p.i;
        let pos = p.toks[p.i].pos;
        match p.statement() {
            Ok(stmt) => out.push((pos, stmt)),
            Err(e) => {
                errors.push(e);
                if p.i == start {
                    // The statement consumed nothing; step over the
                    // offending token so recovery always makes progress.
                    p.i += 1;
                }
                // Skip to just past the next statement terminator —
                // unless the failing parse already consumed one (a
                // `bump`-then-reject on the `.` itself), in which case
                // the next statement starts right here.
                if p.toks[p.i - 1].tok != Tok::Dot {
                    while !p.at(&Tok::Eof) {
                        let done = p.at(&Tok::Dot);
                        p.i += 1;
                        if done {
                            break;
                        }
                    }
                }
            }
        }
    }
    (out, errors)
}

/// Parse a single formula (for queries built at runtime); no trailing dot.
pub fn parse_formula(src: &str) -> LangResult<Formula> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, i: 0 };
    let f = p.formula()?;
    p.expect(&Tok::Eof)?;
    Ok(f)
}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
}

/// Reserved atoms that introduce formula constructs rather than facts.
const RESERVED: &[&str] = &[
    "not", "forall", "card", "avg", "sum", "min", "max", "count", "domain", "true", "is", "mod",
    "raw",
];

/// System predicates — semantic-domain operations and registry lookups —
/// that compile to *raw* engine goals rather than world-view-filtered fact
/// lookups. These are the "operations over semantic-domain values"
/// admitted into formulas by §III.B. For natives not in this list, wrap
/// the goal in `raw(...)`.
const SYSTEM_PREDICATES: &[(&str, usize)] = &[
    // spatial natives (gdp-spatial)
    ("dist", 3),
    ("direction", 3),
    ("rmap", 3),
    ("cell_points", 4),
    ("res_points", 2),
    ("adjacent_cells", 3),
    ("refines", 2),
    ("is_resolution", 1),
    ("size_of", 3),
    ("covered", 3),
    // temporal natives and rules (gdp-temporal)
    ("in_interval", 2),
    ("subinterval", 2),
    ("intervals_overlap", 2),
    ("in_cycle", 3),
    ("t_cell", 3),
    ("past", 1),
    ("present", 1),
    ("future", 1),
    ("now_is", 1),
    // fuzzy (gdp-fuzzy)
    ("unified_acc", 5),
    // engine builtins and registries (gdp-engine / gdp-core)
    ("member", 2),
    ("between", 3),
    ("length", 2),
    ("msort", 2),
    ("sort", 2),
    ("reverse", 2),
    ("nth0", 3),
    ("sum_list", 2),
    ("findall", 3),
    ("is_object", 1),
    ("is_model", 1),
    ("is_pred", 1),
];

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.i + 1).min(self.toks.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.at(t) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> LangResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn error(&self, message: impl Into<String>) -> LangError {
        LangError::Parse {
            pos: self.pos(),
            message: message.into(),
        }
    }

    /// Like [`Self::error`] but positioned at the just-consumed token —
    /// for `bump`-then-reject sites, where the offending token has
    /// already been stepped over.
    fn error_at_prev(&self, message: impl Into<String>) -> LangError {
        LangError::Parse {
            pos: self.toks[self.i.saturating_sub(1)].pos,
            message: message.into(),
        }
    }

    fn atom(&mut self) -> LangResult<String> {
        match self.bump() {
            Tok::Atom(s) => Ok(s),
            other => Err(self.error_at_prev(format!("expected identifier, found `{other}`"))),
        }
    }

    fn number(&mut self) -> LangResult<f64> {
        let negative = matches!(self.peek(), Tok::Op(op) if op == "-");
        if negative {
            self.bump();
        }
        let v = match self.bump() {
            Tok::Int(v) => v as f64,
            Tok::Float(v) => v,
            other => return Err(self.error_at_prev(format!("expected number, found `{other}`"))),
        };
        Ok(if negative { -v } else { v })
    }

    // ----- statements ------------------------------------------------------

    fn statement(&mut self) -> LangResult<Statement> {
        if self.eat(&Tok::Hash) {
            let stmt = self.directive()?;
            self.expect(&Tok::Dot)?;
            return Ok(stmt);
        }
        if self.eat(&Tok::QueryNeck) {
            let f = self.formula()?;
            self.expect(&Tok::Dot)?;
            return Ok(Statement::Query(f));
        }
        if matches!(self.peek(), Tok::Atom(a) if a == "constraint") {
            self.bump();
            let (name, witnesses) = self.plain_call()?;
            self.expect(&Tok::Neck)?;
            let body = self.formula()?;
            self.expect(&Tok::Dot)?;
            let mut c = Constraint::new(&name);
            for w in witnesses {
                c = c.witness(w);
            }
            return Ok(Statement::Constraint(c.when(body)));
        }
        // Fact, fuzzy fact, rule, or fuzzy rule.
        let accuracy = if self.eat(&Tok::Percent) {
            Some(self.primary()?)
        } else {
            None
        };
        let head = self.qualified_fact()?;
        if self.eat(&Tok::Neck) {
            let body = self.formula()?;
            self.expect(&Tok::Dot)?;
            return Ok(match accuracy {
                Some(acc) => Statement::FuzzyRule {
                    head,
                    accuracy: acc,
                    body,
                },
                None => Statement::Rule(Rule::new(head, body)),
            });
        }
        self.expect(&Tok::Dot)?;
        match accuracy {
            Some(Pat::Float(a)) => Ok(Statement::FuzzyFact(head, a)),
            Some(Pat::Int(a)) => Ok(Statement::FuzzyFact(head, a as f64)),
            Some(other) => Err(self.error(format!(
                "a fuzzy fact needs a numeric accuracy, found `{other}`"
            ))),
            None => Ok(Statement::Fact(head)),
        }
    }

    fn directive(&mut self) -> LangResult<Statement> {
        let name = self.atom()?;
        match name.as_str() {
            "domain" => {
                let dname = self.atom()?;
                let def = self.domain_def()?;
                Ok(Statement::Domain { name: dname, def })
            }
            "predicate" => {
                let pname = self.atom()?;
                self.expect(&Tok::LParen)?;
                let mut sorts = Vec::new();
                loop {
                    let s = self.atom()?;
                    sorts.push(match s.as_str() {
                        "object" => Sort::Object,
                        "any" => Sort::Any,
                        domain => Sort::domain(domain),
                    });
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RParen)?;
                Ok(Statement::Predicate { name: pname, sorts })
            }
            "model" => Ok(Statement::Model(self.atom()?)),
            "object" => Ok(Statement::Object(self.atom()?)),
            "world_view" => Ok(Statement::WorldView(self.name_set()?)),
            "meta_view" => Ok(Statement::MetaView(self.name_set()?)),
            "activate" => Ok(Statement::Activate(self.atom()?)),
            "deactivate" => Ok(Statement::Deactivate(self.atom()?)),
            "now" => Ok(Statement::Now(self.number()?)),
            "retract" => Ok(Statement::Retract(self.qualified_fact()?)),
            "grid" => {
                let gname = self.atom()?;
                let shape = self.atom()?;
                if shape != "square" {
                    return Err(self.error(format!("unknown grid shape `{shape}`")));
                }
                self.expect(&Tok::LParen)?;
                let x0 = self.number()?;
                self.expect(&Tok::Comma)?;
                let y0 = self.number()?;
                self.expect(&Tok::Comma)?;
                let cell = self.number()?;
                self.expect(&Tok::Comma)?;
                let nx = self.number()? as u32;
                self.expect(&Tok::Comma)?;
                let ny = self.number()? as u32;
                self.expect(&Tok::RParen)?;
                Ok(Statement::Grid {
                    name: gname,
                    x0,
                    y0,
                    cell,
                    nx,
                    ny,
                })
            }
            other => Err(self.error(format!("unknown directive `#{other}`"))),
        }
    }

    fn domain_def(&mut self) -> LangResult<DomainDef> {
        if self.eat(&Tok::LBrace) {
            let mut items = Vec::new();
            loop {
                items.push(self.atom()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RBrace)?;
            return Ok(DomainDef::Enumerated(items));
        }
        let kind = self.atom()?;
        match kind.as_str() {
            "float" => {
                self.expect(&Tok::LParen)?;
                let min = self.number()?;
                self.expect(&Tok::Comma)?;
                let max = self.number()?;
                self.expect(&Tok::RParen)?;
                Ok(DomainDef::FloatRange { min, max })
            }
            "int" => {
                self.expect(&Tok::LParen)?;
                let min = self.number()? as i64;
                self.expect(&Tok::Comma)?;
                let max = self.number()? as i64;
                self.expect(&Tok::RParen)?;
                Ok(DomainDef::IntRange { min, max })
            }
            "number" => Ok(DomainDef::AnyNumber),
            "atom" => Ok(DomainDef::AnyAtom),
            "any" => Ok(DomainDef::AnyGround),
            other => Err(self.error(format!("unknown domain kind `{other}`"))),
        }
    }

    fn name_set(&mut self) -> LangResult<Vec<String>> {
        self.expect(&Tok::LBrace)?;
        let mut names = Vec::new();
        if !self.at(&Tok::RBrace) {
            loop {
                names.push(self.atom()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(names)
    }

    // ----- facts and qualifiers ---------------------------------------------

    /// `name(args)(args)` — returns name and concatenated args.
    fn plain_call(&mut self) -> LangResult<(String, Vec<Pat>)> {
        let name = self.atom()?;
        let mut args = Vec::new();
        if self.at(&Tok::LParen) {
            args.extend(self.paren_args()?);
            // The paper's `q(values)(objects)` split: a second argument
            // group is concatenated.
            if self.at(&Tok::LParen) {
                args.extend(self.paren_args()?);
            }
        }
        Ok((name, args))
    }

    fn paren_args(&mut self) -> LangResult<Vec<Pat>> {
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if !self.at(&Tok::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(args)
    }

    /// A fact with optional spatial/temporal/model qualifiers (the fuzzy
    /// prefix is handled by the caller, which knows whether it is legal).
    fn qualified_fact(&mut self) -> LangResult<FactPat> {
        let mut space = SpaceQual::Any;
        let mut time = TimeQual::Any;
        loop {
            match self.peek().clone() {
                Tok::At => {
                    self.bump();
                    space = SpaceQual::At(self.primary()?);
                }
                Tok::AtU | Tok::AtS | Tok::AtA => {
                    let op = self.bump();
                    self.expect(&Tok::LBracket)?;
                    let res = self.primary()?;
                    self.expect(&Tok::RBracket)?;
                    let at = self.primary()?;
                    space = match op {
                        Tok::AtU => SpaceQual::AreaUniform { res, at },
                        Tok::AtS => SpaceQual::AreaSampled { res, at },
                        _ => SpaceQual::AreaAveraged { res, at },
                    };
                }
                Tok::Amp => {
                    self.bump();
                    let t = self.primary()?;
                    time = if t == Pat::Atom("now".into()) {
                        TimeQual::Now
                    } else {
                        TimeQual::At(t)
                    };
                }
                Tok::AmpU | Tok::AmpS | Tok::AmpA => {
                    let op = self.bump();
                    let iv = self.interval()?;
                    time = match op {
                        Tok::AmpU => TimeQual::IntervalUniform(iv),
                        Tok::AmpS => TimeQual::IntervalSampled(iv),
                        _ => TimeQual::IntervalAveraged(iv),
                    };
                }
                _ => break,
            }
        }
        // Optional model qualifier `m'`.
        let model = if matches!(self.peek(), Tok::Atom(_)) && self.peek2() == &Tok::Quote {
            let m = self.atom()?;
            self.expect(&Tok::Quote)?;
            Some(m)
        } else {
            None
        };
        let (name, args) = self.plain_call()?;
        let mut fact = FactPat::new(&name).args(args).space(space).time(time);
        if let Some(m) = model {
            fact = fact.model(Pat::Atom(m));
        }
        Ok(fact)
    }

    fn interval(&mut self) -> LangResult<IntervalPat> {
        let lo_closed = match self.bump() {
            Tok::LBracket => true,
            Tok::LParen => false,
            other => {
                return Err(self.error_at_prev(format!("expected `[` or `(`, found `{other}`")))
            }
        };
        let lo = self.expr()?;
        self.expect(&Tok::Comma)?;
        let hi = self.expr()?;
        let hi_closed = match self.bump() {
            Tok::RBracket => true,
            Tok::RParen => false,
            other => {
                return Err(self.error_at_prev(format!("expected `]` or `)`, found `{other}`")))
            }
        };
        Ok(IntervalPat {
            lo,
            hi,
            lo_closed,
            hi_closed,
        })
    }

    // ----- formulas ---------------------------------------------------------

    fn formula(&mut self) -> LangResult<Formula> {
        let mut f = self.conjunction()?;
        while self.eat(&Tok::Semicolon) {
            let rhs = self.conjunction()?;
            f = Formula::or(f, rhs);
        }
        Ok(f)
    }

    /// A formula in *argument* position (inside `forall(…)`, `card(…)`,
    /// aggregates): a single unit, mirroring Prolog's priority-999
    /// arguments — wrap conjunctions/disjunctions in parentheses.
    fn formula_arg(&mut self) -> LangResult<Formula> {
        self.unit()
    }

    fn conjunction(&mut self) -> LangResult<Formula> {
        let mut f = self.unit()?;
        while self.eat(&Tok::Comma) {
            let rhs = self.unit()?;
            f = Formula::and(f, rhs);
        }
        Ok(f)
    }

    fn unit(&mut self) -> LangResult<Formula> {
        // Parenthesized subformula.
        if self.eat(&Tok::LParen) {
            let f = self.formula()?;
            self.expect(&Tok::RParen)?;
            return Ok(f);
        }
        // Fuzzy-qualified fact reference `%A fact`.
        if self.eat(&Tok::Percent) {
            let acc = self.primary()?;
            let fact = self.qualified_fact()?;
            return Ok(Formula::FuzzyFact(fact, acc));
        }
        // Qualifier-prefixed fact.
        if matches!(
            self.peek(),
            Tok::At | Tok::AtU | Tok::AtS | Tok::AtA | Tok::Amp | Tok::AmpU | Tok::AmpS | Tok::AmpA
        ) {
            return Ok(Formula::Fact(self.qualified_fact()?));
        }
        // Reserved formula constructs.
        if let Tok::Atom(name) = self.peek().clone() {
            match name.as_str() {
                "true" => {
                    self.bump();
                    return Ok(Formula::True);
                }
                "not" => {
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    let inner = self.formula()?;
                    self.expect(&Tok::RParen)?;
                    return Ok(Formula::not(inner));
                }
                "forall" => {
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    let cond = self.formula_arg()?;
                    self.expect(&Tok::Comma)?;
                    let then = self.formula_arg()?;
                    self.expect(&Tok::RParen)?;
                    return Ok(Formula::forall(cond, then));
                }
                "card" => {
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    let inner = self.formula_arg()?;
                    self.expect(&Tok::Comma)?;
                    let n = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    return Ok(Formula::Card(Box::new(inner), n));
                }
                "avg" | "sum" | "min" | "max" | "count" => {
                    let op = match name.as_str() {
                        "avg" => gdp_core::AggOp::Avg,
                        "sum" => gdp_core::AggOp::Sum,
                        "min" => gdp_core::AggOp::Min,
                        "max" => gdp_core::AggOp::Max,
                        _ => gdp_core::AggOp::Count,
                    };
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    let template = self.expr()?;
                    self.expect(&Tok::Comma)?;
                    let inner = self.formula_arg()?;
                    self.expect(&Tok::Comma)?;
                    let result = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    return Ok(Formula::Agg(op, template, Box::new(inner), result));
                }
                "domain" => {
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    let dname = self.atom()?;
                    self.expect(&Tok::Comma)?;
                    let value = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    return Ok(Formula::Domain(dname, value));
                }
                _ => {}
            }
        }
        // Explicit raw goal: `raw(native(X, Y))`.
        if matches!(self.peek(), Tok::Atom(a) if a == "raw") && self.peek2() == &Tok::LParen {
            self.bump();
            self.expect(&Tok::LParen)?;
            let goal = self.expr()?;
            self.expect(&Tok::RParen)?;
            return Ok(Formula::Raw(goal));
        }
        // Fact or comparison. A fact starts with an atom (optionally
        // model-qualified); anything else must be the left side of a
        // comparison.
        let starts_as_fact = matches!(self.peek(), Tok::Atom(a) if !RESERVED.contains(&a.as_str()));
        if starts_as_fact {
            let fact = self.qualified_fact()?;
            // System predicates are engine goals, not reified facts —
            // unless the user qualified them (which forces fact reading).
            if fact.space == SpaceQual::Any && fact.time == TimeQual::Any && fact.model.is_none() {
                if let (Some(name), Some(arity)) = (fact.pred_name(), fact.fixed_arity()) {
                    if SYSTEM_PREDICATES.contains(&(name.as_str(), arity)) {
                        let args = fact.fixed_args().expect("fixed arity implies fixed args");
                        return Ok(Formula::Raw(Pat::app(&name, args.to_vec())));
                    }
                }
            }
            // An atom/call followed by an operator is really a term
            // comparison (e.g. `f(X) = Y`), rebuilt from the fact parts.
            if self.peek_cmp().is_some() {
                let lhs = match fact.fixed_args() {
                    Some([]) => Pat::Atom(fact.pred_name().expect("plain call has a name")),
                    Some(args) => Pat::app(
                        &fact.pred_name().expect("plain call has a name"),
                        args.to_vec(),
                    ),
                    None => return Err(self.error("bad comparison left-hand side")),
                };
                return self.finish_comparison(lhs);
            }
            return Ok(Formula::Fact(fact));
        }
        let lhs = self.expr()?;
        self.finish_comparison(lhs)
    }

    fn peek_cmp(&self) -> Option<String> {
        match self.peek() {
            Tok::Op(op) if !matches!(op.as_str(), "+" | "-" | "*" | "/" | "//") => Some(op.clone()),
            Tok::Atom(a) if a == "is" => Some("is".into()),
            _ => None,
        }
    }

    fn finish_comparison(&mut self, lhs: Pat) -> LangResult<Formula> {
        let Some(op) = self.peek_cmp() else {
            return Err(self.error(format!(
                "expected comparison operator, found `{}`",
                self.peek()
            )));
        };
        self.bump();
        let rhs = self.expr()?;
        Ok(match op.as_str() {
            "<" => Formula::Cmp(CmpOp::Lt, lhs, rhs),
            "=<" => Formula::Cmp(CmpOp::Le, lhs, rhs),
            ">" => Formula::Cmp(CmpOp::Gt, lhs, rhs),
            ">=" => Formula::Cmp(CmpOp::Ge, lhs, rhs),
            "=:=" => Formula::Cmp(CmpOp::NumEq, lhs, rhs),
            "=\\=" => Formula::Cmp(CmpOp::NumNe, lhs, rhs),
            "\\=" => Formula::Cmp(CmpOp::NotUnify, lhs, rhs),
            "=" => Formula::Unify(lhs, rhs),
            "is" => Formula::Is(lhs, rhs),
            "==" => Formula::Raw(Pat::app("==", vec![lhs, rhs])),
            "\\==" => Formula::Raw(Pat::app("\\==", vec![lhs, rhs])),
            "=.." => Formula::Raw(Pat::app("=..", vec![lhs, rhs])),
            other => return Err(self.error(format!("unknown operator `{other}`"))),
        })
    }

    // ----- terms / arithmetic ------------------------------------------------

    fn expr(&mut self) -> LangResult<Pat> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Op(op) if op == "+" || op == "-" => op.clone(),
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Pat::app(&op, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> LangResult<Pat> {
        let mut lhs = self.primary()?;
        loop {
            let op = match self.peek() {
                Tok::Op(op) if op == "*" || op == "/" || op == "//" => op.clone(),
                Tok::Atom(a) if a == "mod" => "mod".to_string(),
                _ => break,
            };
            self.bump();
            let rhs = self.primary()?;
            lhs = Pat::app(&op, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> LangResult<Pat> {
        match self.bump() {
            Tok::Var(name) => Ok(if name == "_" {
                Pat::Wild
            } else {
                Pat::Var(name)
            }),
            Tok::Int(v) => Ok(Pat::Int(v)),
            Tok::Float(v) => Ok(Pat::Float(v)),
            Tok::Str(s) => Ok(Pat::Str(s)),
            Tok::Op(op) if op == "-" => {
                let inner = self.primary()?;
                Ok(match inner {
                    Pat::Int(v) => Pat::Int(-v),
                    Pat::Float(v) => Pat::Float(-v),
                    other => Pat::app("-", vec![other]),
                })
            }
            Tok::Atom(name) => {
                if self.at(&Tok::LParen) {
                    let args = self.paren_args()?;
                    Ok(Pat::app(&name, args))
                } else {
                    Ok(Pat::Atom(name))
                }
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::LBracket => self.list(),
            other => Err(self.error_at_prev(format!("expected term, found `{other}`"))),
        }
    }

    fn list(&mut self) -> LangResult<Pat> {
        // `[` already consumed.
        if self.eat(&Tok::RBracket) {
            return Ok(Pat::Term(gdp_engine::Term::nil()));
        }
        let mut items = vec![self.expr()?];
        while self.eat(&Tok::Comma) {
            items.push(self.expr()?);
        }
        let tail = if self.eat(&Tok::Pipe) {
            self.expr()?
        } else {
            Pat::Term(gdp_engine::Term::nil())
        };
        self.expect(&Tok::RBracket)?;
        Ok(items
            .into_iter()
            .rev()
            .fold(tail, |acc, item| Pat::app(".", vec![item, acc])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Statement {
        let mut stmts = parse_program(src).unwrap();
        assert_eq!(stmts.len(), 1, "expected one statement");
        stmts.pop().unwrap()
    }

    #[test]
    fn basic_fact() {
        match one("road(s1).") {
            Statement::Fact(f) => {
                assert_eq!(f.pred_name().as_deref(), Some("road"));
                assert_eq!(f.fixed_arity(), Some(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn value_object_split_concatenates() {
        match one("average_temperature(50)(saint_louis).") {
            Statement::Fact(f) => {
                assert_eq!(f.fixed_arity(), Some(2));
                assert_eq!(f.fixed_args().unwrap()[0], Pat::Int(50));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn model_qualified_fact() {
        match one("celsius'freezing_point(0)(x).") {
            Statement::Fact(f) => {
                assert_eq!(f.model, Some(Pat::Atom("celsius".into())));
                assert_eq!(f.pred_name().as_deref(), Some("freezing_point"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn open_road_rule() {
        match one("open_road(X) :- road(X), forall(bridge(Y, X), open(Y)).") {
            Statement::Rule(r) => {
                assert_eq!(r.head.pred_name().as_deref(), Some("open_road"));
                assert!(matches!(r.body, Formula::And(..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn naf_and_disjunction() {
        match one("known(X) :- bridge(X), (open(X) ; closed(X)), not(suspect(X)).") {
            Statement::Rule(r) => {
                let s = format!("{:?}", r.body);
                assert!(s.contains("Or"));
                assert!(s.contains("Not"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comparisons_and_arithmetic() {
        match one("large_city(X) :- population(N)(X), N > 1000000.") {
            Statement::Rule(r) => {
                let s = format!("{:?}", r.body);
                assert!(s.contains("Gt"));
            }
            other => panic!("{other:?}"),
        }
        match one("double(X, Y) :- p(X), Y is X * 2 + 1.") {
            Statement::Rule(r) => {
                let s = format!("{:?}", r.body);
                assert!(s.contains("Is"));
                assert!(s.contains('*'));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spatial_qualifiers() {
        match one("@ pt(3.0, 4.0) vegetation(pine)(hill).") {
            Statement::Fact(f) => assert!(matches!(f.space, SpaceQual::At(_))),
            other => panic!("{other:?}"),
        }
        match one("@u[r1] pt(5.0, 5.0) zone(wetland).") {
            Statement::Fact(f) => {
                assert!(matches!(f.space, SpaceQual::AreaUniform { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn temporal_qualifiers() {
        match one("&u[1970, 1980) open(b1).") {
            Statement::Fact(f) => match &f.time {
                TimeQual::IntervalUniform(iv) => {
                    assert!(iv.lo_closed);
                    assert!(!iv.hi_closed);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        match one("&now capital(jc).") {
            Statement::Fact(f) => assert_eq!(f.time, TimeQual::Now),
            other => panic!("{other:?}"),
        }
        match one("& 1971 sighting(eagle).") {
            Statement::Fact(f) => assert_eq!(f.time, TimeQual::At(Pat::Int(1971))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fuzzy_fact_and_rule() {
        match one("%0.85 clarity(image).") {
            Statement::FuzzyFact(f, a) => {
                assert_eq!(f.pred_name().as_deref(), Some("clarity"));
                assert_eq!(a, 0.85);
            }
            other => panic!("{other:?}"),
        }
        match one("%A coverage(region) :- card(surveyed(C), N), A is N / 10.") {
            Statement::FuzzyRule { accuracy, .. } => {
                assert_eq!(accuracy, Pat::Var("A".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fuzzy_body_reference() {
        match one("usable(X) :- %A clarity(X), A > 0.8.") {
            Statement::Rule(r) => {
                let s = format!("{:?}", r.body);
                assert!(s.contains("FuzzyFact"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn constraint_statement() {
        match one("constraint two_capitals(Z) :- capital_of(X, Z), capital_of(Y, Z), X \\= Y.") {
            Statement::Constraint(c) => {
                assert_eq!(c.error_type, "two_capitals");
                assert_eq!(c.witnesses.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn directives() {
        assert!(matches!(
            one("#domain temperature float(-100, 200)."),
            Statement::Domain { .. }
        ));
        assert!(matches!(
            one("#domain zone { pine, oak }."),
            Statement::Domain {
                def: DomainDef::Enumerated(_),
                ..
            }
        ));
        match one("#predicate average_temperature(temperature, object).") {
            Statement::Predicate { sorts, .. } => {
                assert_eq!(sorts, vec![Sort::domain("temperature"), Sort::Object]);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(one("#model celsius."), Statement::Model(_)));
        match one("#world_view { omega, celsius }.") {
            Statement::WorldView(ms) => assert_eq!(ms, vec!["omega", "celsius"]),
            other => panic!("{other:?}"),
        }
        match one("#grid r1 square(0, 0, 10, 4, 4).") {
            Statement::Grid { name, cell, nx, .. } => {
                assert_eq!(name, "r1");
                assert_eq!(cell, 10.0);
                assert_eq!(nx, 4);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(one("#now 1990."), Statement::Now(_)));
        assert!(matches!(
            one("#activate spatial_simple."),
            Statement::Activate(_)
        ));
    }

    #[test]
    fn queries() {
        match one("?- open_road(X).") {
            Statement::Query(Formula::Fact(f)) => {
                assert_eq!(f.pred_name().as_deref(), Some("open_road"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lists_parse() {
        match one("p([1, 2 | T]).") {
            Statement::Fact(f) => {
                let s = format!("{}", f.fixed_args().unwrap()[0]);
                assert!(s.contains('1') && s.contains('2'));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregates_and_card() {
        let stmt = one("avg_elev(X, A) :- avg(Z, elevation(Z)(X), A).");
        match stmt {
            Statement::Rule(r) => assert!(matches!(r.body, Formula::Agg(..))),
            other => panic!("{other:?}"),
        }
        let stmt = one("n_white(N) :- card(@ P white(image), N).");
        match stmt {
            Statement::Rule(r) => assert!(matches!(r.body, Formula::Card(..))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multiple_statements() {
        let stmts =
            parse_program("road(s1). road(s2).\nroad_intersection(s1, s2).\n?- road(X).").unwrap();
        assert_eq!(stmts.len(), 4);
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_program("road(s1)\nroad(s2).").unwrap_err();
        match err {
            LangError::Parse { pos, .. } => assert_eq!(pos.line, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_formula_entry_point() {
        let f = parse_formula("road(X), not(closed(X))").unwrap();
        assert!(matches!(f, Formula::And(..)));
    }
}
