//! Parsed statements.
//!
//! The AST reuses `gdp-core`'s pattern/formula types directly — the
//! language is a concrete syntax for exactly those structures, nothing
//! more.

use gdp_core::{Constraint, DomainDef, FactPat, Formula, Pat, Rule, Sort};

/// One parsed statement.
#[derive(Clone, Debug)]
pub enum Statement {
    /// `#domain name float(lo, hi).` and friends (§III.B).
    Domain {
        /// Domain name.
        name: String,
        /// Membership definition.
        def: DomainDef,
    },
    /// `#predicate name(sort, …).` (§III.C many-sorted declarations).
    Predicate {
        /// Predicate name.
        name: String,
        /// Argument sorts.
        sorts: Vec<Sort>,
    },
    /// `#model name.` (§III.D).
    Model(String),
    /// `#object name.` (§II.A).
    Object(String),
    /// `#world_view { m1, m2 }.` (§III.E).
    WorldView(Vec<String>),
    /// `#meta_view { mm1, mm2 }.` (§IV.D).
    MetaView(Vec<String>),
    /// `#activate name.` — activate one meta-model.
    Activate(String),
    /// `#deactivate name.`
    Deactivate(String),
    /// `#grid name square(x0, y0, cell, nx, ny).` — register a resolution
    /// function (§V.B).
    Grid {
        /// Grid name.
        name: String,
        /// Extent origin x.
        x0: f64,
        /// Extent origin y.
        y0: f64,
        /// Square cell size.
        cell: f64,
        /// Cells along x.
        nx: u32,
        /// Cells along y.
        ny: u32,
    },
    /// `#now t.` — set the present moment (§VI.B).
    Now(f64),
    /// `#retract fact.` — withdraw a previously asserted basic fact.
    Retract(FactPat),
    /// A basic fact (§II.B), possibly qualified.
    Fact(FactPat),
    /// `%a fact.` — an accuracy-qualified basic fact (§VII.B).
    FuzzyFact(FactPat, f64),
    /// A virtual-fact definition (§III.A).
    Rule(Rule),
    /// `%A head :- body.` — a definition with an accuracy-qualified
    /// conclusion (§VII.B).
    FuzzyRule {
        /// Conclusion.
        head: FactPat,
        /// Accuracy pattern (must be bound by the body).
        accuracy: Pat,
        /// Defining formula.
        body: Formula,
    },
    /// `constraint type(witnesses) :- body.` (§III.C).
    Constraint(Constraint),
    /// `?- formula.` — a query, returned to the caller rather than stored.
    Query(Formula),
}

impl Statement {
    /// Short tag for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Statement::Domain { .. } => "domain",
            Statement::Predicate { .. } => "predicate",
            Statement::Model(_) => "model",
            Statement::Object(_) => "object",
            Statement::WorldView(_) => "world_view",
            Statement::MetaView(_) => "meta_view",
            Statement::Activate(_) => "activate",
            Statement::Deactivate(_) => "deactivate",
            Statement::Grid { .. } => "grid",
            Statement::Now(_) => "now",
            Statement::Retract(_) => "retract",
            Statement::Fact(_) => "fact",
            Statement::FuzzyFact(..) => "fuzzy_fact",
            Statement::Rule(_) => "rule",
            Statement::FuzzyRule { .. } => "fuzzy_rule",
            Statement::Constraint(_) => "constraint",
            Statement::Query(_) => "query",
        }
    }
}
