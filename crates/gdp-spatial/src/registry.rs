//! The resolution-function registry and spatial natives.
//!
//! The paper treats `R` as "a variable that ranges over the set of
//! resolution functions" (§V.C, note 1). Keeping that set explicit — named
//! grids registered here — is what makes the spatial meta-rules executable:
//! `refines/2` becomes a *finite* relation materialized as facts, and the
//! `rmap/3` / `cell_points/4` / `res_points/2` natives look grid geometry
//! up by name at solve time.

use std::sync::Arc;

use parking_lot::RwLock;

use gdp_core::{SpecError, SpecResult, Specification};
use gdp_engine::{list_from_iter, resolve_deep, FxHashMap, Term};

use crate::coords::{Cartesian, CoordinateSystem, Point};
use crate::resolution::GridResolution;

/// Clause group holding `is_resolution/1` and `refines/2` facts.
const GROUP: &str = "spatial$registry";

#[derive(Default)]
struct Table {
    grids: FxHashMap<String, GridResolution>,
}

/// Handle to the spatial layer installed into one [`Specification`].
///
/// Cloning yields another handle to the same registry.
#[derive(Clone)]
pub struct SpatialRegistry {
    table: Arc<RwLock<Table>>,
    csys: Arc<RwLock<Arc<dyn CoordinateSystem>>>,
}

impl std::fmt::Debug for SpatialRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpatialRegistry")
            .field("grids", &self.table.read().grids.len())
            .field("coordinate_system", &self.csys.read().name())
            .finish()
    }
}

impl SpatialRegistry {
    /// Install the spatial natives into `spec` and return the registry
    /// handle. Call once per specification.
    pub fn install(spec: &mut Specification) -> SpatialRegistry {
        let reg = SpatialRegistry {
            table: Arc::new(RwLock::new(Table::default())),
            csys: Arc::new(RwLock::new(Arc::new(Cartesian))),
        };
        reg.register_natives(spec);
        reg
    }

    /// Swap the coordinate system used by `dist/3` and `direction/3`.
    /// Per §V.A this changes only the absolute space, never the meta-rules.
    pub fn set_coordinate_system(&self, cs: impl CoordinateSystem + 'static) {
        *self.csys.write() = Arc::new(cs);
    }

    /// Register a named grid resolution function. Asserts `is_resolution/1`
    /// and the `refines/2` facts linking it to every registered grid it
    /// strictly refines or is strictly refined by.
    pub fn add_grid(
        &self,
        spec: &mut Specification,
        name: &str,
        grid: GridResolution,
    ) -> SpecResult<()> {
        {
            let mut table = self.table.write();
            if table.grids.contains_key(name) {
                return Err(SpecError::Redeclaration(name.to_string()));
            }
            table.grids.insert(name.to_string(), grid);
        }
        spec.assert_raw(
            GROUP,
            gdp_core::RawClause::fact(Term::pred("is_resolution", vec![Term::atom(name)])),
        );
        // Materialize the strict-refinement relation (finite, acyclic).
        let pairs: Vec<(String, String)> = {
            let table = self.table.read();
            let mut pairs = Vec::new();
            for (other_name, other) in table.grids.iter().filter(|(n, _)| *n != name) {
                if grid.strictly_refines(other) {
                    pairs.push((name.to_string(), other_name.clone()));
                }
                if other.strictly_refines(&grid) {
                    pairs.push((other_name.clone(), name.to_string()));
                }
            }
            pairs
        };
        for (fine, coarse) in pairs {
            spec.assert_raw(
                GROUP,
                gdp_core::RawClause::fact(Term::pred(
                    "refines",
                    vec![Term::atom(&fine), Term::atom(&coarse)],
                )),
            );
        }
        Ok(())
    }

    /// Look up a registered grid.
    pub fn grid(&self, name: &str) -> Option<GridResolution> {
        self.table.read().grids.get(name).copied()
    }

    /// Names of all registered grids.
    pub fn grid_names(&self) -> Vec<String> {
        self.table.read().grids.keys().cloned().collect()
    }

    fn register_natives(&self, spec: &mut Specification) {
        let kb = spec.kb_mut();

        // rmap(R, P, P0): apply resolution function R to absolute point P,
        // unifying the representative point with P0. Fails (open-world) on
        // unknown grids, non-ground P, or P outside the extent.
        let table = Arc::clone(&self.table);
        kb.register_native("rmap", 3, move |store, args| {
            let r = store.deref(&args[0]).clone();
            let p = resolve_deep(store, &args[1]);
            let (Some(name), Some(point)) = (r.as_atom(), Point::from_term(&p)) else {
                return Ok(false);
            };
            let grid = {
                let t = table.read();
                t.grids.get(&name.as_str()).copied()
            };
            match grid.and_then(|g| g.map(point)) {
                Some(rep) => Ok(store.unify(&rep.to_term(), &args[2])),
                None => Ok(false),
            }
        });

        // rmap_box(R, P, IVX, IVY): conservative coordinate bounds for
        // patch representative points that could relate to ground point P
        // under rmap/3 — P's cell widened by one full cell on each side,
        // as closed `iv/4` intervals. Deterministic and always succeeds
        // exactly once, so rule packs can insert it ahead of a patch
        // lookup without changing answers: when R names a registered grid
        // its cell size is used; when R is unbound, the widest registered
        // cell (an over-approximation sound for every registered grid);
        // when P is unbound or no grid is registered, IVX/IVY stay
        // unbound and downstream `rc` constraints pass vacuously.
        let table = Arc::clone(&self.table);
        kb.register_native("rmap_box", 4, move |store, args| {
            let p = resolve_deep(store, &args[1]);
            let Some(point) = Point::from_term(&p) else {
                return Ok(true);
            };
            let r = store.deref(&args[0]).clone();
            let cell = {
                let t = table.read();
                match r.as_atom() {
                    Some(name) => t.grids.get(&name.as_str()).map(|g| (g.cell_w, g.cell_h)),
                    None => t.grids.values().fold(None, |acc: Option<(f64, f64)>, g| {
                        Some(match acc {
                            Some((w, h)) => (w.max(g.cell_w), h.max(g.cell_h)),
                            None => (g.cell_w, g.cell_h),
                        })
                    }),
                }
            };
            let Some((cw, ch)) = cell else {
                return Ok(true);
            };
            let iv = |lo: f64, hi: f64| {
                Term::pred(
                    "iv",
                    vec![
                        Term::float(lo),
                        Term::float(hi),
                        Term::atom("closed"),
                        Term::atom("closed"),
                    ],
                )
            };
            let bx = iv(point.x - 1.5 * cw, point.x + 1.5 * cw);
            let by = iv(point.y - 1.5 * ch, point.y + 1.5 * ch);
            Ok(store.unify(&bx, &args[2]) && store.unify(&by, &args[3]))
        });

        // cell_points(Coarse, Fine, Rep, List): representative points of
        // Fine within the Coarse-cell represented by Rep.
        let table = Arc::clone(&self.table);
        kb.register_native("cell_points", 4, move |store, args| {
            let coarse = store.deref(&args[0]).clone();
            let fine = store.deref(&args[1]).clone();
            let rep = resolve_deep(store, &args[2]);
            let (Some(coarse), Some(fine), Some(rep)) =
                (coarse.as_atom(), fine.as_atom(), Point::from_term(&rep))
            else {
                return Ok(false);
            };
            let (coarse_grid, fine_grid) = {
                let t = table.read();
                let Some(c) = t.grids.get(&coarse.as_str()).copied() else {
                    return Ok(false);
                };
                let Some(f) = t.grids.get(&fine.as_str()).copied() else {
                    return Ok(false);
                };
                (c, f)
            };
            if !fine_grid.refines(&coarse_grid) {
                return Ok(false);
            }
            match coarse_grid.sub_points(&fine_grid, rep) {
                Some(points) => {
                    let list = list_from_iter(points.into_iter().map(Point::to_term));
                    Ok(store.unify(&list, &args[3]))
                }
                None => Ok(false),
            }
        });

        // res_points(R, List): every representative point of the logical
        // space R — the finite enumeration context the paper calls for.
        let table = Arc::clone(&self.table);
        kb.register_native("res_points", 2, move |store, args| {
            let r = store.deref(&args[0]).clone();
            let Some(name) = r.as_atom() else {
                return Ok(false);
            };
            let grid = {
                let t = table.read();
                t.grids.get(&name.as_str()).copied()
            };
            match grid {
                Some(g) => {
                    let list =
                        list_from_iter(g.rep_points().map(Point::to_term).collect::<Vec<_>>());
                    Ok(store.unify(&list, &args[1]))
                }
                None => Ok(false),
            }
        });

        // adjacent_cells(R, P1, P2): both are representative points of R
        // and their cells touch (8-neighborhood), excluding identity.
        let table = Arc::clone(&self.table);
        kb.register_native("adjacent_cells", 3, move |store, args| {
            let r = store.deref(&args[0]).clone();
            let p1 = resolve_deep(store, &args[1]);
            let p2 = resolve_deep(store, &args[2]);
            let (Some(name), Some(p1), Some(p2)) =
                (r.as_atom(), Point::from_term(&p1), Point::from_term(&p2))
            else {
                return Ok(false);
            };
            let grid = {
                let t = table.read();
                t.grids.get(&name.as_str()).copied()
            };
            let Some(g) = grid else {
                return Ok(false);
            };
            let (Some(c1), Some(c2)) = (g.cell_of(p1), g.cell_of(p2)) else {
                return Ok(false);
            };
            let di = (i64::from(c1.0) - i64::from(c2.0)).abs();
            let dj = (i64::from(c1.1) - i64::from(c2.1)).abs();
            Ok(di <= 1 && dj <= 1 && (di, dj) != (0, 0))
        });

        // dist(P1, P2, D) under the registered coordinate system.
        let csys = Arc::clone(&self.csys);
        kb.register_native("dist", 3, move |store, args| {
            let p1 = resolve_deep(store, &args[0]);
            let p2 = resolve_deep(store, &args[1]);
            let (Some(p1), Some(p2)) = (Point::from_term(&p1), Point::from_term(&p2)) else {
                return Ok(false);
            };
            let d = csys.read().distance(p1, p2);
            Ok(store.unify(&Term::float(d), &args[2]))
        });

        // direction(P1, P2, Deg) under the registered coordinate system.
        let csys = Arc::clone(&self.csys);
        kb.register_native("direction", 3, move |store, args| {
            let p1 = resolve_deep(store, &args[0]);
            let p2 = resolve_deep(store, &args[1]);
            let (Some(p1), Some(p2)) = (Point::from_term(&p1), Point::from_term(&p2)) else {
                return Ok(false);
            };
            let d = csys.read().direction(p1, p2);
            Ok(store.unify(&Term::float(d), &args[2]))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Specification, SpatialRegistry) {
        let mut spec = Specification::new();
        let reg = SpatialRegistry::install(&mut spec);
        reg.add_grid(
            &mut spec,
            "r1",
            GridResolution::square(0.0, 0.0, 10.0, 4, 4),
        )
        .unwrap();
        reg.add_grid(&mut spec, "r2", GridResolution::square(0.0, 0.0, 5.0, 8, 8))
            .unwrap();
        (spec, reg)
    }

    #[test]
    fn rmap_maps_points() {
        let (spec, _) = setup();
        let p = Point::new(3.0, 7.0).to_term();
        let goal = Term::pred("rmap", vec![Term::atom("r1"), p, Term::var(0)]);
        let sols = spec.solve_goal(goal).unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(
            sols[0].get(gdp_engine::Var(0)).unwrap(),
            &Point::new(5.0, 5.0).to_term()
        );
    }

    #[test]
    fn rmap_fails_cleanly_outside_and_unknown() {
        let (spec, _) = setup();
        let outside = Term::pred(
            "rmap",
            vec![
                Term::atom("r1"),
                Point::new(99.0, 99.0).to_term(),
                Term::var(0),
            ],
        );
        assert!(!spec.prove_goal(outside).unwrap());
        let unknown = Term::pred(
            "rmap",
            vec![
                Term::atom("never_registered"),
                Point::new(1.0, 1.0).to_term(),
                Term::var(0),
            ],
        );
        assert!(!spec.prove_goal(unknown).unwrap());
        // Unbound point: fails, not errors (the paper's "bound to fail"
        // infinite-set case).
        let unbound = Term::pred("rmap", vec![Term::atom("r1"), Term::var(0), Term::var(1)]);
        assert!(!spec.prove_goal(unbound).unwrap());
    }

    #[test]
    fn refines_facts_materialized() {
        let (spec, _) = setup();
        let goal = Term::pred("refines", vec![Term::atom("r2"), Term::atom("r1")]);
        assert!(spec.prove_goal(goal).unwrap());
        let wrong_way = Term::pred("refines", vec![Term::atom("r1"), Term::atom("r2")]);
        assert!(!spec.prove_goal(wrong_way).unwrap());
    }

    #[test]
    fn refines_facts_link_later_registrations() {
        let (mut spec, reg) = setup();
        reg.add_grid(
            &mut spec,
            "r4",
            GridResolution::square(0.0, 0.0, 2.5, 16, 16),
        )
        .unwrap();
        for coarser in ["r1", "r2"] {
            let goal = Term::pred("refines", vec![Term::atom("r4"), Term::atom(coarser)]);
            assert!(spec.prove_goal(goal).unwrap(), "r4 should refine {coarser}");
        }
    }

    #[test]
    fn duplicate_grid_rejected() {
        let (mut spec, reg) = setup();
        let err = reg
            .add_grid(&mut spec, "r1", GridResolution::square(0.0, 0.0, 1.0, 2, 2))
            .unwrap_err();
        assert!(matches!(err, SpecError::Redeclaration(_)));
    }

    #[test]
    fn cell_points_lists_subpoints() {
        let (spec, _) = setup();
        let goal = Term::pred(
            "cell_points",
            vec![
                Term::atom("r1"),
                Term::atom("r2"),
                Point::new(5.0, 5.0).to_term(),
                Term::var(0),
            ],
        );
        let sols = spec.solve_goal(goal).unwrap();
        assert_eq!(sols.len(), 1);
        let list = sols[0].get(gdp_engine::Var(0)).unwrap().clone();
        let items = gdp_engine::list_to_vec(&list).unwrap();
        assert_eq!(items.len(), 4);
    }

    #[test]
    fn dist_uses_coordinate_system() {
        let (spec, reg) = setup();
        let goal = Term::pred(
            "dist",
            vec![
                Point::new(0.0, 0.0).to_term(),
                Point::new(3.0, 4.0).to_term(),
                Term::var(0),
            ],
        );
        let sols = spec.solve_goal(goal.clone()).unwrap();
        assert_eq!(sols[0].get(gdp_engine::Var(0)).unwrap().as_f64(), Some(5.0));
        // Checking distance equality through the solver.
        reg.set_coordinate_system(crate::coords::SimplifiedUtm);
        let sols = spec.solve_goal(goal).unwrap();
        assert_eq!(sols[0].get(gdp_engine::Var(0)).unwrap().as_f64(), Some(5.0));
    }

    #[test]
    fn res_points_enumerates_grid() {
        let (spec, _) = setup();
        let goal = Term::pred("res_points", vec![Term::atom("r1"), Term::var(0)]);
        let sols = spec.solve_goal(goal).unwrap();
        let list = sols[0].get(gdp_engine::Var(0)).unwrap().clone();
        assert_eq!(gdp_engine::list_to_vec(&list).unwrap().len(), 16);
    }
}
