//! # gdp-spatial — spatial qualification of facts (paper §V)
//!
//! "The concept of space is quintessential in geographic data processing."
//! This crate supplies:
//!
//! * **absolute space** ([`coords`]): coordinate systems with distance and
//!   direction functions (Cartesian, polar, simplified UTM);
//! * **logical space** ([`GridResolution`]): finite-extent uniform-grid
//!   resolution functions and the refinement relation `R2 >> R1`;
//! * **the four spatial operators** ([`ops`]): `@p`, `@u[R]p`, `@s[R]p`,
//!   `@a[R]p` as activatable meta-models whose rules transliterate the
//!   paper's meta-facts;
//! * **spatial properties** (`point_type`, `overlap`, `adjacent`) and
//!   **abstraction rules** ([`abstraction`]: copying, thresholding,
//!   composition — the island and shore-line examples);
//! * the [`SpatialRegistry`], which names resolution functions, installs
//!   the spatial natives (`rmap/3`, `cell_points/4`, `res_points/2`,
//!   `dist/3`, `direction/3`, `adjacent_cells/3`), and materializes the
//!   finite `refines/2` relation.
//!
//! ## Example — the vegetation patch (§V.C)
//!
//! ```
//! use gdp_core::{FactPat, Pat, SpaceQual, Specification};
//! use gdp_spatial::{GridResolution, SpatialRegistry, ops};
//!
//! let mut spec = Specification::new();
//! let reg = SpatialRegistry::install(&mut spec);
//! reg.add_grid(&mut spec, "r", GridResolution::square(0.0, 0.0, 10.0, 4, 4)).unwrap();
//! spec.register_meta_model(ops::area_uniform());
//! spec.activate_meta_model("spatial_uniform").unwrap();
//!
//! // @u[r](5,5) vegetation(pine)(land)
//! spec.assert_fact(
//!     FactPat::new("vegetation").arg("pine").arg("land").space(SpaceQual::AreaUniform {
//!         res: Pat::atom("r"),
//!         at: Pat::app("pt", vec![Pat::Float(5.0), Pat::Float(5.0)]),
//!     }),
//! ).unwrap();
//!
//! // Every point of the patch inherits it: @(3.2, 7.9) vegetation(pine)(land)?
//! let at_point = FactPat::new("vegetation").arg("pine").arg("land")
//!     .at(Pat::app("pt", vec![Pat::Float(3.2), Pat::Float(7.9)]));
//! assert!(spec.provable(at_point).unwrap());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod abstraction;
pub mod coords;
mod dsl;
pub mod ops;
mod registry;
mod resolution;

pub use coords::{Cartesian, CoordinateSystem, Point, Polar, SimplifiedUtm};
pub use registry::SpatialRegistry;
pub use resolution::GridResolution;

/// Convenience: install the registry, register every spatial meta-model
/// (operators + properties), and activate the operator packs most
/// specifications want (`spatial_simple`, `spatial_uniform`,
/// `spatial_sampled`, `spatial_averaged`).
///
/// The acquisition pack and `finite_resolution_view` are registered but
/// left inactive — they answer only ground queries (see
/// [`ops::area_uniform_acquisition`]).
pub fn install_default(
    spec: &mut gdp_core::Specification,
) -> gdp_core::SpecResult<SpatialRegistry> {
    let reg = SpatialRegistry::install(spec);
    spec.register_meta_model(ops::simple_op());
    spec.register_meta_model(ops::area_uniform());
    spec.register_meta_model(ops::area_uniform_acquisition());
    spec.register_meta_model(ops::finite_resolution_view());
    spec.register_meta_model(ops::area_sampled());
    spec.register_meta_model(ops::area_averaged());
    spec.register_meta_model(ops::spatial_properties());
    spec.register_meta_model(ops::direction_relations());
    spec.activate_meta_model("spatial_simple")?;
    spec.activate_meta_model("spatial_uniform")?;
    spec.activate_meta_model("spatial_sampled")?;
    spec.activate_meta_model("spatial_averaged")?;
    Ok(reg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_core::{FactPat, Pat, SpaceQual, Specification};

    fn pt(x: f64, y: f64) -> Pat {
        Pat::app("pt", vec![Pat::Float(x), Pat::Float(y)])
    }

    fn setup() -> (Specification, SpatialRegistry) {
        let mut spec = Specification::new();
        let reg = install_default(&mut spec).unwrap();
        reg.add_grid(
            &mut spec,
            "coarse",
            GridResolution::square(0.0, 0.0, 10.0, 4, 4),
        )
        .unwrap();
        reg.add_grid(
            &mut spec,
            "fine",
            GridResolution::square(0.0, 0.0, 5.0, 8, 8),
        )
        .unwrap();
        (spec, reg)
    }

    fn uniform(res: &str, x: f64, y: f64) -> SpaceQual {
        SpaceQual::AreaUniform {
            res: Pat::atom(res),
            at: pt(x, y),
        }
    }

    #[test]
    fn space_independent_facts_hold_everywhere() {
        let (mut spec, _) = setup();
        spec.assert_fact(FactPat::new("country").arg("usa"))
            .unwrap();
        assert!(spec
            .provable(FactPat::new("country").arg("usa").at(pt(3.0, 4.0)))
            .unwrap());
        assert!(spec
            .provable(FactPat::new("country").arg("usa").at(pt(33.0, 14.0)))
            .unwrap());
    }

    #[test]
    fn uniform_patch_property_holds_at_member_points() {
        let (mut spec, _) = setup();
        // @u[coarse](5,5) vegetation(pine)(hill)
        spec.assert_fact(
            FactPat::new("vegetation")
                .arg("pine")
                .arg("hill")
                .space(uniform("coarse", 5.0, 5.0)),
        )
        .unwrap();
        // Holds at every point of the [0,10)² patch…
        assert!(spec
            .provable(
                FactPat::new("vegetation")
                    .arg("pine")
                    .arg("hill")
                    .at(pt(1.0, 9.0))
            )
            .unwrap());
        // …but not outside it.
        assert!(!spec
            .provable(
                FactPat::new("vegetation")
                    .arg("pine")
                    .arg("hill")
                    .at(pt(11.0, 9.0))
            )
            .unwrap());
    }

    #[test]
    fn uniform_property_inherited_by_finer_subareas() {
        let (mut spec, _) = setup();
        spec.assert_fact(
            FactPat::new("vegetation")
                .arg("pine")
                .arg("hill")
                .space(uniform("coarse", 5.0, 5.0)),
        )
        .unwrap();
        // The fine patch (2.5, 7.5) lies inside the coarse patch (5, 5).
        assert!(spec
            .provable(
                FactPat::new("vegetation")
                    .arg("pine")
                    .arg("hill")
                    .space(uniform("fine", 2.5, 7.5))
            )
            .unwrap());
        // A fine patch outside the asserted coarse patch does not inherit.
        assert!(!spec
            .provable(
                FactPat::new("vegetation")
                    .arg("pine")
                    .arg("hill")
                    .space(uniform("fine", 12.5, 7.5))
            )
            .unwrap());
    }

    #[test]
    fn acquisition_when_all_subareas_agree() {
        let (mut spec, _) = setup();
        spec.activate_meta_model("spatial_uniform_acquisition")
            .unwrap();
        // Fill all four fine subpatches of coarse patch (5,5).
        for (x, y) in [(2.5, 2.5), (7.5, 2.5), (2.5, 7.5), (7.5, 7.5)] {
            spec.assert_fact(
                FactPat::new("zone")
                    .arg("wetland")
                    .space(uniform("fine", x, y)),
            )
            .unwrap();
        }
        assert!(spec
            .provable(
                FactPat::new("zone")
                    .arg("wetland")
                    .space(uniform("coarse", 5.0, 5.0))
            )
            .unwrap());
        // A patch with only partial coverage does not acquire.
        spec.assert_fact(
            FactPat::new("zone")
                .arg("marsh")
                .space(uniform("fine", 12.5, 2.5)),
        )
        .unwrap();
        assert!(!spec
            .provable(
                FactPat::new("zone")
                    .arg("marsh")
                    .space(uniform("coarse", 15.0, 5.0))
            )
            .unwrap());
    }

    #[test]
    fn sampled_road_survives_coarsening() {
        let (mut spec, _) = setup();
        // A thin road at a single absolute point (§V.C: "a road may still
        // have to be drawn even when its actual thickness is much less
        // than the map resolution").
        spec.assert_fact(FactPat::new("road").arg("rc").at(pt(3.0, 3.0)))
            .unwrap();
        let sampled = |res: &str, x: f64, y: f64| {
            FactPat::new("road")
                .arg("rc")
                .space(SpaceQual::AreaSampled {
                    res: Pat::atom(res),
                    at: pt(x, y),
                })
        };
        assert!(spec.provable(sampled("fine", 2.5, 2.5)).unwrap());
        assert!(spec.provable(sampled("coarse", 5.0, 5.0)).unwrap());
        assert!(!spec.provable(sampled("coarse", 15.0, 5.0)).unwrap());
    }

    #[test]
    fn averaged_elevation_from_uniform_values() {
        let (mut spec, _) = setup();
        // Four fine patches with elevations 10, 20, 30, 40.
        for ((x, y), z) in [(2.5, 2.5), (7.5, 2.5), (2.5, 7.5), (7.5, 7.5)]
            .iter()
            .zip([10.0, 20.0, 30.0, 40.0])
        {
            spec.assert_fact(
                FactPat::new("elevation")
                    .arg(Pat::Float(z))
                    .arg("land")
                    .space(uniform("fine", *x, *y)),
            )
            .unwrap();
        }
        let answers =
            spec.query(FactPat::new("elevation").arg("Z").arg("land").space(
                SpaceQual::AreaAveraged {
                    res: Pat::atom("coarse"),
                    at: pt(5.0, 5.0),
                },
            ))
            .unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].get("Z").unwrap().as_f64(), Some(25.0));
    }

    #[test]
    fn averaged_fails_without_subarea_values() {
        let (spec, _) = setup();
        assert!(!spec
            .provable(FactPat::new("elevation").arg("Z").arg("land").space(
                SpaceQual::AreaAveraged {
                    res: Pat::atom("coarse"),
                    at: pt(5.0, 5.0),
                }
            ))
            .unwrap());
    }

    #[test]
    fn overlap_and_point_type_properties() {
        let (mut spec, _) = setup();
        spec.activate_meta_model("spatial_properties").unwrap();
        spec.declare_object("tower");
        spec.declare_object("hill");
        spec.declare_object("nowhere_obj");
        // The tower has exactly one position-dependent fact.
        spec.assert_fact(FactPat::new("structure").arg("tower").at(pt(3.0, 3.0)))
            .unwrap();
        // The hill spans two points.
        spec.assert_fact(FactPat::new("terrain").arg("hill").at(pt(3.0, 3.0)))
            .unwrap();
        spec.assert_fact(FactPat::new("terrain").arg("hill").at(pt(13.0, 3.0)))
            .unwrap();
        assert!(spec
            .provable(FactPat::new("point_type").arg("tower"))
            .unwrap());
        assert!(!spec
            .provable(FactPat::new("point_type").arg("hill"))
            .unwrap());
        // Tower and hill share the point (3,3): overlap.
        assert!(spec
            .provable(FactPat::new("overlap").arg("tower").arg("hill"))
            .unwrap());
        assert!(!spec
            .provable(FactPat::new("overlap").arg("tower").arg("nowhere_obj"))
            .unwrap());
    }

    #[test]
    fn adjacency_at_given_resolution() {
        let (mut spec, _) = setup();
        spec.activate_meta_model("spatial_properties").unwrap();
        spec.assert_fact(
            FactPat::new("parcel")
                .arg("farm_a")
                .space(uniform("coarse", 5.0, 5.0)),
        )
        .unwrap();
        spec.assert_fact(
            FactPat::new("parcel")
                .arg("farm_b")
                .space(uniform("coarse", 15.0, 5.0)),
        )
        .unwrap();
        spec.assert_fact(
            FactPat::new("parcel")
                .arg("farm_c")
                .space(uniform("coarse", 35.0, 35.0)),
        )
        .unwrap();
        assert!(spec
            .provable(
                FactPat::new("adjacent")
                    .arg("farm_a")
                    .arg("farm_b")
                    .arg("coarse")
            )
            .unwrap());
        assert!(!spec
            .provable(
                FactPat::new("adjacent")
                    .arg("farm_a")
                    .arg("farm_c")
                    .arg("coarse")
            )
            .unwrap());
    }

    #[test]
    fn cardinal_direction_relations() {
        let (mut spec, _) = setup();
        spec.activate_meta_model("direction_relations").unwrap();
        spec.assert_fact(
            FactPat::new("town")
                .arg("northville")
                .space(uniform("coarse", 15.0, 35.0)),
        )
        .unwrap();
        spec.assert_fact(
            FactPat::new("town")
                .arg("southburg")
                .space(uniform("coarse", 15.0, 5.0)),
        )
        .unwrap();
        spec.assert_fact(
            FactPat::new("town")
                .arg("eastham")
                .space(uniform("coarse", 35.0, 5.0)),
        )
        .unwrap();
        let rel = |p: &str, x: &str, y: &str| FactPat::new(p).arg(x).arg(y).arg("coarse");
        assert!(spec
            .provable(rel("north_of", "northville", "southburg"))
            .unwrap());
        assert!(spec
            .provable(rel("south_of", "southburg", "northville"))
            .unwrap());
        assert!(spec
            .provable(rel("east_of", "eastham", "southburg"))
            .unwrap());
        assert!(spec
            .provable(rel("west_of", "southburg", "eastham"))
            .unwrap());
        assert!(!spec
            .provable(rel("north_of", "southburg", "northville"))
            .unwrap());
        assert!(!spec
            .provable(rel("north_of", "eastham", "southburg"))
            .unwrap());
    }

    #[test]
    fn island_thresholding() {
        let (mut spec, _) = setup();
        use crate::abstraction::{abstraction_meta_model, threshold_copy_rule};
        spec.register_meta_model(abstraction_meta_model(
            "map_gen",
            vec![threshold_copy_rule("island", "fine", "coarse", 2)],
        ));
        spec.activate_meta_model("map_gen").unwrap();
        // Big island: 3 fine patches. Small island: 1 fine patch.
        for (x, y) in [(2.5, 2.5), (7.5, 2.5), (2.5, 7.5)] {
            spec.assert_fact(
                FactPat::new("island")
                    .arg("big_isle")
                    .space(uniform("fine", x, y)),
            )
            .unwrap();
        }
        spec.assert_fact(
            FactPat::new("island")
                .arg("small_isle")
                .space(uniform("fine", 22.5, 2.5)),
        )
        .unwrap();
        // Big island appears on the coarse map; the small one vanishes.
        assert!(spec
            .provable(
                FactPat::new("island")
                    .arg("big_isle")
                    .space(uniform("coarse", 5.0, 5.0))
            )
            .unwrap());
        assert!(!spec
            .provable(
                FactPat::new("island")
                    .arg("small_isle")
                    .space(uniform("coarse", 25.0, 5.0))
            )
            .unwrap());
    }

    #[test]
    fn shoreline_composition() {
        let (mut spec, _) = setup();
        use crate::abstraction::{abstraction_meta_model, compose_rule};
        spec.register_meta_model(abstraction_meta_model(
            "shore_gen",
            vec![compose_rule(
                "lake",
                "shore",
                "shore_line",
                "fine",
                "coarse",
            )],
        ));
        spec.activate_meta_model("shore_gen").unwrap();
        // Lake and shore in two *different* fine patches of the same
        // coarse patch.
        spec.assert_fact(
            FactPat::new("lake")
                .arg("erie")
                .space(uniform("fine", 2.5, 2.5)),
        )
        .unwrap();
        spec.assert_fact(
            FactPat::new("shore")
                .arg("erie")
                .space(uniform("fine", 7.5, 2.5)),
        )
        .unwrap();
        assert!(spec
            .provable(
                FactPat::new("shore_line")
                    .arg("erie")
                    .space(uniform("coarse", 5.0, 5.0))
            )
            .unwrap());
        // No shoreline where lake and shore do not meet within one patch.
        assert!(!spec
            .provable(
                FactPat::new("shore_line")
                    .arg("erie")
                    .space(uniform("coarse", 15.0, 5.0))
            )
            .unwrap());
    }
}
