//! Abstraction rules for map generalization (§V.D).
//!
//! "When the map generation is automated there is the need to specify the
//! nature of the information loss incurred in the process of interpreting
//! the data with regard to a lower resolution than originally formulated."
//! Four rule families: **copying**, **thresholding**, **averaging**
//! (covered by the `@a` operator, [`crate::ops::area_averaged`]), and
//! **composition**. These are inherently application-specific, so this
//! module provides *generators*: each returns the [`RawClause`]s for one
//! concrete predicate/resolution pair, which the user packages into their
//! own meta-model.

use gdp_core::{MetaModel, Pat, RawClause};

use crate::dsl::{a, goal, h, su, v};

/// The `size` function of the island example: "a function that determines
/// the number of points covered by some object at a specified resolution".
/// Derived, not native:
///
/// ```text
/// covered(X, R, P) :- h(M, su(R, P), T, Q, A), member(X, A).
/// size_of(X, R, N) :- card(covered(X, R, P), N).
/// ```
///
/// `card` counts *distinct* provable instances, so each patch counts once
/// however many properties witness it.
pub fn size_rules() -> Vec<RawClause> {
    vec![
        RawClause::build(
            &goal("covered", vec![v("X"), v("R"), v("P")]),
            &[
                h(v("M"), su(v("R"), v("P")), v("T"), v("Q"), v("A")),
                goal("member", vec![v("X"), v("A")]),
            ],
        ),
        RawClause::build(
            &goal("size_of", vec![v("X"), v("R"), v("N")]),
            &[goal(
                "card",
                vec![goal("covered", vec![v("X"), v("R"), v("P")]), v("N")],
            )],
        ),
    ]
}

/// A copying rule: every `from`-resolution patch fact for `pred` passes to
/// the `to`-resolution patch containing it, unconditionally.
pub fn copy_rule(pred: &str, from: &str, to: &str) -> RawClause {
    RawClause::build(
        &h(v("M"), su(a(to), v("P1")), v("T"), a(pred), v("A")),
        &[
            h(v("M"), su(a(from), v("P2")), v("T"), a(pred), v("A")),
            goal("rmap", vec![a(to), v("P2"), v("P1")]),
        ],
    )
}

/// The combined copying/thresholding rule of the island example (§V.D):
///
/// ```text
/// (∀R1,R2,P,X): (R2 >> R1) ∧ @R2(P) island(X) ∧ (size(X,R2) > delta)
///                ⇒ @R1(P) island(X)
/// ```
///
/// Facts for `pred` survive the transition to the coarser map only when
/// the object covers more than `min_size` patches at the source
/// resolution — smaller islands vanish from the low-resolution map.
pub fn threshold_copy_rule(pred: &str, from: &str, to: &str, min_size: i64) -> RawClause {
    RawClause::build(
        &h(v("M"), su(a(to), v("P1")), v("T"), a(pred), v("A")),
        &[
            h(v("M"), su(a(from), v("P2")), v("T"), a(pred), v("A")),
            // Filter against the (usually ground) target patch *before*
            // the expensive size computation.
            goal("rmap", vec![a(to), v("P2"), v("P1")]),
            goal("member", vec![v("X"), v("A")]),
            goal("size_of", vec![v("X"), a(from), v("N")]),
            goal(">", vec![v("N"), Pat::Int(min_size)]),
        ],
    )
}

/// A composition rule in the shape of the shore-line example (§V.D):
///
/// ```text
/// R1(P1) = R1(P2) ∧ @R2(P1) lake(X) ∧ @R2(P2) shore(X) ∧ (R2 >> R1)
///   ⇒ @R1(P1) shore_line(X)
/// ```
///
/// When two distinct `from`-resolution patches carrying `pred_a` and
/// `pred_b` (of the same object) collapse into one `to`-resolution patch,
/// that patch gains the new property `out_pred`.
pub fn compose_rule(pred_a: &str, pred_b: &str, out_pred: &str, from: &str, to: &str) -> RawClause {
    RawClause::build(
        &h(
            v("M"),
            su(a(to), v("P0")),
            v("T"),
            a(out_pred),
            Pat::app(".", vec![v("X"), Pat::Term(gdp_engine::Term::nil())]),
        ),
        &[
            h(
                v("M"),
                su(a(from), v("P1")),
                v("T"),
                a(pred_a),
                Pat::app(".", vec![v("X"), Pat::Term(gdp_engine::Term::nil())]),
            ),
            // Bind/check the target patch immediately so a ground query
            // prunes the second enumeration to one coarse cell.
            goal("rmap", vec![a(to), v("P1"), v("P0")]),
            h(
                v("M"),
                su(a(from), v("P2")),
                v("T"),
                a(pred_b),
                Pat::app(".", vec![v("X"), Pat::Term(gdp_engine::Term::nil())]),
            ),
            goal("\\==", vec![v("P1"), v("P2")]),
            goal("rmap", vec![a(to), v("P2"), v("P0")]),
        ],
    )
}

/// Convenience: bundle the `size` helper rules plus any number of
/// generated abstraction rules into one meta-model.
pub fn abstraction_meta_model(name: &str, rules: Vec<RawClause>) -> MetaModel {
    let mut builder = MetaModel::new(name)
        .doc("application-specific map-generalization (abstraction) rules")
        .clauses(size_rules());
    for r in rules {
        builder = builder.clause(r);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_clauses() {
        assert_eq!(size_rules().len(), 2);
        let r = threshold_copy_rule("island", "r2", "r1", 2);
        let rendered = format!("{} :- {}", r.head, r.body);
        assert!(rendered.contains("size_of("));
        assert!(rendered.contains("su(r1"));
        assert!(rendered.contains("su(r2"));
    }

    #[test]
    fn compose_rule_requires_distinct_patches() {
        let r = compose_rule("lake", "shore", "shore_line", "r2", "r1");
        let rendered = format!("{} :- {}", r.head, r.body);
        assert!(rendered.contains("\\=="));
        assert!(rendered.contains("shore_line"));
    }

    #[test]
    fn bundle_includes_size_rules() {
        let mm = abstraction_meta_model("map_gen", vec![copy_rule("road", "r2", "r1")]);
        assert_eq!(mm.clauses().len(), 3);
    }
}
