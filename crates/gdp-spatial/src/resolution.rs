//! Logical space and finite resolution (§V.B).
//!
//! "The logical space is defined as a discrete subset of an absolute space
//! … a mapping R that reduces patches from the absolute space into single
//! points in the logical space. This function is called the resolution
//! function." Here the resolution-function family is uniform grids with a
//! finite extent; every patch (cell) is represented by its center point.
//!
//! Finiteness of the extent is deliberate: the paper notes that meta-facts
//! quantifying over "all points P with R(P) = P0" only work "in a context
//! where the set of values taken by P is finite" — a bounded grid makes
//! every such set finite by construction.

use crate::coords::Point;

/// Relative tolerance for the grid-alignment arithmetic.
const EPS: f64 = 1e-9;

/// A uniform grid resolution function over a rectangular extent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridResolution {
    /// Extent origin (lower-left corner).
    pub x0: f64,
    /// Extent origin (lower-left corner).
    pub y0: f64,
    /// Cell width.
    pub cell_w: f64,
    /// Cell height.
    pub cell_h: f64,
    /// Number of cells along x.
    pub nx: u32,
    /// Number of cells along y.
    pub ny: u32,
}

impl GridResolution {
    /// A grid over `[x0, x0 + nx·cell) × [y0, y0 + ny·cell)` with square
    /// cells.
    pub fn square(x0: f64, y0: f64, cell: f64, nx: u32, ny: u32) -> GridResolution {
        assert!(cell > 0.0, "cell size must be positive");
        assert!(nx > 0 && ny > 0, "grid must have at least one cell");
        GridResolution {
            x0,
            y0,
            cell_w: cell,
            cell_h: cell,
            nx,
            ny,
        }
    }

    /// Upper-right corner of the extent.
    pub fn x1(&self) -> f64 {
        self.x0 + self.cell_w * f64::from(self.nx)
    }

    /// Upper-right corner of the extent.
    pub fn y1(&self) -> f64 {
        self.y0 + self.cell_h * f64::from(self.ny)
    }

    /// Cell indices containing `p`, if `p` lies within the extent.
    ///
    /// Cells are half-open `[lo, hi)`, matching the paper's interval
    /// diagram `[-p1-)[-p2-)…`.
    pub fn cell_of(&self, p: Point) -> Option<(u32, u32)> {
        let fx = (p.x - self.x0) / self.cell_w;
        let fy = (p.y - self.y0) / self.cell_h;
        if fx < -EPS || fy < -EPS {
            return None;
        }
        let i = fx.floor().max(0.0) as u32;
        let j = fy.floor().max(0.0) as u32;
        if i >= self.nx || j >= self.ny {
            return None;
        }
        Some((i, j))
    }

    /// The representative point (cell center) of cell `(i, j)`.
    pub fn rep_of_cell(&self, i: u32, j: u32) -> Point {
        Point::new(
            self.x0 + (f64::from(i) + 0.5) * self.cell_w,
            self.y0 + (f64::from(j) + 0.5) * self.cell_h,
        )
    }

    /// Apply the resolution function: map an absolute-space point to its
    /// representative point in the logical space. `None` outside the
    /// extent.
    pub fn map(&self, p: Point) -> Option<Point> {
        let (i, j) = self.cell_of(p)?;
        Some(self.rep_of_cell(i, j))
    }

    /// Iterate over every representative point of the logical space, row
    /// by row from the origin.
    pub fn rep_points(&self) -> impl Iterator<Item = Point> + '_ {
        (0..self.ny).flat_map(move |j| (0..self.nx).map(move |i| self.rep_of_cell(i, j)))
    }

    /// Total number of points in the logical space.
    pub fn point_count(&self) -> usize {
        self.nx as usize * self.ny as usize
    }

    /// Is `self` a refinement of `coarse` (`self >> coarse`, §V.B)?
    ///
    /// `(∀P1, P2): self(P1) = self(P2) ⇒ coarse(P1) = coarse(P2)` — for
    /// aligned uniform grids: every `self` cell lies entirely inside one
    /// `coarse` cell, and the extents coincide.
    pub fn refines(&self, coarse: &GridResolution) -> bool {
        let ratio_w = coarse.cell_w / self.cell_w;
        let ratio_h = coarse.cell_h / self.cell_h;
        let aligned = |a: f64| (a - a.round()).abs() < EPS * a.abs().max(1.0);
        // Cell sizes must divide (ratio ≥ 1 and integral) …
        if ratio_w < 1.0 - EPS || ratio_h < 1.0 - EPS || !aligned(ratio_w) || !aligned(ratio_h) {
            return false;
        }
        // … the origins must sit on a shared boundary …
        if !aligned((coarse.x0 - self.x0) / self.cell_w)
            || !aligned((coarse.y0 - self.y0) / self.cell_h)
        {
            return false;
        }
        // … and the extents must coincide (the common absolute space).
        (self.x0 - coarse.x0).abs() < EPS
            && (self.y0 - coarse.y0).abs() < EPS
            && (self.x1() - coarse.x1()).abs() < EPS
            && (self.y1() - coarse.y1()).abs() < EPS
    }

    /// Is the refinement *strict* (finer cells, not identical)?
    pub fn strictly_refines(&self, coarse: &GridResolution) -> bool {
        self.refines(coarse)
            && (self.cell_w < coarse.cell_w - EPS || self.cell_h < coarse.cell_h - EPS)
    }

    /// The representative points of `fine` lying within the `self`-cell
    /// represented by `rep` (requires `fine.refines(self)` for meaningful
    /// results). `None` if `rep` is not a representative point of `self`.
    pub fn sub_points(&self, fine: &GridResolution, rep: Point) -> Option<Vec<Point>> {
        let (i, j) = self.cell_of(rep)?;
        // Verify rep actually is the representative point of its cell.
        let canonical = self.rep_of_cell(i, j);
        if (canonical.x - rep.x).abs() > EPS || (canonical.y - rep.y).abs() > EPS {
            return None;
        }
        let lo_x = self.x0 + f64::from(i) * self.cell_w;
        let hi_x = lo_x + self.cell_w;
        let lo_y = self.y0 + f64::from(j) * self.cell_h;
        let hi_y = lo_y + self.cell_h;
        Some(
            fine.rep_points()
                .filter(|p| {
                    p.x > lo_x - EPS && p.x < hi_x - EPS && p.y > lo_y - EPS && p.y < hi_y - EPS
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_to_cell_centers() {
        let r = GridResolution::square(0.0, 0.0, 10.0, 4, 4);
        assert_eq!(r.map(Point::new(3.0, 7.0)), Some(Point::new(5.0, 5.0)));
        assert_eq!(r.map(Point::new(12.0, 12.0)), Some(Point::new(15.0, 15.0)));
        // All points of one patch share the representative point.
        assert_eq!(r.map(Point::new(0.1, 0.1)), r.map(Point::new(9.9, 9.9)));
    }

    #[test]
    fn outside_extent_unmapped() {
        let r = GridResolution::square(0.0, 0.0, 10.0, 4, 4);
        assert_eq!(r.map(Point::new(-1.0, 5.0)), None);
        assert_eq!(r.map(Point::new(40.5, 5.0)), None);
    }

    #[test]
    fn rep_points_enumerates_all_cells() {
        let r = GridResolution::square(0.0, 0.0, 1.0, 3, 2);
        let pts: Vec<Point> = r.rep_points().collect();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], Point::new(0.5, 0.5));
        assert_eq!(pts[5], Point::new(2.5, 1.5));
        assert_eq!(r.point_count(), 6);
    }

    #[test]
    fn refinement_relation() {
        let coarse = GridResolution::square(0.0, 0.0, 10.0, 4, 4);
        let fine = GridResolution::square(0.0, 0.0, 5.0, 8, 8);
        let finer = GridResolution::square(0.0, 0.0, 2.5, 16, 16);
        assert!(fine.refines(&coarse));
        assert!(finer.refines(&fine));
        assert!(finer.refines(&coarse)); // transitive by construction
        assert!(!coarse.refines(&fine)); // not symmetric
        assert!(coarse.refines(&coarse)); // reflexive
        assert!(!coarse.strictly_refines(&coarse));
        assert!(fine.strictly_refines(&coarse));
    }

    #[test]
    fn misaligned_grids_do_not_refine() {
        let coarse = GridResolution::square(0.0, 0.0, 10.0, 4, 4);
        let shifted = GridResolution::square(1.0, 0.0, 5.0, 8, 8);
        assert!(!shifted.refines(&coarse));
        let odd = GridResolution::square(0.0, 0.0, 3.0, 10, 10);
        assert!(!odd.refines(&coarse));
    }

    #[test]
    fn sub_points_cover_the_cell() {
        let coarse = GridResolution::square(0.0, 0.0, 10.0, 2, 2);
        let fine = GridResolution::square(0.0, 0.0, 5.0, 4, 4);
        let rep = Point::new(5.0, 5.0); // cell (0,0) of coarse
        let subs = coarse.sub_points(&fine, rep).unwrap();
        assert_eq!(subs.len(), 4);
        for p in &subs {
            assert_eq!(coarse.map(*p), Some(rep));
        }
        // Not a representative point → None.
        assert_eq!(coarse.sub_points(&fine, Point::new(1.0, 1.0)), None);
    }

    #[test]
    fn negative_origin_grids() {
        let r = GridResolution::square(-20.0, -20.0, 10.0, 4, 4);
        assert_eq!(
            r.map(Point::new(-15.0, -15.0)),
            Some(Point::new(-15.0, -15.0))
        );
        assert_eq!(r.map(Point::new(15.0, 15.0)), Some(Point::new(15.0, 15.0)));
        assert_eq!(r.map(Point::new(25.0, 0.0)), None);
    }
}
