//! The spatial operators as activatable meta-models (§V.C).
//!
//! Each constructor returns the rule pack for one operator, a direct
//! transliteration of the paper's defining meta-facts. They are separate
//! meta-models so "the separation … enables the experimentation with
//! different rules of inference without having to change the remainder of
//! the formalization" (§IV.C) — and, pragmatically, because the paper's
//! *acquisition* direction of the area-uniform operator quantifies over
//! every subarea and is only decidable for ground queries; keeping it in
//! its own pack lets users opt in per query mix.

use gdp_core::{MetaModel, Pat, RawClause};
use gdp_engine::{ArgPath, RangeSpec};

use crate::dsl::{a, cons, goal, h, pt, range_call, rc, sa, sat, ss, su, v};

/// Grid range index over patch representative-point coordinates: the `(x,
/// y)` pair inside any `su/ss/sa` spatial qualifier of an `h/5` head. The
/// bucket edge (4.0) is a fixed tuning constant independent of the
/// registered logical grids — it only trades bucket count against bucket
/// size; pruning correctness comes from the KB, not from this choice.
fn patch_grid_spec() -> RangeSpec {
    let coord = |child| {
        ArgPath::arg(1)
            .step_any(&[("su", 2), ("ss", 2), ("sa", 2)], 1)
            .step("pt", 2, child)
    };
    RangeSpec::Grid {
        x: coord(0),
        y: coord(1),
        cell: 4.0,
    }
}

/// The simple spatial operator `@p` (§V.C).
///
/// * `(∀P,Q,X): Q(X) ⇒ @P Q(X)` — "space-independent facts are true at
///   every point in space". (The converse direction, `@P Q(X) ⇔ Q(P)(X)`,
///   is the reified representation itself.)
///
/// The rule is guarded by `nonvar(P)`: it answers "is Q true at *this*
/// point?" but never enumerates the (infinite) set of points — the paper's
/// own caveat about formulas whose point set is not finite. The guard is
/// also what keeps the spatial-property definitions (§V.D) stratified:
/// they enumerate position-dependent facts with an unbound position, which
/// must not re-derive space-independent facts at fresh points.
pub fn simple_op() -> MetaModel {
    MetaModel::new("spatial_simple")
        .doc("simple spatial operator: space-independent facts hold everywhere")
        .clause(RawClause::build(
            &h(v("M"), sat(v("P")), v("T"), v("Q"), v("A")),
            &[
                goal("nonvar", vec![v("P")]),
                h(v("M"), a("any"), v("T"), v("Q"), v("A")),
            ],
        ))
        .build()
}

/// The area-uniform operator `@u[R]p` (§V.C), inheritance directions:
///
/// * "the property is true for all points in the area":
///   `@u[R]P0 Q(X) ∧ R(P) = P0 ⇒ @P Q(X)`;
/// * "the property is inherited by the higher resolution subareas":
///   `(R2 >> R1) ∧ @u[R1]P1 Q(X) ∧ R1(P2) = R1(P1) ⇒ @u[R2]P2 Q(X)`.
pub fn area_uniform() -> MetaModel {
    MetaModel::new("spatial_uniform")
        .doc("area-uniform operator: patch properties hold at member points and finer subareas")
        // Patch inheritance re-derives the same h/5 instances along many
        // refinement paths; nominate h/5 for answer tabling.
        .table("h", 5)
        // Nominate the coordinate grid index so the `range_call` bounds
        // below actually prune the patch enumeration.
        .range_index("h", 5, patch_grid_spec())
        .clause(RawClause::build(
            &h(v("M"), sat(v("P")), v("T"), v("Q"), v("A")),
            &[
                // With R still unbound, rmap_box falls back to the widest
                // registered cell — a box around P sound for every grid.
                goal("rmap_box", vec![v("R"), v("P"), v("IVX"), v("IVY")]),
                range_call(
                    h(
                        v("M"),
                        su(v("R"), pt(v("X0"), v("Y0"))),
                        v("T"),
                        v("Q"),
                        v("A"),
                    ),
                    vec![rc(v("X0"), v("IVX")), rc(v("Y0"), v("IVY"))],
                ),
                goal("rmap", vec![v("R"), v("P"), pt(v("X0"), v("Y0"))]),
            ],
        ))
        .clause(RawClause::build(
            &h(v("M"), su(v("R2"), v("P2")), v("T"), v("Q"), v("A")),
            &[
                goal("refines", vec![v("R2"), v("R1")]),
                // P2 must be a representative point of R2 …
                goal("rmap", vec![v("R2"), v("P2"), v("P2")]),
                // … and the carrying R1-patch must contain P2, so its
                // representative point lies within one R1-cell of it.
                goal("rmap_box", vec![v("R1"), v("P2"), v("IVX"), v("IVY")]),
                range_call(
                    h(
                        v("M"),
                        su(v("R1"), pt(v("X1"), v("Y1"))),
                        v("T"),
                        v("Q"),
                        v("A"),
                    ),
                    vec![rc(v("X1"), v("IVX")), rc(v("Y1"), v("IVY"))],
                ),
                goal("rmap", vec![v("R1"), v("P2"), pt(v("X1"), v("Y1"))]),
            ],
        ))
        .build()
}

/// The acquisition direction of the area-uniform operator (§V.C):
///
/// * "the property is acquired by a low resolution area if all its high
///   resolution subareas share the same property":
///   `(R2 >> R1) ∧ (∀P2: R1(P2) = R1(P1) → @u[R2]P2 Q(X)) ⇒ @u[R1]P1 Q(X)`.
///
/// Decidable only for ground queries (the paper's note: the quantification
/// works "in a context where the set of values taken by P is finite" — our
/// grids are finite, but the query must fix the target patch).
pub fn area_uniform_acquisition() -> MetaModel {
    MetaModel::new("spatial_uniform_acquisition")
        .doc("area-uniform acquisition: a patch acquires a property all its subpatches share")
        // The bounded-forall over subpatches re-proves each subpatch fact
        // once per enclosing patch; nominate h/5 for answer tabling.
        .table("h", 5)
        .clause(RawClause::build(
            &h(v("M"), su(v("R1"), v("P1")), v("T"), v("Q"), v("A")),
            &[
                goal("refines", vec![v("R2"), v("R1")]),
                goal("cell_points", vec![v("R1"), v("R2"), v("P1"), v("L")]),
                goal("\\=", vec![v("L"), Pat::Term(gdp_engine::Term::nil())]),
                goal(
                    "forall",
                    vec![
                        goal("member", vec![v("P2"), v("L")]),
                        h(v("M"), su(v("R2"), v("P2")), v("T"), v("Q"), v("A")),
                    ],
                ),
            ],
        ))
        .build()
}

/// The transition to a finite-resolution view of the world (§V.C): every
/// point fact becomes a patch fact,
/// `@P Q(X) ∧ R(P) = P0 ⇒ @u[R]P0 Q(X)` — "all that is required to
/// accomplish the transition … for applications where this substitution is
/// appropriate, e.g., when a maximum target resolution may be determined".
pub fn finite_resolution_view() -> MetaModel {
    MetaModel::new("finite_resolution_view")
        .doc("finite-resolution substitution: point facts become patch facts")
        .clause(RawClause::build(
            &h(v("M"), su(v("R"), v("P0")), v("T"), v("Q"), v("A")),
            &[
                h(v("M"), sat(v("P")), v("T"), v("Q"), v("A")),
                goal("rmap", vec![v("R"), v("P"), v("P0")]),
            ],
        ))
        .build()
}

/// The area-sampled operator `@s[R]p` (§V.C):
///
/// * "the area acquires the sample if any point in the area has the
///   property": `@P Q(X) ∧ R(P) = P0 ⇒ @s[R]P0 Q(X)`;
/// * "the area acquires the sample if any subarea has it":
///   `(R2 >> R1) ∧ @s[R2]P2 Q(X) ∧ R1(P2) = R1(P1) ⇒ @s[R1]P1 Q(X)`.
pub fn area_sampled() -> MetaModel {
    MetaModel::new("spatial_sampled")
        .doc("area-sampled operator: a patch holds a sample if any point or subpatch does")
        .table("h", 5)
        .range_index("h", 5, patch_grid_spec())
        .clause(RawClause::build(
            &h(v("M"), ss(v("R"), v("P0")), v("T"), v("Q"), v("A")),
            &[
                h(v("M"), sat(v("P")), v("T"), v("Q"), v("A")),
                goal("rmap", vec![v("R"), v("P"), v("P0")]),
            ],
        ))
        .clause(RawClause::build(
            &h(v("M"), ss(v("R1"), v("P1")), v("T"), v("Q"), v("A")),
            &[
                goal("refines", vec![v("R2"), v("R1")]),
                // When the target patch P1 is ground, any contributing
                // subpatch representative lies within its R1-cell.
                goal("rmap_box", vec![v("R1"), v("P1"), v("IVX"), v("IVY")]),
                range_call(
                    h(
                        v("M"),
                        ss(v("R2"), pt(v("X2"), v("Y2"))),
                        v("T"),
                        v("Q"),
                        v("A"),
                    ),
                    vec![rc(v("X2"), v("IVX")), rc(v("Y2"), v("IVY"))],
                ),
                goal("rmap", vec![v("R1"), pt(v("X2"), v("Y2")), v("P1")]),
            ],
        ))
        // A uniform patch trivially provides a sample of itself.
        .clause(RawClause::build(
            &h(v("M"), ss(v("R"), v("P0")), v("T"), v("Q"), v("A")),
            &[h(v("M"), su(v("R"), v("P0")), v("T"), v("Q"), v("A"))],
        ))
        .build()
}

/// The area-averaged operator `@a[R]p` (§V.C). The averaged value is, by
/// convention, the **first** argument of the fact (the paper's `Q(Y)(X)`
/// semantic-domain position):
///
/// * "the average may be computed if values are known for each subarea"
///   (from `@u[R2]` values);
/// * "the average may be computed if averages are known for each subarea"
///   (from `@a[R2]` values).
///
/// Both use the paper's `avg` function — here the engine's
/// `aggregate(avg, …)`, which fails (derives nothing) when no subarea
/// value exists.
pub fn area_averaged() -> MetaModel {
    let from = |inner_op: fn(Pat, Pat) -> Pat| {
        RawClause::build(
            &h(
                v("M"),
                sa(v("R1"), v("P1")),
                v("T"),
                v("Q"),
                cons(v("Y0"), v("Rest")),
            ),
            &[
                goal("refines", vec![v("R2"), v("R1")]),
                goal("cell_points", vec![v("R1"), v("R2"), v("P1"), v("L")]),
                goal(
                    "aggregate",
                    vec![
                        a("avg"),
                        v("Y"),
                        Pat::app(
                            ",",
                            vec![
                                goal("member", vec![v("P2"), v("L")]),
                                h(
                                    v("M"),
                                    inner_op(v("R2"), v("P2")),
                                    v("T"),
                                    v("Q"),
                                    cons(v("Y"), v("Rest")),
                                ),
                            ],
                        ),
                        v("Y0"),
                    ],
                ),
            ],
        )
    };
    MetaModel::new("spatial_averaged")
        .doc("area-averaged operator: patch value is the mean of subpatch values")
        // Each enclosing patch's average re-enumerates every subpatch
        // value; nominate h/5 for answer tabling. (Its own lookups arrive
        // with `member/2`-bound positions — exact keys the hash index
        // serves — but the grid nomination keeps the access path uniform
        // across the @u/@s/@a family.)
        .table("h", 5)
        .range_index("h", 5, patch_grid_spec())
        .clause(from(su))
        .clause(from(sa))
        .build()
}

/// Spatial properties of objects (§V.D): `point_type/1`, `overlap/2`, and
/// resolution-relative `adjacent/3`, defined exactly as the paper does —
/// over *position-dependent* properties only ("facts formulated in a space
/// independent manner are true at every point in space … they are excluded
/// from consideration").
pub fn spatial_properties() -> MetaModel {
    let not_space_independent =
        |q: Pat, args: Pat, m: Pat| goal("not", vec![h(m, a("any"), a("any"), q, args)]);
    MetaModel::new("spatial_properties")
        .doc("derived geometric properties: point_type, overlap, adjacent")
        // point_type(X): all position-dependent properties of X are true at
        // a single point (§V.D).
        .clause(RawClause::build(
            &h(
                v("M"),
                a("any"),
                a("any"),
                a("point_type"),
                Pat::app(".", vec![v("X"), Pat::Term(gdp_engine::Term::nil())]),
            ),
            &[
                goal("is_model", vec![v("M")]),
                goal("is_object", vec![v("X")]),
                h(v("M"), sat(v("P1")), v("T1"), v("Q1"), v("A1")),
                goal("member", vec![v("X"), v("A1")]),
                not_space_independent(v("Q1"), v("A1"), v("M")),
                goal(
                    "forall",
                    vec![
                        Pat::app(
                            ",",
                            vec![
                                h(v("M"), sat(v("P2")), v("T2"), v("Q2"), v("A2")),
                                Pat::app(
                                    ",",
                                    vec![
                                        goal("member", vec![v("X"), v("A2")]),
                                        not_space_independent(v("Q2"), v("A2"), v("M")),
                                    ],
                                ),
                            ],
                        ),
                        goal("==", vec![v("P1"), v("P2")]),
                    ],
                ),
            ],
        ))
        // overlap(X, Y): some position carries a position-dependent
        // property of X and one of Y (§V.D).
        .clause(RawClause::build(
            &h(
                v("M"),
                a("any"),
                a("any"),
                a("overlap"),
                Pat::app(
                    ".",
                    vec![
                        v("X"),
                        Pat::app(".", vec![v("Y"), Pat::Term(gdp_engine::Term::nil())]),
                    ],
                ),
            ),
            &[
                goal("is_model", vec![v("M")]),
                goal("is_object", vec![v("X")]),
                goal("is_object", vec![v("Y")]),
                goal("\\==", vec![v("X"), v("Y")]),
                // Both lookups run with *unbound* positions and compare
                // afterwards: a ground-position lookup would re-derive
                // space-independent facts (including `overlap` itself) at
                // that point via the simple operator and loop. With the
                // position unbound, the simple operator's `nonvar` guard
                // keeps the enumeration to genuinely positional facts —
                // which is exactly the paper's exclusion of space-
                // independent facts from the overlap definition.
                h(v("M"), sat(v("P1")), v("T1"), v("Q1"), v("A1")),
                goal("member", vec![v("X"), v("A1")]),
                not_space_independent(v("Q1"), v("A1"), v("M")),
                h(v("M"), sat(v("P2")), v("T2"), v("Q2"), v("A2")),
                goal("member", vec![v("Y"), v("A2")]),
                not_space_independent(v("Q2"), v("A2"), v("M")),
                goal("==", vec![v("P1"), v("P2")]),
            ],
        ))
        // adjacent(X, Y, R): X and Y occupy neighboring patches of the
        // logical space R ("adjacency, usually at some given resolution").
        .clause(RawClause::build(
            &h(
                v("M"),
                a("any"),
                a("any"),
                a("adjacent"),
                Pat::app(
                    ".",
                    vec![
                        v("X"),
                        Pat::app(
                            ".",
                            vec![
                                v("Y"),
                                Pat::app(".", vec![v("R"), Pat::Term(gdp_engine::Term::nil())]),
                            ],
                        ),
                    ],
                ),
            ),
            &[
                goal("is_model", vec![v("M")]),
                h(v("M"), su(v("R"), v("P1")), v("T1"), v("Q1"), v("A1")),
                goal("member", vec![v("X"), v("A1")]),
                h(v("M"), su(v("R"), v("P2")), v("T2"), v("Q2"), v("A2")),
                goal("member", vec![v("Y"), v("A2")]),
                goal("\\==", vec![v("X"), v("Y")]),
                goal("adjacent_cells", vec![v("R"), v("P1"), v("P2")]),
            ],
        ))
        .build()
}

/// Relative orientation between objects (§V.D mentions "relative
/// orientation" among the spatial relations the operators should support):
/// `north_of/3`, `south_of/3`, `east_of/3`, `west_of/3`, each relative to a
/// resolution — `north_of(X, Y, R)` holds when some patch of `X` lies
/// within ±45° of due north of some patch of `Y` at resolution `R`,
/// measured by the registered coordinate system's `direction/3`.
pub fn direction_relations() -> MetaModel {
    let relation = |pred: &str, lo: f64, hi: f64, wraps: bool| {
        let angle_check: Vec<Pat> = if wraps {
            // East spans 315°..360° ∪ 0°..45°.
            vec![goal(
                ";",
                vec![
                    goal(">=", vec![v("D"), Pat::Float(lo)]),
                    goal("=<", vec![v("D"), Pat::Float(hi)]),
                ],
            )]
        } else {
            vec![
                goal(">=", vec![v("D"), Pat::Float(lo)]),
                goal("=<", vec![v("D"), Pat::Float(hi)]),
            ]
        };
        let mut body = vec![
            goal("is_model", vec![v("M")]),
            h(v("M"), su(v("R"), v("P1")), v("T1"), v("Q1"), v("A1")),
            goal("member", vec![v("X"), v("A1")]),
            h(v("M"), su(v("R"), v("P2")), v("T2"), v("Q2"), v("A2")),
            goal("member", vec![v("Y"), v("A2")]),
            goal("\\==", vec![v("X"), v("Y")]),
            goal("\\==", vec![v("P1"), v("P2")]),
            // Direction from Y's patch toward X's patch.
            goal("direction", vec![v("P2"), v("P1"), v("D")]),
        ];
        body.extend(angle_check);
        RawClause::build(
            &h(
                v("M"),
                a("any"),
                a("any"),
                a(pred),
                Pat::app(
                    ".",
                    vec![
                        v("X"),
                        Pat::app(
                            ".",
                            vec![
                                v("Y"),
                                Pat::app(".", vec![v("R"), Pat::Term(gdp_engine::Term::nil())]),
                            ],
                        ),
                    ],
                ),
            ),
            &body,
        )
    };
    MetaModel::new("direction_relations")
        .doc("relative orientation: north_of/south_of/east_of/west_of at a resolution")
        // Cartesian convention: 90° = north, 270° = south, 0/360° = east,
        // 180° = west; each relation accepts a ±45° cone.
        .clause(relation("north_of", 45.0, 135.0, false))
        .clause(relation("south_of", 225.0, 315.0, false))
        .clause(relation("west_of", 135.0, 225.0, false))
        .clause(relation("east_of", 315.0, 45.0, true))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_models_have_expected_shapes() {
        assert_eq!(simple_op().clauses().len(), 1);
        assert_eq!(area_uniform().clauses().len(), 2);
        assert_eq!(area_uniform_acquisition().clauses().len(), 1);
        assert_eq!(area_sampled().clauses().len(), 3);
        assert_eq!(area_averaged().clauses().len(), 2);
        assert_eq!(spatial_properties().clauses().len(), 3);
        assert_eq!(direction_relations().clauses().len(), 4);
    }

    #[test]
    fn uniform_rules_reference_rmap() {
        let mm = area_uniform();
        let rendered: Vec<String> = mm
            .clauses()
            .iter()
            .map(|c| format!("{} :- {}", c.head, c.body))
            .collect();
        assert!(rendered[0].contains("rmap("));
        assert!(rendered[1].contains("refines("));
    }
}
