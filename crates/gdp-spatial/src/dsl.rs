//! Pattern-building helpers shared by the spatial rule packs.
//!
//! Meta-rules are stated over the reified `h/5` relation; these helpers
//! keep the rule packs readable — `h(m, su(r, p), t, q, a)` instead of
//! nested `Pat::app` pyramids.

use gdp_core::Pat;

/// `h(M, S, T, Q, A)` pattern.
pub(crate) fn h(m: Pat, s: Pat, t: Pat, q: Pat, a: Pat) -> Pat {
    Pat::app("h", vec![m, s, t, q, a])
}

/// `sat(P)` — simple spatial qualifier.
pub(crate) fn sat(p: Pat) -> Pat {
    Pat::app("sat", vec![p])
}

/// `su(R, P)` — area-uniform qualifier.
pub(crate) fn su(r: Pat, p: Pat) -> Pat {
    Pat::app("su", vec![r, p])
}

/// `ss(R, P)` — area-sampled qualifier.
pub(crate) fn ss(r: Pat, p: Pat) -> Pat {
    Pat::app("ss", vec![r, p])
}

/// `sa(R, P)` — area-averaged qualifier.
pub(crate) fn sa(r: Pat, p: Pat) -> Pat {
    Pat::app("sa", vec![r, p])
}

/// `[Head | Tail]` pattern.
pub(crate) fn cons(head: Pat, tail: Pat) -> Pat {
    Pat::app(".", vec![head, tail])
}

/// Variable shorthand.
pub(crate) fn v(name: &str) -> Pat {
    Pat::var(name)
}

/// Atom shorthand.
pub(crate) fn a(name: &str) -> Pat {
    Pat::atom(name)
}

/// Goal `p(args…)`.
pub(crate) fn goal(name: &str, args: Vec<Pat>) -> Pat {
    Pat::app(name, args)
}

/// `pt(X, Y)` — an absolute-space point.
pub(crate) fn pt(x: Pat, y: Pat) -> Pat {
    Pat::app("pt", vec![x, y])
}

/// `rc(X, IV)` — one range annotation (IV is, or derefs to, an `iv/4`
/// interval term).
pub(crate) fn rc(x: Pat, iv: Pat) -> Pat {
    Pat::app("rc", vec![x, iv])
}

/// `range_call(G, [rc(..), ..])`: run `G` under numeric range annotations
/// the KB's grid index over patch coordinates can prune candidates with.
/// Semantically transparent — the rule packs keep their real `rmap/3`
/// checks, the wrapper only narrows enumeration.
pub(crate) fn range_call(goal_pat: Pat, rcs: Vec<Pat>) -> Pat {
    let list = rcs
        .into_iter()
        .rev()
        .fold(a("[]"), |tail, head| cons(head, tail));
    Pat::app("range_call", vec![goal_pat, list])
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_core::VarTable;

    #[test]
    fn helpers_compose() {
        let mut vt = VarTable::new();
        let pat = h(
            v("M"),
            su(a("r1"), v("P")),
            a("any"),
            a("elev"),
            cons(v("Y"), v("Rest")),
        );
        let t = vt.compile(&pat);
        assert_eq!(t.to_string(), "h(_0, su(r1, _1), any, elev, [_2 | _3])");
    }
}
