//! Absolute space (§V.A).
//!
//! "The absolute space is an abstraction of the coordinate system being
//! used. Each coordinate assumes values from the set of real numbers. In
//! addition to the normal operations over reals, the definition of absolute
//! space also includes a distance function and a direction function
//! specific to the coordinate system being used, i.e., polar, Cartesian,
//! universal transverse mercator, etc."
//!
//! Changing coordinate systems "affects only the definition of the absolute
//! space and not the rules of reasoning about spatial properties" — here,
//! swapping the [`CoordinateSystem`] implementation changes how `dist/3`
//! and `direction/3` compute, while every spatial meta-rule stays put.

use gdp_engine::Term;

/// A position in the 2-D absolute space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// First coordinate (x, or the coordinate-system equivalent).
    pub x: f64,
    /// Second coordinate.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Encode as the term `pt(x, y)`.
    pub fn to_term(self) -> Term {
        Term::pred("pt", vec![Term::float(self.x), Term::float(self.y)])
    }

    /// Decode from a (resolved, ground) `pt(x, y)` term.
    pub fn from_term(t: &Term) -> Option<Point> {
        if t.functor()?.as_str() != "pt" || t.arity() != Some(2) {
            return None;
        }
        let args = t.args();
        Some(Point {
            x: args[0].as_f64()?,
            y: args[1].as_f64()?,
        })
    }
}

/// A coordinate system: the distance and direction functions of the
/// absolute space.
pub trait CoordinateSystem: Send + Sync {
    /// Name used in diagnostics.
    fn name(&self) -> &'static str;

    /// Distance between two positions.
    fn distance(&self, a: Point, b: Point) -> f64;

    /// Direction from `a` to `b` in degrees, measured counterclockwise from
    /// the positive x-axis (east), normalized to `[0, 360)`.
    fn direction(&self, a: Point, b: Point) -> f64;
}

/// Plain Cartesian plane.
#[derive(Clone, Copy, Debug, Default)]
pub struct Cartesian;

impl CoordinateSystem for Cartesian {
    fn name(&self) -> &'static str {
        "cartesian"
    }

    fn distance(&self, a: Point, b: Point) -> f64 {
        ((a.x - b.x).powi(2) + (a.y - b.y).powi(2)).sqrt()
    }

    fn direction(&self, a: Point, b: Point) -> f64 {
        let deg = (b.y - a.y).atan2(b.x - a.x).to_degrees();
        deg.rem_euclid(360.0)
    }
}

/// Polar coordinates: `x` is the radius, `y` the angle in degrees.
/// Distance/direction are computed by conversion to the plane.
#[derive(Clone, Copy, Debug, Default)]
pub struct Polar;

impl Polar {
    fn to_cartesian(p: Point) -> Point {
        let theta = p.y.to_radians();
        Point::new(p.x * theta.cos(), p.x * theta.sin())
    }
}

impl CoordinateSystem for Polar {
    fn name(&self) -> &'static str {
        "polar"
    }

    fn distance(&self, a: Point, b: Point) -> f64 {
        Cartesian.distance(Self::to_cartesian(a), Self::to_cartesian(b))
    }

    fn direction(&self, a: Point, b: Point) -> f64 {
        Cartesian.direction(Self::to_cartesian(a), Self::to_cartesian(b))
    }
}

/// A simplified universal-transverse-mercator-style system: `x` is an
/// easting and `y` a northing in meters within one zone, so plane geometry
/// applies, but direction is reported as a compass bearing (clockwise from
/// north), as UTM consumers expect.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimplifiedUtm;

impl CoordinateSystem for SimplifiedUtm {
    fn name(&self) -> &'static str {
        "utm"
    }

    fn distance(&self, a: Point, b: Point) -> f64 {
        Cartesian.distance(a, b)
    }

    fn direction(&self, a: Point, b: Point) -> f64 {
        // Compass bearing: 0° = north, 90° = east.
        let deg = (b.x - a.x).atan2(b.y - a.y).to_degrees();
        deg.rem_euclid(360.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn point_term_round_trip() {
        let p = Point::new(3.5, -4.25);
        let t = p.to_term();
        assert_eq!(Point::from_term(&t), Some(p));
        assert_eq!(Point::from_term(&Term::atom("elsewhere")), None);
    }

    #[test]
    fn point_from_int_coords() {
        let t = Term::pred("pt", vec![Term::int(3), Term::int(4)]);
        assert_eq!(Point::from_term(&t), Some(Point::new(3.0, 4.0)));
    }

    #[test]
    fn cartesian_distance_is_euclidean() {
        let d = Cartesian.distance(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert!(approx(d, 5.0));
    }

    #[test]
    fn cartesian_direction_quadrants() {
        let o = Point::new(0.0, 0.0);
        assert!(approx(Cartesian.direction(o, Point::new(1.0, 0.0)), 0.0));
        assert!(approx(Cartesian.direction(o, Point::new(0.0, 1.0)), 90.0));
        assert!(approx(Cartesian.direction(o, Point::new(-1.0, 0.0)), 180.0));
        assert!(approx(Cartesian.direction(o, Point::new(0.0, -1.0)), 270.0));
    }

    #[test]
    fn polar_agrees_with_cartesian_geometry() {
        // (r=1, θ=0°) and (r=1, θ=90°) are unit-circle points; chord √2.
        let d = Polar.distance(Point::new(1.0, 0.0), Point::new(1.0, 90.0));
        assert!(approx(d, std::f64::consts::SQRT_2));
    }

    #[test]
    fn utm_bearing_is_clockwise_from_north() {
        let o = Point::new(0.0, 0.0);
        assert!(approx(
            SimplifiedUtm.direction(o, Point::new(0.0, 1.0)),
            0.0
        ));
        assert!(approx(
            SimplifiedUtm.direction(o, Point::new(1.0, 0.0)),
            90.0
        ));
        assert!(approx(
            SimplifiedUtm.direction(o, Point::new(0.0, -1.0)),
            180.0
        ));
    }
}
