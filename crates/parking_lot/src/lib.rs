//! In-tree stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny subset of the `parking_lot` API it actually uses:
//! [`Mutex`] and [`RwLock`] whose lock methods return guards directly
//! (no `Result`). Both wrap the `std::sync` primitives; lock poisoning is
//! converted into plain lock acquisition (`parking_lot` locks do not
//! poison, so recovering the inner guard reproduces its semantics).

use std::sync;

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A mutual-exclusion lock with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn shared_across_threads() {
        let lock = std::sync::Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = std::sync::Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *lock.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), 400);
    }
}
