//! In-tree stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the `rand` 0.8 API that `gdp-datagen` uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen_range` / `gen_bool`. The generator is
//! xoshiro256\*\* seeded through splitmix64 — deterministic for a given
//! seed, statistically solid for synthetic-data generation, and *not*
//! cryptographic (neither is the real `StdRng` guaranteed stable across
//! versions, so exact streams were never part of the contract).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range using `rng`.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range on empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    // Modulo bias is ≤ span/2⁶⁴ — irrelevant for the
                    // synthetic-data spans used here.
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "gen_range on empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*
    };
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range on empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for std::ops::RangeInclusive<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range on empty range");
        lo + (unit_f64(rng) as f32) * (hi - lo)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

/// A uniform draw from [0, 1) with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator (the stand-in for `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Expand the seed with splitmix64, the recommended seeding
            // procedure for the xoshiro family.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-0.5..0.5f64);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(1650..1950i32);
            assert!((1650..1950).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..1_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "suspicious p=0.5 count {hits}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0..u64::MAX) == b.gen_range(0..u64::MAX))
            .count();
        assert_eq!(same, 0);
    }
}
