//! In-tree stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the `proptest` 1.x API its test suites use:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, range and regex-subset string strategies, tuple and
//! collection combinators, [`option::of`], [`bool::ANY`], [`any`], and
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` / `prop_oneof!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports the generated inputs via
//!   the panic message of the assertion that tripped, unminimized.
//! - **Deterministic seeding** derived from the test name, so failures
//!   reproduce across runs without a persistence file.
//! - String strategies accept only the regex subset actually used:
//!   sequences of `[class]` atoms (literal chars and `a-z` ranges) with
//!   optional `{n}` / `{lo,hi}` repetition, plus bare literal chars.
//!
//! Case count defaults to 64 per property; override with
//! `PROPTEST_CASES`.

pub mod test_runner {
    //! Case execution: RNG plumbing and the pass/reject/fail loop.

    pub use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Random source handed to strategies.
    pub struct TestRng(pub StdRng);

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed — the whole property fails.
        Fail(String),
        /// `prop_assume!` filtered the inputs — draw fresh ones.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(msg: S) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject<S: Into<String>>(msg: S) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Run one property: `cases` passing executions, retrying rejected
    /// draws up to a bounded number of extra attempts.
    pub fn run_cases<F>(name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let cases = case_count();
        // FNV-1a over the test name: reproducible seeds without any
        // global state or wall-clock input.
        let seed_base = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
        let mut passed = 0u64;
        let mut attempts = 0u64;
        while passed < cases {
            attempts += 1;
            if attempts > cases * 20 {
                panic!(
                    "proptest '{name}': too many rejected cases \
                     ({passed}/{cases} passed after {attempts} attempts)"
                );
            }
            let mut rng = TestRng(StdRng::seed_from_u64(seed_base ^ attempts));
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed (case {passed}, attempt {attempts}): {msg}")
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::test_runner::TestRng;
    use rand::Rng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Build a recursive strategy: `recurse` receives a strategy for
        /// the current depth and returns one for the next level up. The
        /// `_desired_size` / `_expected_branch_size` tuning knobs of real
        /// proptest are accepted and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                let leaf = leaf.clone();
                // Bias toward structure but keep leaves reachable so
                // generated sizes stay bounded.
                strat = BoxedStrategy {
                    f: Rc::new(move |rng: &mut TestRng| {
                        if rng.gen_bool(0.6) {
                            deeper.generate(rng)
                        } else {
                            leaf.generate(rng)
                        }
                    }),
                };
            }
            strat
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                f: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
            }
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        f: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                f: Rc::clone(&self.f),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among alternatives (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! numeric_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for std::ops::Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.gen_range(self.clone())
                    }
                }
                impl Strategy for std::ops::RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.gen_range(self.clone())
                    }
                }
            )*
        };
    }

    numeric_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            super::string::generate(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {
            $(
                #[allow(non_snake_case)]
                impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                    type Value = ($($s::Value,)+);
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        let ($($s,)+) = self;
                        ($($s.generate(rng),)+)
                    }
                }
            )*
        };
    }

    tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(
        A, B, C, D, E, G
    )(A, B, C, D, E, G, H)(A, B, C, D, E, G, H, I)(
        A, B, C, D, E, G, H, I, J
    )(A, B, C, D, E, G, H, I, J, K));
}

mod string {
    //! Regex-subset string generation: `[class]{lo,hi}` atom sequences.

    use super::test_runner::TestRng;
    use rand::Rng;

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated [ in pattern {pattern:?}"));
                let class = expand_class(&chars[i + 1..close], pattern);
                i = close + 1;
                class
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (lo, hi) = parse_repeat(&chars, &mut i, pattern);
            let n = rng.gen_range(lo..=hi);
            for _ in 0..n {
                out.push(alphabet[rng.gen_range(0..alphabet.len())]);
            }
        }
        out
    }

    fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
        assert!(!body.is_empty(), "empty [] in pattern {pattern:?}");
        let mut set = Vec::new();
        let mut j = 0;
        while j < body.len() {
            if j + 2 < body.len() && body[j + 1] == '-' {
                let (lo, hi) = (body[j], body[j + 2]);
                assert!(lo <= hi, "bad range {lo}-{hi} in pattern {pattern:?}");
                for c in lo..=hi {
                    set.push(c);
                }
                j += 3;
            } else {
                set.push(body[j]);
                j += 1;
            }
        }
        set
    }

    fn parse_repeat(chars: &[char], i: &mut usize, pattern: &str) -> (u32, u32) {
        if *i >= chars.len() || chars[*i] != '{' {
            return (1, 1);
        }
        let close = chars[*i..]
            .iter()
            .position(|&c| c == '}')
            .map(|p| *i + p)
            .unwrap_or_else(|| panic!("unterminated {{ in pattern {pattern:?}"));
        let body: String = chars[*i + 1..close].iter().collect();
        *i = close + 1;
        let parse = |s: &str| -> u32 {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad repeat {body:?} in pattern {pattern:?}"))
        };
        match body.split_once(',') {
            Some((lo, hi)) => (parse(lo), parse(hi)),
            None => {
                let n = parse(&body);
                (n, n)
            }
        }
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `hash_set`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification accepted by the collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// `Vec` of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `HashSet` of values from `element`, size drawn from `size`.
    /// Duplicates are redrawn a bounded number of times; a small
    /// alphabet may therefore yield a set below the drawn size.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            let mut set = HashSet::with_capacity(n);
            let mut attempts = 0;
            while set.len() < n && attempts < 10 * n + 20 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod option {
    //! The [`of`] combinator for optional values.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// `Some` from `inner` about 70% of the time, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.7) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod bool {
    //! Strategies for `bool`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical instance of [`Any`].
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;

        fn generate(&self, rng: &mut TestRng) -> ::core::primitive::bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point and the [`Arbitrary`] trait behind it.

    use super::strategy::{BoxedStrategy, Strategy};

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized + 'static {
        fn arbitrary() -> BoxedStrategy<Self>;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        T::arbitrary()
    }

    impl Arbitrary for ::core::primitive::bool {
        fn arbitrary() -> BoxedStrategy<Self> {
            super::bool::ANY.boxed()
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {
            $(
                impl Arbitrary for $t {
                    fn arbitrary() -> BoxedStrategy<Self> {
                        (<$t>::MIN..=<$t>::MAX).boxed()
                    }
                }
            )*
        };
    }

    arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use super::arbitrary::{any, Arbitrary};
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::TestCaseError;
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: each `fn` runs its body for many random
/// draws of its `name in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ($($strat,)+);
                $crate::test_runner::run_cases(stringify!($name), move |rng| {
                    let ($($pat,)+) = $crate::strategy::Strategy::generate(&strategy, rng);
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )+
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Reject the current case (redraw inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_match_shape() {
        use crate::test_runner::{StdRng, TestRng};
        use rand::SeedableRng;
        let mut rng = TestRng(StdRng::seed_from_u64(3));
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!((1..=7).contains(&s.len()), "bad length: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            let t = Strategy::generate(&"[a-e]", &mut rng);
            assert_eq!(t.len(), 1);
            assert!(('a'..='e').contains(&t.chars().next().unwrap()));
        }
    }

    proptest! {
        /// Smoke test: macro forms, ranges, maps, unions, collections.
        #[test]
        fn macro_and_combinators_work(
            x in -100i64..100,
            f in 0.0f64..=1.0,
            s in "[a-c]{1,3}",
            v in prop::collection::vec(prop_oneof![0i64..10, 90i64..100], 0..8),
            set in prop::collection::hash_set("[a-f]", 1..4),
            flag in crate::bool::ANY,
            opt in crate::option::of(0i64..5),
            b in any::<::core::primitive::bool>(),
        ) {
            prop_assume!(x != 0);
            prop_assert!((-100..100).contains(&x));
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!((1..=3).contains(&s.len()));
            prop_assert!(v.iter().all(|&n| (0..10).contains(&n) || (90..100).contains(&n)));
            prop_assert!(!set.is_empty() && set.len() <= 3);
            prop_assert_eq!(flag, flag);
            if let Some(o) = opt {
                prop_assert!((0..5).contains(&o));
            }
            prop_assert_ne!(b, !b);
        }

        #[test]
        fn recursive_strategy_terminates(depths in prop::collection::vec(
            (0i64..10).prop_map(|n| n).prop_recursive(3, 24, 4, |inner| {
                (inner, Just(1i64)).prop_map(|(a, b)| a + b)
            }),
            1..5,
        )) {
            prop_assert!(depths.iter().all(|&d| (0..14).contains(&d)));
        }
    }
}
