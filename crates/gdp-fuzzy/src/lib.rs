//! # gdp-fuzzy — accuracy qualification of facts (paper §VII)
//!
//! "Much of the information a GDP system provides to its users ought to be
//! qualified in a manner that indicates the extent to which the
//! information may be viewed as accurate. If this is not done, decisions
//! taken under the assumption that the information is absolutely true may
//! have disastrous consequences."
//!
//! This crate supplies:
//!
//! * [`Truth`]: fuzzy truth values under the min–max rule (§VII.A);
//! * the simple fuzzy operator `%a` — already present in the core as the
//!   separate `fh/6` relation ([`gdp_core::Specification::assert_fuzzy_fact`]),
//!   with the crucial property that `q(x)` is *not* provable from
//!   `%a q(x)` (§VII.C);
//! * threshold promotion and the unified fuzzy operator `%[A]` with
//!   max/min/avg conflict policies ([`ops`], §VII.C–D);
//! * fuzzy constraints (§VII.E) — via ordinary [`gdp_core::Constraint`]s
//!   over [`gdp_core::Formula::FuzzyFact`], plus [`fuzzy_violations`] for
//!   accuracy-qualified errors like `%[A] ERROR(missing_bridge)`;
//! * the `AC` accuracy-propagation evaluator and the mechanical
//!   generation of `F(Xi) ∧ A = AC(F(Xi)) ⇒ %A q(Xk)` ([`ac`], §VII.F).
//!
//! ## Example — deriving the accuracy of a hazard assessment
//!
//! ```
//! use gdp_core::{FactPat, Formula, Pat, Rule, Specification};
//! use gdp_fuzzy::ac::{derive_accuracies, AcOptions};
//!
//! let mut spec = Specification::new();
//! spec.assert_fuzzy_fact(FactPat::new("flooded").arg("plain"), 0.45).unwrap();
//! spec.assert_fuzzy_fact(FactPat::new("frozen").arg("plain"), 0.65).unwrap();
//!
//! let rule = Rule::new(
//!     FactPat::new("hazard").arg("X"),
//!     Formula::and(
//!         Formula::fact(FactPat::new("flooded").arg("X")),
//!         Formula::fact(FactPat::new("frozen").arg("X")),
//!     ),
//! );
//! derive_accuracies(&mut spec, &rule, &AcOptions::default()).unwrap();
//!
//! let a = spec.satisfy(&Formula::FuzzyFact(
//!     FactPat::new("hazard").arg("plain"), Pat::var("A"),
//! )).unwrap();
//! assert_eq!(a[0].get("A").unwrap().as_f64(), Some(0.45)); // min–max
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ac;
pub mod ops;
mod truth;

pub use ops::{define_fuzzy, threshold_model, unified_fuzzy, unified_threshold_model, UnifyPolicy};
pub use truth::Truth;

use gdp_core::{SpecResult, Specification, Violation};
use gdp_engine::{list_to_vec, Term};

/// Accuracy-qualified constraint violations (§VII.E second case): every
/// `%A ERROR(…)` fact visible in the active world view, with its accuracy.
///
/// "A high accuracy value associated with this error may indicate possible
/// problems with the data being processed."
pub fn fuzzy_violations(spec: &Specification) -> SpecResult<Vec<(Violation, f64)>> {
    let goal = Term::pred(
        "fvisible",
        vec![
            Term::var(0), // model
            Term::var(1), // space
            Term::var(2), // time
            Term::var(3), // accuracy
            Term::atom(gdp_core::ERROR_PRED),
            Term::var(4), // args
        ],
    );
    let sols = spec.solve_goal(goal)?;
    let mut out = Vec::new();
    for sol in sols {
        let get = |i: u32| sol.get(gdp_engine::Var(i)).cloned().unwrap_or(Term::var(i));
        let Some(acc) = get(3).as_f64() else {
            continue;
        };
        let items = list_to_vec(&get(4)).unwrap_or_default();
        let (error_type, witnesses) = match items.split_first() {
            Some((t, w)) => (t.clone(), w.to_vec()),
            None => (Term::atom("unknown"), Vec::new()),
        };
        let v = Violation {
            model: get(0),
            error_type,
            witnesses,
            space: get(1),
            time: get(2),
        };
        if !out.iter().any(|(existing, a)| *existing == v && *a == acc) {
            out.push((v, acc));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_core::FactPat;

    #[test]
    fn fuzzy_errors_reported_with_accuracy() {
        let mut spec = Specification::new();
        // %0.15 ERROR(missing_bridge): 15% of river crossings appear to
        // lack a bridge (§VII.E).
        spec.assert_fuzzy_fact(
            FactPat::new(gdp_core::ERROR_PRED)
                .arg("missing_bridge")
                .arg("river7"),
            0.15,
        )
        .unwrap();
        let vs = fuzzy_violations(&spec).unwrap();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].0.error_type, Term::atom("missing_bridge"));
        assert_eq!(vs[0].1, 0.15);
        // Crisp consistency checking does NOT see fuzzy errors.
        assert!(spec.check_consistency().unwrap().is_empty());
    }

    #[test]
    fn fuzzy_errors_respect_world_view() {
        let mut spec = Specification::new();
        spec.assert_fuzzy_fact(
            FactPat::new(gdp_core::ERROR_PRED)
                .arg("suspect_datum")
                .model("survey_1962"),
            0.4,
        )
        .unwrap();
        assert!(fuzzy_violations(&spec).unwrap().is_empty());
        spec.set_world_view(&["omega", "survey_1962"]).unwrap();
        assert_eq!(fuzzy_violations(&spec).unwrap().len(), 1);
    }
}
