//! Fuzzy-operator meta-models (§VII.B–E).
//!
//! * [`threshold_model`] — "the user chooses to view as true any facts
//!   whose accuracy exceeds a certain threshold" (§VII.C): promotes fuzzy
//!   facts above a cutoff into crisp facts of a designated model, so the
//!   promotion is visible only in world views that include that model.
//! * [`unified_fuzzy`] — the unified fuzzy operator `%[A]` (§VII.D),
//!   resolving conflicting accuracies for the same fact. The default
//!   policy is the paper's ("the highest accuracy assigned to some
//!   fact"); `min` and `avg` cover the paper's "other definitions … may
//!   be needed for specific types of facts".
//! * [`unified_threshold_model`] — the §VII.D example
//!   `%[A]Q(X) ∧ (A > 0.75) ⇒ m'Q(X)`, thresholding over the *unified*
//!   accuracy rather than any single qualification.
//! * [`define_fuzzy`] — install a rule whose conclusion is itself
//!   accuracy-qualified (`… ⇒ %A q(Xk)`), the shape the paper's
//!   interpolation and picture-clarity definitions take (§VII.B).

use gdp_core::{
    FactPat, Formula, MetaModel, Pat, RawClause, SpecError, SpecResult, Specification, Target,
    VarTable,
};
use gdp_engine::GroupId;

fn v(name: &str) -> Pat {
    Pat::var(name)
}

fn goal(name: &str, args: Vec<Pat>) -> Pat {
    Pat::app(name, args)
}

fn h(m: Pat, s: Pat, t: Pat, q: Pat, a: Pat) -> Pat {
    Pat::app("h", vec![m, s, t, q, a])
}

fn fvisible(m: Pat, s: Pat, t: Pat, acc: Pat, q: Pat, a: Pat) -> Pat {
    Pat::app("fvisible", vec![m, s, t, acc, q, a])
}

/// Accuracy-unification policy for the `%[A]` operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnifyPolicy {
    /// The paper's default: the highest accuracy assigned to the fact.
    Max,
    /// The most conservative reading.
    Min,
    /// The consensus reading.
    Avg,
}

impl UnifyPolicy {
    fn atom(self) -> &'static str {
        match self {
            UnifyPolicy::Max => "max",
            UnifyPolicy::Min => "min",
            UnifyPolicy::Avg => "avg",
        }
    }
}

/// Threshold promotion (§VII.C): `%A Q(X) ∧ (A > τ) ⇒ m'Q(X)`.
///
/// "A model must be specified in order to separate the facts of interest
/// from all the other facts" — the promoted facts land in `target_model`,
/// which stays invisible until a world view includes it.
pub fn threshold_model(name: &str, target_model: &str, tau: f64) -> MetaModel {
    MetaModel::new(name)
        .doc("promote fuzzy facts above an accuracy threshold into a designated model")
        .clause(RawClause::build(
            &h(Pat::atom(target_model), v("S"), v("T"), v("Q"), v("A")),
            &[
                fvisible(v("M"), v("S"), v("T"), v("Acc"), v("Q"), v("A")),
                goal(">", vec![v("Acc"), Pat::Float(tau)]),
            ],
        ))
        .build()
}

/// The unified fuzzy operator `%[A]` (§VII.D) under the given policy,
/// exposed as the predicate `unified_acc(S, T, Q, Args, A)`.
pub fn unified_fuzzy(policy: UnifyPolicy) -> MetaModel {
    MetaModel::new(&format!("unified_fuzzy_{}", policy.atom()))
        .doc("the unified fuzzy operator: one accuracy per fact, resolving conflicts")
        .clause(RawClause::build(
            &goal(
                "unified_acc",
                vec![v("S"), v("T"), v("Q"), v("Args"), v("A")],
            ),
            &[goal(
                "aggregate",
                vec![
                    Pat::atom(policy.atom()),
                    v("Acc"),
                    fvisible(v("M"), v("S"), v("T"), v("Acc"), v("Q"), v("Args")),
                    v("A"),
                ],
            )],
        ))
        .build()
}

/// The §VII.D example: `%[A]Q(X) ∧ (A > τ) ⇒ m'Q(X)` — promotion gated on
/// the *unified* accuracy. Requires a `unified_fuzzy_*` meta-model to be
/// active for `unified_acc/5` to resolve.
pub fn unified_threshold_model(name: &str, target_model: &str, tau: f64) -> MetaModel {
    MetaModel::new(name)
        .doc("promote facts whose unified accuracy exceeds a threshold into a model")
        .clause(RawClause::build(
            &h(Pat::atom(target_model), v("S"), v("T"), v("Q"), v("A")),
            &[
                // Ground the fact shape first: unified_acc aggregates over
                // *all* matching fuzzy facts, so the fact must be fixed.
                fvisible(v("M"), v("S"), v("T"), v("AnyAcc"), v("Q"), v("A")),
                goal("unified_acc", vec![v("S"), v("T"), v("Q"), v("A"), v("U")]),
                goal(">", vec![v("U"), Pat::Float(tau)]),
            ],
        ))
        .build()
}

/// Install a rule with an accuracy-qualified conclusion:
/// `(∀Xi): F(Xi) ⇒ %Acc q(Xk)` (§VII.B). The accuracy pattern must be
/// bound by the body (typically through `Formula::Is` computing it, or a
/// `Formula::FuzzyFact` binding it).
pub fn define_fuzzy(
    spec: &mut Specification,
    head: FactPat,
    accuracy: Pat,
    body: Formula,
) -> SpecResult<()> {
    let mut head_vars = Vec::new();
    head.collect_vars(&mut head_vars);
    accuracy.collect_vars(&mut head_vars);
    if let Err(reason) = body.check_safety(&head_vars) {
        return Err(SpecError::UnsafeRule {
            rule: head.pred_name().unwrap_or_else(|| head.pred.to_string()),
            reason,
        });
    }
    let mut vt = VarTable::new();
    let head_term = head.compile_fuzzy(&mut vt, &accuracy, Target::Holds);
    let body_term = body.compile(&mut vt);
    spec.kb_mut()
        .assert_clause_in(GroupId::named("rules"), head_term, body_term);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_core::CmpOp;

    fn fact(pred: &str, args: &[&str]) -> FactPat {
        let mut f = FactPat::new(pred);
        for a in args {
            f = f.arg(*a);
        }
        f
    }

    #[test]
    fn threshold_promotes_into_model_only() {
        let mut spec = Specification::new();
        spec.assert_fuzzy_fact(fact("passable", &["ford1"]), 0.9)
            .unwrap();
        spec.assert_fuzzy_fact(fact("passable", &["ford2"]), 0.5)
            .unwrap();
        spec.declare_model("trusted");
        spec.register_meta_model(threshold_model("trust80", "trusted", 0.8));
        spec.activate_meta_model("trust80").unwrap();
        // Not visible in the default world view.
        assert!(!spec.provable(fact("passable", &["ford1"])).unwrap());
        spec.set_world_view(&["omega", "trusted"]).unwrap();
        assert!(spec.provable(fact("passable", &["ford1"])).unwrap());
        assert!(!spec.provable(fact("passable", &["ford2"])).unwrap());
    }

    #[test]
    fn ignoring_accuracy_entirely() {
        // §VII.C case 1: definitions that ignore the fuzzy operator never
        // see fuzzy facts at all.
        let mut spec = Specification::new();
        spec.assert_fuzzy_fact(fact("clarity", &["image"]), 0.99)
            .unwrap();
        assert!(!spec.provable(fact("clarity", &["image"])).unwrap());
    }

    #[test]
    fn unified_policies_resolve_conflicts() {
        for (policy, expected) in [
            (UnifyPolicy::Max, 0.9),
            (UnifyPolicy::Min, 0.3),
            (UnifyPolicy::Avg, 0.6),
        ] {
            let mut spec = Specification::new();
            spec.assert_fuzzy_fact(fact("depth_ok", &["site"]), 0.3)
                .unwrap();
            spec.assert_fuzzy_fact(fact("depth_ok", &["site"]), 0.9)
                .unwrap();
            let name = format!("unified_fuzzy_{}", policy.atom());
            spec.register_meta_model(unified_fuzzy(policy));
            spec.activate_meta_model(&name).unwrap();
            let answers = spec
                .satisfy(&Formula::Raw(goal(
                    "unified_acc",
                    vec![
                        Pat::atom("any"),
                        Pat::atom("any"),
                        Pat::atom("depth_ok"),
                        Pat::app(
                            ".",
                            vec![Pat::atom("site"), Pat::Term(gdp_engine::Term::nil())],
                        ),
                        v("A"),
                    ],
                )))
                .unwrap();
            assert_eq!(answers.len(), 1, "policy {policy:?}");
            let got = answers[0].get("A").unwrap().as_f64().unwrap();
            assert!((got - expected).abs() < 1e-12, "policy {policy:?}: {got}");
        }
    }

    #[test]
    fn unified_threshold_uses_best_accuracy() {
        let mut spec = Specification::new();
        spec.assert_fuzzy_fact(fact("route_clear", &["r1"]), 0.5)
            .unwrap();
        spec.assert_fuzzy_fact(fact("route_clear", &["r1"]), 0.8)
            .unwrap();
        spec.declare_model("mission");
        spec.register_meta_model(unified_fuzzy(UnifyPolicy::Max));
        spec.register_meta_model(unified_threshold_model("mt75", "mission", 0.75));
        spec.activate_meta_model("unified_fuzzy_max").unwrap();
        spec.activate_meta_model("mt75").unwrap();
        spec.set_world_view(&["omega", "mission"]).unwrap();
        // max(0.5, 0.8) = 0.8 > 0.75 → promoted, even though one
        // qualification alone (0.5) would not pass.
        assert!(spec.provable(fact("route_clear", &["r1"])).unwrap());
    }

    #[test]
    fn define_fuzzy_computes_conclusion_accuracy() {
        // A toy statistical accuracy: %A coverage(region) with
        // A = N/10 where N = card(surveyed cells).
        let mut spec = Specification::new();
        for c in ["c1", "c2", "c3"] {
            spec.assert_fact(fact("surveyed", &[c])).unwrap();
        }
        define_fuzzy(
            &mut spec,
            fact("coverage", &["region"]),
            v("A"),
            Formula::and(
                Formula::Card(Box::new(Formula::fact(fact("surveyed", &["C"]))), v("N")),
                Formula::Is(v("A"), Pat::app("/", vec![v("N"), Pat::Int(10)])),
            ),
        )
        .unwrap();
        let answers = spec
            .satisfy(&Formula::FuzzyFact(fact("coverage", &["region"]), v("A")))
            .unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].get("A").unwrap().as_f64(), Some(0.3));
    }

    #[test]
    fn define_fuzzy_rejects_unbound_accuracy() {
        let mut spec = Specification::new();
        let err = define_fuzzy(
            &mut spec,
            fact("coverage", &["region"]),
            v("A"),
            Formula::True,
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::UnsafeRule { .. }));
    }

    #[test]
    fn fuzzy_constraint_on_low_accuracy() {
        // §VII.E first case: error triggered by the accuracy of a fact.
        use gdp_core::Constraint;
        let mut spec = Specification::new();
        spec.assert_fuzzy_fact(fact("clarity", &["img7"]), 0.6)
            .unwrap();
        spec.constrain(Constraint::new("bad_image").witness("X").when(Formula::and(
            Formula::FuzzyFact(fact("clarity", &["X"]), v("A")),
            Formula::Cmp(CmpOp::Lt, v("A"), Pat::Float(0.8)),
        )))
        .unwrap();
        let violations = spec.check_consistency().unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(
            violations[0].error_type,
            gdp_engine::Term::atom("bad_image")
        );
    }
}
