//! Fuzzy truth values and the min–max rule (§VII.A).
//!
//! "Fuzzy logic allows the truth value of a formula to take any value in
//! the closed interval [0,1]." The table below is the paper's, implemented
//! verbatim:
//!
//! | formula | truth |
//! |---|---|
//! | `¬F1` | `1 − TRUTH(F1)` |
//! | `F1 ∧ F2` | `min` |
//! | `F1 ∨ F2` | `max` |
//! | `∀X: F1(X)` | `inf` over the domain |
//! | `∃X: F1(X)` | `sup` over the domain |

use std::fmt;

/// A truth/accuracy value in the closed interval `[0, 1]`.
///
/// "Zero is interpreted as absolutely false, one is interpreted as
/// absolutely true, and the values in between correspond to degrees of
/// truth" (§VII.B).
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct Truth(f64);

impl Truth {
    /// Absolutely true.
    pub const TRUE: Truth = Truth(1.0);
    /// Absolutely false.
    pub const FALSE: Truth = Truth(0.0);

    /// Construct, returning `None` outside `[0, 1]` or for NaN.
    pub fn new(v: f64) -> Option<Truth> {
        if (0.0..=1.0).contains(&v) {
            Some(Truth(v))
        } else {
            None
        }
    }

    /// Construct, clamping into `[0, 1]`. Panics on NaN.
    pub fn clamped(v: f64) -> Truth {
        assert!(!v.is_nan(), "NaN is not a truth value");
        Truth(v.clamp(0.0, 1.0))
    }

    /// The wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Min–max negation `1 − t`.
    #[allow(clippy::should_implement_trait)] // fuzzy negation, the paper's name
    pub fn not(self) -> Truth {
        Truth(1.0 - self.0)
    }

    /// Min–max conjunction.
    pub fn and(self, other: Truth) -> Truth {
        Truth(self.0.min(other.0))
    }

    /// Min–max disjunction.
    pub fn or(self, other: Truth) -> Truth {
        Truth(self.0.max(other.0))
    }

    /// `inf` over an iterator — the universal quantifier. Empty domains
    /// yield `TRUE` (vacuous truth).
    pub fn forall(values: impl IntoIterator<Item = Truth>) -> Truth {
        values.into_iter().fold(Truth::TRUE, |acc, t| acc.and(t))
    }

    /// `sup` over an iterator — the existential quantifier. Empty domains
    /// yield `FALSE`.
    pub fn exists(values: impl IntoIterator<Item = Truth>) -> Truth {
        values.into_iter().fold(Truth::FALSE, |acc, t| acc.or(t))
    }

    /// Is this one of the two classical values?
    pub fn is_crisp(self) -> bool {
        self.0 == 0.0 || self.0 == 1.0
    }
}

impl fmt::Debug for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_bounds() {
        assert!(Truth::new(0.5).is_some());
        assert!(Truth::new(-0.1).is_none());
        assert!(Truth::new(1.1).is_none());
        assert!(Truth::new(f64::NAN).is_none());
        assert_eq!(Truth::clamped(2.0).get(), 1.0);
    }

    #[test]
    fn papers_flooded_frozen_example() {
        // §VII.A: flooded(plain)=0.45, frozen(plain)=0.65 → conjunction 0.45.
        let flooded = Truth::new(0.45).unwrap();
        let frozen = Truth::new(0.65).unwrap();
        assert_eq!(flooded.and(frozen).get(), 0.45);
        // flooded=false, frozen=true → conjunction 0.00.
        assert_eq!(Truth::FALSE.and(Truth::TRUE).get(), 0.0);
    }

    #[test]
    fn min_max_laws() {
        let a = Truth::new(0.3).unwrap();
        let b = Truth::new(0.7).unwrap();
        let approx = |x: Truth, y: f64| (x.get() - y).abs() < 1e-12;
        assert!(approx(a.or(b), 0.7));
        assert!(approx(a.not(), 0.7));
        assert!(approx(a.not().not(), a.get()));
        // De Morgan under min–max.
        assert!(approx(a.and(b).not(), a.not().or(b.not()).get()));
    }

    #[test]
    fn quantifiers() {
        let vs = [0.9, 0.4, 0.6].map(|v| Truth::new(v).unwrap());
        assert_eq!(Truth::forall(vs).get(), 0.4);
        assert_eq!(Truth::exists(vs).get(), 0.9);
        assert_eq!(Truth::forall([]).get(), 1.0);
        assert_eq!(Truth::exists([]).get(), 0.0);
    }

    #[test]
    fn two_valued_compatibility() {
        // "Two-valued logic may be seen as a special case of fuzzy logic."
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            let (ta, tb) = (Truth::clamped(a), Truth::clamped(b));
            assert_eq!(
                ta.and(tb).get(),
                if a == 1.0 && b == 1.0 { 1.0 } else { 0.0 }
            );
            assert_eq!(
                ta.or(tb).get(),
                if a == 1.0 || b == 1.0 { 1.0 } else { 0.0 }
            );
            assert!(ta.and(tb).is_crisp());
        }
    }
}
