//! Uncertainty-level propagation via logical inference — the `AC` function
//! (§VII.F).
//!
//! "The question addressed in this section is how to assign automatically
//! an accuracy to facts derived from accuracy qualified facts." The paper
//! assumes rule definitions stay accuracy-free (so accuracy models remain
//! swappable) and gives a recursive definition of `AC` over the formula
//! language, plus the propagation schema
//!
//! ```text
//! (∀Xi): F(Xi) ∧ (A = AC(F(Xi))) ⇒ %A q(Xk)
//! ```
//!
//! noting "these types of formulas may be generated mechanically" —
//! [`derive_accuracies`] is that mechanical generation: it enumerates the
//! rule body's support instantiations (facts provable either crisply or
//! with any accuracy), computes `AC` for each, and asserts the
//! accuracy-qualified conclusions.
//!
//! The `AC` definition implemented (paper's table, §VII.F):
//!
//! * atomic `q1(xi)` — the unified (max) accuracy `%[a] q1(xi)`; *failure*
//!   if no accuracy qualification is provable (configurable: crisp facts
//!   may count as accuracy 1, which is what makes the computation
//!   "consistent with the two-valued logic" when only 0/1 occur);
//! * `F1 ∧ F2` — `min`;  `F1 ∨ F2` — `max`;
//! * `∀Xj: (F2 → F3)` — `min(AC(F1), inf_j max(1 − AC(F2), AC(F3)))`;
//! * `F1 ∧ not(F2)` — `min(AC(F1), 1)` if `F2` is not provable, failure
//!   otherwise.

use gdp_core::{FactPat, Formula, Pat, Rule, SpecResult, Specification, Target, VarTable};
use gdp_engine::{FxHashMap, Term};

/// Options controlling [`ac_of`] / [`derive_accuracies`].
#[derive(Clone, Copy, Debug)]
pub struct AcOptions {
    /// Accuracy attributed to facts that are provable *crisply* but carry
    /// no fuzzy qualification. `Some(1.0)` (the default) makes the
    /// computation degenerate to two-valued logic on crisp data, as §VII.F
    /// requires; `None` is the paper's strict reading, where an atom with
    /// no accuracy qualification simply fails.
    pub crisp_accuracy: Option<f64>,
}

impl Default for AcOptions {
    fn default() -> AcOptions {
        AcOptions {
            crisp_accuracy: Some(1.0),
        }
    }
}

type Bindings = FxHashMap<String, Term>;

fn subst_pat(p: &Pat, b: &Bindings) -> Pat {
    match p {
        Pat::Var(n) => match b.get(n) {
            Some(t) => Pat::Term(t.clone()),
            None => p.clone(),
        },
        Pat::Compound(f, args) => {
            Pat::Compound(f.clone(), args.iter().map(|a| subst_pat(a, b)).collect())
        }
        other => other.clone(),
    }
}

fn subst_fact(f: &FactPat, b: &Bindings) -> FactPat {
    use gdp_core::{ArgsPat, SpaceQual, TimeQual};
    let args = match &f.args {
        ArgsPat::Fixed(items) => ArgsPat::Fixed(items.iter().map(|p| subst_pat(p, b)).collect()),
        ArgsPat::HeadTail(items, tail) => ArgsPat::HeadTail(
            items.iter().map(|p| subst_pat(p, b)).collect(),
            subst_pat(tail, b),
        ),
        ArgsPat::Whole(p) => ArgsPat::Whole(subst_pat(p, b)),
    };
    let space = match &f.space {
        SpaceQual::Any => SpaceQual::Any,
        SpaceQual::At(p) => SpaceQual::At(subst_pat(p, b)),
        SpaceQual::AreaUniform { res, at } => SpaceQual::AreaUniform {
            res: subst_pat(res, b),
            at: subst_pat(at, b),
        },
        SpaceQual::AreaSampled { res, at } => SpaceQual::AreaSampled {
            res: subst_pat(res, b),
            at: subst_pat(at, b),
        },
        SpaceQual::AreaAveraged { res, at } => SpaceQual::AreaAveraged {
            res: subst_pat(res, b),
            at: subst_pat(at, b),
        },
    };
    let subst_iv = |iv: &gdp_core::IntervalPat| gdp_core::IntervalPat {
        lo: subst_pat(&iv.lo, b),
        hi: subst_pat(&iv.hi, b),
        lo_closed: iv.lo_closed,
        hi_closed: iv.hi_closed,
    };
    let time = match &f.time {
        TimeQual::Any => TimeQual::Any,
        TimeQual::Now => TimeQual::Now,
        TimeQual::At(p) => TimeQual::At(subst_pat(p, b)),
        TimeQual::IntervalUniform(iv) => TimeQual::IntervalUniform(subst_iv(iv)),
        TimeQual::IntervalSampled(iv) => TimeQual::IntervalSampled(subst_iv(iv)),
        TimeQual::IntervalAveraged(iv) => TimeQual::IntervalAveraged(subst_iv(iv)),
        TimeQual::Cyclic { period, interval } => TimeQual::Cyclic {
            period: subst_pat(period, b),
            interval: subst_iv(interval),
        },
    };
    FactPat {
        model: f.model.as_ref().map(|m| subst_pat(m, b)),
        space,
        time,
        pred: subst_pat(&f.pred, b),
        args,
    }
}

fn subst_formula(f: &Formula, b: &Bindings) -> Formula {
    match f {
        Formula::True => Formula::True,
        Formula::Fact(fp) => Formula::Fact(subst_fact(fp, b)),
        Formula::FuzzyFact(fp, acc) => Formula::FuzzyFact(subst_fact(fp, b), subst_pat(acc, b)),
        Formula::And(x, y) => {
            Formula::And(Box::new(subst_formula(x, b)), Box::new(subst_formula(y, b)))
        }
        Formula::Or(x, y) => {
            Formula::Or(Box::new(subst_formula(x, b)), Box::new(subst_formula(y, b)))
        }
        Formula::Not(x) => Formula::Not(Box::new(subst_formula(x, b))),
        Formula::Forall(c, t) => {
            Formula::Forall(Box::new(subst_formula(c, b)), Box::new(subst_formula(t, b)))
        }
        Formula::Cmp(op, x, y) => Formula::Cmp(*op, subst_pat(x, b), subst_pat(y, b)),
        Formula::Unify(x, y) => Formula::Unify(subst_pat(x, b), subst_pat(y, b)),
        Formula::Is(x, y) => Formula::Is(subst_pat(x, b), subst_pat(y, b)),
        Formula::Domain(d, x) => Formula::Domain(d.clone(), subst_pat(x, b)),
        Formula::Card(inner, n) => {
            Formula::Card(Box::new(subst_formula(inner, b)), subst_pat(n, b))
        }
        Formula::Agg(op, t, inner, r) => Formula::Agg(
            *op,
            subst_pat(t, b),
            Box::new(subst_formula(inner, b)),
            subst_pat(r, b),
        ),
        Formula::Raw(p) => Formula::Raw(subst_pat(p, b)),
    }
}

/// Rewrite a formula so that fact atoms are provable through *either* the
/// fuzzy or the crisp relation — the support query used to enumerate
/// instantiations.
fn support(f: &Formula) -> Formula {
    match f {
        Formula::Fact(fp) => Formula::or(
            Formula::Fact(fp.clone()),
            Formula::FuzzyFact(fp.clone(), Pat::Wild),
        ),
        Formula::And(a, b) => Formula::and(support(a), support(b)),
        Formula::Or(a, b) => Formula::or(support(a), support(b)),
        Formula::Not(a) => Formula::not(support(a)),
        Formula::Forall(c, t) => Formula::forall(support(c), support(t)),
        Formula::Card(inner, n) => Formula::Card(Box::new(support(inner)), n.clone()),
        Formula::Agg(op, t, inner, r) => {
            Formula::Agg(*op, t.clone(), Box::new(support(inner)), r.clone())
        }
        other => other.clone(),
    }
}

/// The unified (max) accuracy of one ground fact atom, or the crisp
/// fallback from `opts`. `None` = the paper's "failure".
fn atom_accuracy(
    spec: &Specification,
    fact: &FactPat,
    opts: &AcOptions,
) -> SpecResult<Option<f64>> {
    // max over fvisible accuracies for this fact shape.
    let mut vt = VarTable::new();
    let acc_var = vt.fresh();
    let lookup = fact.compile_fuzzy(&mut vt, &Pat::Term(Term::var(acc_var)), Target::Visible);
    let result_var = vt.fresh();
    let goal = Term::pred(
        "aggregate",
        vec![
            Term::atom("max"),
            Term::var(acc_var),
            lookup,
            Term::var(result_var),
        ],
    );
    let sols = spec.solve_goal(goal)?;
    if let Some(sol) = sols.first() {
        if let Some(a) = sol.get(gdp_engine::Var(result_var)).and_then(Term::as_f64) {
            return Ok(Some(a));
        }
    }
    match opts.crisp_accuracy {
        Some(ca) if spec.provable(fact.clone())? => Ok(Some(ca)),
        _ => Ok(None),
    }
}

/// Compute `AC` for a (substituted) formula instance. `None` is the
/// paper's "failure" outcome.
pub fn ac_of(spec: &Specification, f: &Formula, opts: &AcOptions) -> SpecResult<Option<f64>> {
    match f {
        Formula::True => Ok(Some(1.0)),
        Formula::Fact(fp) => atom_accuracy(spec, fp, opts),
        Formula::FuzzyFact(fp, acc) => {
            // An explicit accuracy reference: if the pattern is a known
            // constant, that is the accuracy; otherwise fall back to the
            // unified lookup.
            let mut vt = VarTable::new();
            if let Term::Float(v) = vt.compile(acc) {
                if spec.satisfiable(&Formula::FuzzyFact(fp.clone(), acc.clone()))? {
                    return Ok(Some(v.get()));
                }
                return Ok(None);
            }
            atom_accuracy(spec, fp, opts)
        }
        Formula::And(a, b) => {
            let (x, y) = (ac_of(spec, a, opts)?, ac_of(spec, b, opts)?);
            Ok(match (x, y) {
                (Some(x), Some(y)) => Some(x.min(y)),
                _ => None,
            })
        }
        Formula::Or(a, b) => {
            let (x, y) = (ac_of(spec, a, opts)?, ac_of(spec, b, opts)?);
            Ok(match (x, y) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (Some(x), None) | (None, Some(x)) => Some(x),
                (None, None) => None,
            })
        }
        Formula::Not(inner) => {
            // F1 ∧ not(F2): min(AC(F1), 1) if F2 not provable, failure if
            // provable. Provability here means support-provability.
            if spec.satisfiable(&support(inner))? {
                Ok(None)
            } else {
                Ok(Some(1.0))
            }
        }
        Formula::Forall(cond, then) => {
            // inf over the condition's support instances of
            // max(1 − AC(F2), AC(F3)); vacuously 1.
            let answers = spec.satisfy(&support(cond))?;
            let mut inf: f64 = 1.0;
            for ans in answers {
                let b: Bindings = ans
                    .bindings()
                    .iter()
                    .map(|(n, t)| (n.clone(), t.clone()))
                    .collect();
                let ac_cond = ac_of(spec, &subst_formula(cond, &b), opts)?.unwrap_or(1.0);
                let ac_then = ac_of(spec, &subst_formula(then, &b), opts)?.unwrap_or(0.0);
                inf = inf.min((1.0 - ac_cond).max(ac_then));
            }
            Ok(Some(inf))
        }
        // Crisp tests and computations contribute 1 when they hold,
        // failure when they do not.
        other => {
            if spec.satisfiable(other)? {
                Ok(Some(1.0))
            } else {
                Ok(None)
            }
        }
    }
}

/// Mechanically generate the accuracy-qualified conclusions of `rule`:
/// for every support instantiation of the body, compute `AC` and assert
/// `%A head` into the fuzzy relation. Returns the number of fuzzy facts
/// asserted (after deduplication).
pub fn derive_accuracies(
    spec: &mut Specification,
    rule: &Rule,
    opts: &AcOptions,
) -> SpecResult<usize> {
    let answers = spec.satisfy(&support(&rule.body))?;
    let mut seen: Vec<(FactPat, f64)> = Vec::new();
    for ans in answers {
        let b: Bindings = ans
            .bindings()
            .iter()
            .map(|(n, t)| (n.clone(), t.clone()))
            .collect();
        let body = subst_formula(&rule.body, &b);
        let Some(a) = ac_of(spec, &body, opts)? else {
            continue;
        };
        let head = subst_fact(&rule.head, &b);
        let entry = (head, a);
        if seen
            .iter()
            .any(|(h, acc)| *h == entry.0 && (acc - a).abs() < 1e-12)
        {
            continue;
        }
        seen.push(entry);
    }
    let n = seen.len();
    for (head, a) in seen {
        spec.assert_fuzzy_fact(head, a.clamp(0.0, 1.0))?;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_core::Rule;

    fn fact(pred: &str, args: &[&str]) -> FactPat {
        let mut f = FactPat::new(pred);
        for a in args {
            f = f.arg(*a);
        }
        f
    }

    #[test]
    fn conjunction_takes_min() {
        let mut spec = Specification::new();
        spec.assert_fuzzy_fact(fact("flooded", &["plain"]), 0.45)
            .unwrap();
        spec.assert_fuzzy_fact(fact("frozen", &["plain"]), 0.65)
            .unwrap();
        let f = Formula::and(
            Formula::fact(fact("flooded", &["plain"])),
            Formula::fact(fact("frozen", &["plain"])),
        );
        let a = ac_of(&spec, &f, &AcOptions::default()).unwrap();
        assert_eq!(a, Some(0.45));
    }

    #[test]
    fn disjunction_takes_max_and_failure_propagates() {
        let mut spec = Specification::new();
        spec.assert_fuzzy_fact(fact("p", &["x"]), 0.3).unwrap();
        let opts = AcOptions {
            crisp_accuracy: None,
        };
        let f = Formula::or(
            Formula::fact(fact("p", &["x"])),
            Formula::fact(fact("q", &["x"])),
        );
        assert_eq!(ac_of(&spec, &f, &opts).unwrap(), Some(0.3));
        let g = Formula::and(
            Formula::fact(fact("p", &["x"])),
            Formula::fact(fact("q", &["x"])),
        );
        assert_eq!(ac_of(&spec, &g, &opts).unwrap(), None);
    }

    #[test]
    fn crisp_facts_count_as_one_by_default() {
        let mut spec = Specification::new();
        spec.assert_fact(fact("road", &["s1"])).unwrap();
        spec.assert_fuzzy_fact(fact("passable", &["s1"]), 0.7)
            .unwrap();
        let f = Formula::and(
            Formula::fact(fact("road", &["s1"])),
            Formula::fact(fact("passable", &["s1"])),
        );
        assert_eq!(ac_of(&spec, &f, &AcOptions::default()).unwrap(), Some(0.7));
        // Strict paper reading: the crisp atom has no accuracy → failure.
        let strict = AcOptions {
            crisp_accuracy: None,
        };
        assert_eq!(ac_of(&spec, &f, &strict).unwrap(), None);
    }

    #[test]
    fn negation_as_failure_semantics() {
        let mut spec = Specification::new();
        spec.assert_fuzzy_fact(fact("wet", &["field"]), 0.8)
            .unwrap();
        let ok = Formula::and(
            Formula::fact(fact("wet", &["field"])),
            Formula::not(Formula::fact(fact("frozen", &["field"]))),
        );
        assert_eq!(ac_of(&spec, &ok, &AcOptions::default()).unwrap(), Some(0.8));
        spec.assert_fuzzy_fact(fact("frozen", &["field"]), 0.2)
            .unwrap();
        // frozen now (fuzzily) provable → the negation fails the formula.
        assert_eq!(ac_of(&spec, &ok, &AcOptions::default()).unwrap(), None);
    }

    #[test]
    fn forall_uses_inf_of_implication() {
        let mut spec = Specification::new();
        for (b, acc) in [("b1", 0.9), ("b2", 0.6)] {
            spec.assert_fact(fact("bridge", &[b])).unwrap();
            spec.assert_fuzzy_fact(fact("open", &[b]), acc).unwrap();
        }
        // forall(bridge(Y), open(Y)): inf over bridges of
        // max(1 − AC(bridge), AC(open)) = max(0, acc) → min(0.9, 0.6).
        let f = Formula::forall(
            Formula::fact(fact("bridge", &["Y"])),
            Formula::fact(fact("open", &["Y"])),
        );
        assert_eq!(ac_of(&spec, &f, &AcOptions::default()).unwrap(), Some(0.6));
    }

    #[test]
    fn derive_accuracies_generates_fuzzy_conclusions() {
        let mut spec = Specification::new();
        spec.assert_fuzzy_fact(fact("flooded", &["plain"]), 0.45)
            .unwrap();
        spec.assert_fuzzy_fact(fact("frozen", &["plain"]), 0.65)
            .unwrap();
        let rule = Rule::new(
            fact("hazard", &["X"]),
            Formula::and(
                Formula::fact(fact("flooded", &["X"])),
                Formula::fact(fact("frozen", &["X"])),
            ),
        );
        let n = derive_accuracies(&mut spec, &rule, &AcOptions::default()).unwrap();
        assert_eq!(n, 1);
        let answers = spec
            .satisfy(&Formula::FuzzyFact(
                fact("hazard", &["plain"]),
                Pat::var("A"),
            ))
            .unwrap();
        assert_eq!(answers[0].get("A").unwrap().as_f64(), Some(0.45));
        // The crisp conclusion is still not provable (§VII separation).
        assert!(!spec.provable(fact("hazard", &["plain"])).unwrap());
    }

    #[test]
    fn two_valued_degeneracy() {
        // §VII.F: "if the only two accuracies used are 0 (false) and 1
        // (true) the results are consistent with the two-valued logic."
        let mut spec = Specification::new();
        spec.assert_fuzzy_fact(fact("a", &["x"]), 1.0).unwrap();
        spec.assert_fuzzy_fact(fact("b", &["x"]), 0.0).unwrap();
        let opts = AcOptions::default();
        let and = Formula::and(
            Formula::fact(fact("a", &["x"])),
            Formula::fact(fact("b", &["x"])),
        );
        assert_eq!(ac_of(&spec, &and, &opts).unwrap(), Some(0.0));
        let or = Formula::or(
            Formula::fact(fact("a", &["x"])),
            Formula::fact(fact("b", &["x"])),
        );
        assert_eq!(ac_of(&spec, &or, &opts).unwrap(), Some(1.0));
    }
}
