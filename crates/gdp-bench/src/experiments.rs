//! E1–E16: programmatic re-execution of the paper's worked examples,
//! producing the paper-vs-measured records EXPERIMENTS.md is generated
//! from. The integration test suite asserts the same outcomes; this
//! module *reports* them.

use gdp::fuzzy::ac::{ac_of, derive_accuracies, AcOptions};
use gdp::fuzzy::{unified_fuzzy, unified_threshold_model, UnifyPolicy};
use gdp::lang::{load, query};
use gdp::prelude::*;

/// One experiment's outcome.
#[derive(Clone, Debug)]
pub struct ExperimentRecord {
    /// Experiment id, `E1`…`E16`.
    pub id: &'static str,
    /// Paper section the example comes from.
    pub section: &'static str,
    /// What is being reproduced.
    pub title: &'static str,
    /// The paper's stated/implied outcome.
    pub expected: String,
    /// What this implementation observed.
    pub observed: String,
    /// Did observed match expected?
    pub pass: bool,
}

fn pt(x: f64, y: f64) -> Pat {
    Pat::app("pt", vec![Pat::Float(x), Pat::Float(y)])
}

fn uniform(res: &str, x: f64, y: f64) -> SpaceQual {
    SpaceQual::AreaUniform {
        res: Pat::atom(res),
        at: pt(x, y),
    }
}

/// Run every experiment, in order.
pub fn run_all() -> Vec<ExperimentRecord> {
    vec![
        e01(),
        e02(),
        e03(),
        e04(),
        e05(),
        e06(),
        e07(),
        e08(),
        e09(),
        e10(),
        e11(),
        e12(),
        e13(),
        e14(),
        e15(),
        e16(),
    ]
}

fn record(
    id: &'static str,
    section: &'static str,
    title: &'static str,
    expected: &str,
    observed: String,
) -> ExperimentRecord {
    ExperimentRecord {
        id,
        section,
        title,
        expected: expected.to_string(),
        pass: observed == expected,
        observed,
    }
}

fn e01() -> ExperimentRecord {
    let mut spec = Specification::new();
    load(&mut spec, "road(s1). road(s2). road_intersection(s1, s2).").unwrap();
    let roads = query(&spec, "road(X)").unwrap().len();
    let unstated = spec.provable(FactPat::new("road").arg("s3")).unwrap();
    record(
        "E1",
        "II.B",
        "basic facts road(s1), road(s2), road_intersection(s1,s2)",
        "2 roads; unstated fact undefined",
        format!(
            "{} roads; unstated fact {}",
            roads,
            if unstated { "provable" } else { "undefined" }
        ),
    )
}

fn e02() -> ExperimentRecord {
    let mut spec = Specification::new();
    load(
        &mut spec,
        r#"
        road(s1). road(s2).
        bridge(b1, s1). bridge(b2, s1). bridge(b3, s2).
        open(b1). open(b2).
        open_road(X) :- road(X), forall(bridge(Y, X), open(Y)).
        closed(X) :- bridge(X, R), not(open(X)).
        known_status(X) :- bridge(X, R), (open(X) ; closed(X)).
        "#,
    )
    .unwrap();
    let open = query(&spec, "open_road(X)").unwrap();
    let closed = query(&spec, "closed(B)").unwrap();
    let known = query(&spec, "known_status(B)").unwrap();
    record(
        "E2",
        "III.A",
        "virtual facts: open_road (∀), closed (not), known_status (∨)",
        "open_road={s1}; closed={b3}; known_status for 3 bridges",
        format!(
            "open_road={{{}}}; closed={{{}}}; known_status for {} bridges",
            open.iter()
                .map(|a| a.get("X").unwrap().to_string())
                .collect::<Vec<_>>()
                .join(","),
            closed
                .iter()
                .map(|a| a.get("B").unwrap().to_string())
                .collect::<Vec<_>>()
                .join(","),
            known.len()
        ),
    )
}

fn e03() -> ExperimentRecord {
    let mut spec = Specification::new();
    load(&mut spec, "average_temperature(50)(saint_louis).").unwrap();
    let t = query(&spec, "average_temperature(T)(saint_louis)").unwrap();
    record(
        "E3",
        "III.B",
        "semantic-domain value: average_temperature(50)(saint_louis)",
        "T = 50",
        format!("T = {}", t[0].get("T").unwrap()),
    )
}

fn e04() -> ExperimentRecord {
    let mut spec = Specification::new();
    spec.set_sort_enforcement(SortEnforcement::Off);
    load(
        &mut spec,
        r#"
        #domain temperature float(-100, 200).
        average_temperature(45)(saint_louis).
        average_temperature(green)(saint_louis).
        constraint bad_temp(X) :-
            average_temperature(X)(Y), not(domain(temperature, X)).
        capital_of(jc, missouri). capital_of(stl, missouri).
        constraint two_capitals(Z) :-
            capital_of(X, Z), capital_of(Y, Z), X \= Y.
        "#,
    )
    .unwrap();
    let violations = spec.check_consistency().unwrap();
    let mut types: Vec<String> = violations
        .iter()
        .map(|v| v.error_type.to_string())
        .collect();
    types.sort();
    types.dedup();
    record(
        "E4",
        "III.C",
        "constraints: bad_temp(green) flagged; two-capitals law",
        "violations: bad_temp, two_capitals",
        format!("violations: {}", types.join(", ")),
    )
}

fn e05() -> ExperimentRecord {
    let mut spec = Specification::new();
    load(
        &mut spec,
        "celsius'freezing_point(0)(x). fahrenheit'freezing_point(32)(x).",
    )
    .unwrap();
    let before = query(&spec, "freezing_point(T)(x)").unwrap().len();
    spec.set_world_view(&["omega", "celsius"]).unwrap();
    let after = query(&spec, "freezing_point(T)(x)").unwrap().len();
    record(
        "E5",
        "III.D-E",
        "models & world views: celsius'freezing_point(0)(x)",
        "0 answers under omega; 1 with celsius admitted",
        format!("{before} answers under omega; {after} with celsius admitted"),
    )
}

fn e06() -> ExperimentRecord {
    let mut spec = Specification::new();
    spec.declare_object("b1");
    spec.declare_object("b2");
    spec.declare_predicate("open_status", vec![Sort::Any, Sort::Object])
        .unwrap();
    load(&mut spec, "open_status(true)(b1).").unwrap();
    let arg2 = |first: &str| {
        Pat::app(
            ".",
            vec![
                Pat::atom(first),
                Pat::app(".", vec![Pat::var("X"), Pat::Term(Term::nil())]),
            ],
        )
    };
    let h = |m: Pat, q: Pat, args: Pat| {
        Pat::app("h", vec![m, Pat::atom("any"), Pat::atom("any"), q, args])
    };
    let cwa = MetaModel::new("cwa")
        .clause(RawClause::build(
            &h(Pat::var("M"), Pat::var("Q"), arg2("false")),
            &[
                Pat::app("is_model", vec![Pat::var("M")]),
                Pat::app("is_pred", vec![Pat::var("Q")]),
                Pat::app("is_object", vec![Pat::var("X")]),
                Pat::app("not", vec![h(Pat::var("M"), Pat::var("Q"), arg2("true"))]),
            ],
        ))
        .build();
    spec.register_meta_model(cwa);
    spec.activate_meta_model("cwa").unwrap();
    let b2_false = spec
        .provable(FactPat::new("open_status").arg("false").arg("b2"))
        .unwrap();
    let b1_false = spec
        .provable(FactPat::new("open_status").arg("false").arg("b1"))
        .unwrap();
    record(
        "E6",
        "IV.A-B",
        "meta-facts: closed-world assumption over predicates/objects",
        "b2 assumed false: true; b1 negated: false",
        format!("b2 assumed false: {b2_false}; b1 negated: {b1_false}"),
    )
}

fn e07() -> ExperimentRecord {
    let mut spec = Specification::new();
    gdp::temporal::install_default(&mut spec).unwrap();
    load(&mut spec, "& 1975 dry(lakebed).").unwrap();
    let claim = FactPat::new("dry")
        .arg("lakebed")
        .time(TimeQual::IntervalUniform(IntervalPat::closed(1970, 1980)));
    let before = spec.provable(claim.clone()).unwrap();
    spec.activate_meta_model("comprehension_principle").unwrap();
    let during = spec.provable(claim.clone()).unwrap();
    spec.deactivate_meta_model("comprehension_principle")
        .unwrap();
    let after = spec.provable(claim).unwrap();
    record(
        "E7",
        "IV.C-D",
        "meta-models activate/deactivate on demand",
        "inactive: no; active: yes; deactivated: no",
        format!(
            "inactive: {}; active: {}; deactivated: {}",
            if before { "yes" } else { "no" },
            if during { "yes" } else { "no" },
            if after { "yes" } else { "no" }
        ),
    )
}

fn e08() -> ExperimentRecord {
    let (mut spec, reg) = gdp::standard_spec().unwrap();
    reg.add_grid(
        &mut spec,
        "r",
        GridResolution::square(0.0, 0.0, 1.0, 16, 16),
    )
    .unwrap();
    load(
        &mut spec,
        r#"
        @ pt(3.0, 4.0) vegetation(pine)(hill).
        @ pt(5.5, 5.5) elevation(120)(hill).
        @ pt(5.5, 6.5) elevation(90)(hill).
        @ P0 elevation_peak(Z0)(X) :-
            @ P0 elevation(Z0)(X),
            forall((@ P1 elevation(Z1)(X), dist(P0, P1, D), D < 2.0),
                   Z0 >= Z1).
        "#,
    )
    .unwrap();
    let veg = spec
        .provable(
            FactPat::new("vegetation")
                .arg("pine")
                .arg("hill")
                .at(pt(3.0, 4.0)),
        )
        .unwrap();
    let peaks = query(&spec, "@ P elevation_peak(Z)(hill)").unwrap();
    record(
        "E8",
        "V.C",
        "simple spatial operator; elevation-peak definition",
        "@p vegetation: true; peaks: 120",
        format!(
            "@p vegetation: {}; peaks: {}",
            veg,
            peaks
                .iter()
                .map(|a| a.get("Z").unwrap().to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
    )
}

fn e09() -> ExperimentRecord {
    let (mut spec, reg) = gdp::standard_spec().unwrap();
    reg.add_grid(
        &mut spec,
        "r1",
        GridResolution::square(0.0, 0.0, 10.0, 4, 4),
    )
    .unwrap();
    reg.add_grid(&mut spec, "r2", GridResolution::square(0.0, 0.0, 5.0, 8, 8))
        .unwrap();
    spec.assert_fact(
        FactPat::new("vegetation")
            .arg("pine")
            .arg("land")
            .space(uniform("r1", 5.0, 5.0)),
    )
    .unwrap();
    let at_point = spec
        .provable(
            FactPat::new("vegetation")
                .arg("pine")
                .arg("land")
                .at(pt(2.0, 8.0)),
        )
        .unwrap();
    let finer = spec
        .provable(
            FactPat::new("vegetation")
                .arg("pine")
                .arg("land")
                .space(uniform("r2", 7.5, 2.5)),
        )
        .unwrap();
    spec.activate_meta_model("spatial_uniform_acquisition")
        .unwrap();
    for (x, y) in [(12.5, 2.5), (17.5, 2.5), (12.5, 7.5), (17.5, 7.5)] {
        spec.assert_fact(FactPat::new("soil").arg("clay").space(uniform("r2", x, y)))
            .unwrap();
    }
    let acquired = spec
        .provable(
            FactPat::new("soil")
                .arg("clay")
                .space(uniform("r1", 15.0, 5.0)),
        )
        .unwrap();
    record(
        "E9",
        "V.C",
        "area-uniform: point + subarea inheritance, acquisition",
        "point: true; finer patch: true; acquisition: true",
        format!("point: {at_point}; finer patch: {finer}; acquisition: {acquired}"),
    )
}

fn e10() -> ExperimentRecord {
    let (mut spec, reg) = gdp::standard_spec().unwrap();
    reg.add_grid(
        &mut spec,
        "map",
        GridResolution::square(0.0, 0.0, 10.0, 4, 4),
    )
    .unwrap();
    spec.assert_fact(FactPat::new("road").arg("rc").at(pt(13.0, 7.0)))
        .unwrap();
    let hit = spec
        .provable(
            FactPat::new("road")
                .arg("rc")
                .space(SpaceQual::AreaSampled {
                    res: Pat::atom("map"),
                    at: pt(15.0, 5.0),
                }),
        )
        .unwrap();
    let miss = spec
        .provable(
            FactPat::new("road")
                .arg("rc")
                .space(SpaceQual::AreaSampled {
                    res: Pat::atom("map"),
                    at: pt(35.0, 5.0),
                }),
        )
        .unwrap();
    record(
        "E10",
        "V.C",
        "area-sampled: sub-resolution road still drawn",
        "containing patch: true; other patch: false",
        format!("containing patch: {hit}; other patch: {miss}"),
    )
}

fn e11() -> ExperimentRecord {
    let (mut spec, reg) = gdp::standard_spec().unwrap();
    reg.add_grid(
        &mut spec,
        "r1",
        GridResolution::square(0.0, 0.0, 20.0, 2, 2),
    )
    .unwrap();
    reg.add_grid(
        &mut spec,
        "r2",
        GridResolution::square(0.0, 0.0, 10.0, 4, 4),
    )
    .unwrap();
    for ((x, y), z) in [(5.0, 5.0), (15.0, 5.0), (5.0, 15.0), (15.0, 15.0)]
        .iter()
        .zip([100.0, 200.0, 300.0, 400.0])
    {
        spec.assert_fact(
            FactPat::new("elevation")
                .arg(Pat::Float(z))
                .arg("land")
                .space(uniform("r2", *x, *y)),
        )
        .unwrap();
    }
    let answers = spec
        .query(
            FactPat::new("elevation")
                .arg("Z")
                .arg("land")
                .space(SpaceQual::AreaAveraged {
                    res: Pat::atom("r1"),
                    at: pt(10.0, 10.0),
                }),
        )
        .unwrap();
    record(
        "E11",
        "V.C",
        "area-averaged elevation over subpatches",
        "avg = 250",
        format!(
            "avg = {}",
            answers
                .first()
                .and_then(|a| a.get("Z").and_then(Term::as_f64))
                .map(|z| format!("{z:.0}"))
                .unwrap_or_else(|| "none".into())
        ),
    )
}

fn e12() -> ExperimentRecord {
    use gdp::spatial::abstraction::{abstraction_meta_model, compose_rule, threshold_copy_rule};
    let (mut spec, reg) = gdp::standard_spec().unwrap();
    reg.add_grid(
        &mut spec,
        "r1",
        GridResolution::square(0.0, 0.0, 10.0, 4, 4),
    )
    .unwrap();
    reg.add_grid(&mut spec, "r2", GridResolution::square(0.0, 0.0, 5.0, 8, 8))
        .unwrap();
    spec.register_meta_model(abstraction_meta_model(
        "map_gen",
        vec![
            threshold_copy_rule("island", "r2", "r1", 2),
            compose_rule("lake", "shore", "shore_line", "r2", "r1"),
        ],
    ));
    spec.activate_meta_model("map_gen").unwrap();
    for (x, y) in [(2.5, 2.5), (7.5, 2.5), (2.5, 7.5)] {
        spec.assert_fact(FactPat::new("island").arg("big").space(uniform("r2", x, y)))
            .unwrap();
    }
    spec.assert_fact(
        FactPat::new("island")
            .arg("small")
            .space(uniform("r2", 22.5, 2.5)),
    )
    .unwrap();
    spec.assert_fact(
        FactPat::new("lake")
            .arg("erie")
            .space(uniform("r2", 32.5, 32.5)),
    )
    .unwrap();
    spec.assert_fact(
        FactPat::new("shore")
            .arg("erie")
            .space(uniform("r2", 37.5, 32.5)),
    )
    .unwrap();
    let big = spec
        .provable(
            FactPat::new("island")
                .arg("big")
                .space(uniform("r1", 5.0, 5.0)),
        )
        .unwrap();
    let small = spec
        .provable(
            FactPat::new("island")
                .arg("small")
                .space(uniform("r1", 25.0, 5.0)),
        )
        .unwrap();
    let shoreline = spec
        .provable(
            FactPat::new("shore_line")
                .arg("erie")
                .space(uniform("r1", 35.0, 35.0)),
        )
        .unwrap();
    record(
        "E12",
        "V.D",
        "abstraction: island thresholding + shore-line composition",
        "big kept: true; small kept: false; shore_line: true",
        format!("big kept: {big}; small kept: {small}; shore_line: {shoreline}"),
    )
}

fn e13() -> ExperimentRecord {
    let mut spec = Specification::new();
    gdp::temporal::install_default(&mut spec).unwrap();
    spec.set_now(1990.0);
    let past = spec
        .prove_goal(Term::pred("past", vec![Term::int(1971)]))
        .unwrap();
    let present = spec
        .prove_goal(Term::pred("present", vec![Term::int(1971)]))
        .unwrap();
    spec.activate_meta_model("continuity_assumption").unwrap();
    load(
        &mut spec,
        "& 1970 status(open)(b1). & 1980 status(closed)(b1).",
    )
    .unwrap();
    let persisted = spec
        .provable(
            FactPat::new("status")
                .arg("open")
                .arg("b1")
                .time(TimeQual::At(Pat::Int(1975))),
        )
        .unwrap();
    record(
        "E13",
        "VI.B",
        "temporal models: past(1971) in 1990; continuity assumption",
        "past(1971): true; present(1971): false; open@1975 via continuity: true",
        format!(
            "past(1971): {past}; present(1971): {present}; open@1975 via continuity: {persisted}"
        ),
    )
}

fn e14() -> ExperimentRecord {
    let mut spec = Specification::new();
    spec.assert_fuzzy_fact(FactPat::new("flooded").arg("plain"), 0.45)
        .unwrap();
    spec.assert_fuzzy_fact(FactPat::new("frozen").arg("plain"), 0.65)
        .unwrap();
    let conj = ac_of(
        &spec,
        &Formula::and(
            Formula::fact(FactPat::new("flooded").arg("plain")),
            Formula::fact(FactPat::new("frozen").arg("plain")),
        ),
        &AcOptions::default(),
    )
    .unwrap();
    load(
        &mut spec,
        r#"
        pixel(x1). pixel(x2). pixel(x3). pixel(x4). pixel(x5).
        cloudy(x2). cloudy(x5).
        %A clarity(image) :-
            card(cloudy(P), N), card(pixel(P2), N0), A is 1 - N / N0.
        "#,
    )
    .unwrap();
    let clarity = spec
        .satisfy(&Formula::FuzzyFact(
            FactPat::new("clarity").arg("image"),
            Pat::var("A"),
        ))
        .unwrap();
    record(
        "E14",
        "VII.A-B",
        "min-max rule (flooded ∧ frozen); clarity via card",
        "conjunction = 0.45; clarity = 0.6",
        format!(
            "conjunction = {}; clarity = {}",
            conj.map(|v| format!("{v}"))
                .unwrap_or_else(|| "failure".into()),
            clarity[0].get("A").unwrap()
        ),
    )
}

fn e15() -> ExperimentRecord {
    let mut spec = Specification::new();
    spec.assert_fuzzy_fact(FactPat::new("passable").arg("ford"), 0.9)
        .unwrap();
    spec.assert_fuzzy_fact(FactPat::new("passable").arg("ford"), 0.5)
        .unwrap();
    let ignored = spec.provable(FactPat::new("passable").arg("ford")).unwrap();
    spec.declare_model("m");
    spec.register_meta_model(unified_fuzzy(UnifyPolicy::Max));
    spec.register_meta_model(unified_threshold_model("ut75", "m", 0.75));
    spec.activate_meta_model("unified_fuzzy_max").unwrap();
    spec.activate_meta_model("ut75").unwrap();
    spec.set_world_view(&["omega", "m"]).unwrap();
    let promoted = spec.provable(FactPat::new("passable").arg("ford")).unwrap();
    spec.assert_fuzzy_fact(FactPat::new("clarity").arg("img7"), 0.6)
        .unwrap();
    spec.constrain(Constraint::new("bad_image").witness("X").when(Formula::and(
        Formula::FuzzyFact(FactPat::new("clarity").arg("X"), Pat::var("A")),
        Formula::Cmp(CmpOp::Lt, Pat::var("A"), Pat::Float(0.8)),
    )))
    .unwrap();
    let flagged = spec
        .check_consistency()
        .unwrap()
        .iter()
        .any(|v| v.error_type == Term::atom("bad_image"));
    record(
        "E15",
        "VII.C-E",
        "ignoring accuracy; unified %[A] threshold; fuzzy constraint",
        "ignored: false; promoted (max 0.9 > 0.75): true; bad_image flagged: true",
        format!("ignored: {ignored}; promoted (max 0.9 > 0.75): {promoted}; bad_image flagged: {flagged}"),
    )
}

fn e16() -> ExperimentRecord {
    let mut spec = Specification::new();
    for (obj, f, z) in [("plain", 0.45, 0.65), ("valley", 1.0, 0.0)] {
        spec.assert_fuzzy_fact(FactPat::new("flooded").arg(obj), f)
            .unwrap();
        spec.assert_fuzzy_fact(FactPat::new("frozen").arg(obj), z)
            .unwrap();
    }
    let rule = Rule::new(
        FactPat::new("hazard").arg("X"),
        Formula::and(
            Formula::fact(FactPat::new("flooded").arg("X")),
            Formula::fact(FactPat::new("frozen").arg("X")),
        ),
    );
    derive_accuracies(&mut spec, &rule, &AcOptions::default()).unwrap();
    let acc = |obj: &str| {
        spec.satisfy(&Formula::FuzzyFact(
            FactPat::new("hazard").arg(obj),
            Pat::var("A"),
        ))
        .unwrap()[0]
            .get("A")
            .unwrap()
            .as_f64()
            .unwrap()
    };
    record(
        "E16",
        "VII.F",
        "AC propagation: %A hazard mechanically generated",
        "hazard(plain) = 0.45; hazard(valley) = 0 (two-valued degeneracy)",
        format!(
            "hazard(plain) = {}; hazard(valley) = {} (two-valued degeneracy)",
            acc("plain"),
            acc("valley")
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_passes() {
        for r in run_all() {
            assert!(
                r.pass,
                "{} ({}): expected `{}`, observed `{}`",
                r.id, r.title, r.expected, r.observed
            );
        }
    }
}
