//! Shared workload builders for the B1–B10 benchmarks.
//!
//! Every builder is deterministic so Criterion's repeated runs measure the
//! same work.

use gdp::prelude::*;

/// B1/B3/B10: `n` ground facts `site(s<i>, <i>)`.
pub fn fact_base(n: usize, indexing: bool) -> Specification {
    let mut spec = Specification::new();
    spec.kb_mut().set_indexing(indexing);
    for i in 0..n {
        spec.assert_fact(
            FactPat::new("site")
                .arg(Pat::Atom(format!("s{i}")))
                .arg(Pat::Int(i as i64)),
        )
        .expect("ground fact");
    }
    spec
}

/// B2: a linear rule chain `level0 … level<d>` over a small fact base.
/// Querying `level<d>(X)` forces `d` resolution steps per answer.
pub fn inference_chain(depth: usize, facts: usize) -> Specification {
    let mut spec = Specification::new();
    for i in 0..facts {
        spec.assert_fact(FactPat::new("level0").arg(Pat::Atom(format!("o{i}"))))
            .expect("ground fact");
    }
    for d in 1..=depth {
        spec.define(Rule::new(
            FactPat::new(&format!("level{d}")).arg("X"),
            Formula::fact(FactPat::new(&format!("level{}", d - 1)).arg("X")),
        ))
        .expect("safe rule");
    }
    spec
}

/// B4: `roads` roads with `bridges_per_road` bridges each; on open roads
/// every bridge is open, on the rest the last bridge is closed. Includes
/// the paper's `open_road`/`closed` rules.
pub fn bridge_world(roads: usize, bridges_per_road: usize) -> Specification {
    let mut spec = Specification::new();
    let mut bridge_id = 0;
    for r in 0..roads {
        let rname = format!("r{r}");
        spec.assert_fact(FactPat::new("road").arg(Pat::Atom(rname.clone())))
            .expect("ground fact");
        let all_open = r % 2 == 0;
        for b in 0..bridges_per_road {
            let bname = format!("b{bridge_id}");
            bridge_id += 1;
            spec.assert_fact(
                FactPat::new("bridge")
                    .arg(Pat::Atom(bname.clone()))
                    .arg(Pat::Atom(rname.clone())),
            )
            .expect("ground fact");
            if all_open || b + 1 < bridges_per_road {
                spec.assert_fact(FactPat::new("open").arg(Pat::Atom(bname)))
                    .expect("ground fact");
            }
        }
    }
    gdp::lang::load(
        &mut spec,
        r#"
        open_road(X) :- road(X), forall(bridge(Y, X), open(Y)).
        closed(X) :- bridge(X, R), not(open(X)).
        "#,
    )
    .expect("paper rules");
    spec
}

/// B5/B6: a two-resolution spatial world with `g × g` fine patches (cell
/// size 1) and `g/4 × g/4` coarse patches, `coverage` of the fine grid
/// filled with `zone(wet)` facts.
pub fn spatial_world(g: u32) -> (Specification, SpatialRegistry) {
    assert!(g % 4 == 0, "g must be divisible by 4");
    let (mut spec, reg) = gdp::standard_spec().expect("standard spec");
    reg.add_grid(
        &mut spec,
        "fine",
        GridResolution::square(0.0, 0.0, 1.0, g, g),
    )
    .expect("fine grid");
    reg.add_grid(
        &mut spec,
        "coarse",
        GridResolution::square(0.0, 0.0, 4.0, g / 4, g / 4),
    )
    .expect("coarse grid");
    for j in 0..g {
        for i in 0..g {
            // A diagonal band of wet patches: ~half coverage.
            if (i + j) % 2 == 0 {
                spec.assert_fact(
                    FactPat::new("zone")
                        .arg("wet")
                        .space(SpaceQual::AreaUniform {
                            res: Pat::atom("fine"),
                            at: Pat::app(
                                "pt",
                                vec![
                                    Pat::Float(f64::from(i) + 0.5),
                                    Pat::Float(f64::from(j) + 0.5),
                                ],
                            ),
                        }),
                )
                .expect("ground fact");
            }
        }
    }
    (spec, reg)
}

/// B7: one object with `h` timestamped status assertions (alternating
/// values) and the continuity assumption active.
pub fn temporal_history(h: usize) -> Specification {
    let mut spec = Specification::new();
    gdp::temporal::install_default(&mut spec).expect("temporal layer");
    spec.activate_meta_model("continuity_assumption")
        .expect("registered");
    for t in 0..h {
        let value = if t % 2 == 0 { "open" } else { "closed" };
        spec.assert_fact(
            FactPat::new("status")
                .arg(value)
                .arg("b1")
                .time(TimeQual::At(Pat::Int(t as i64 * 10))),
        )
        .expect("ground fact");
    }
    spec
}

/// B8: `n` objects with fuzzy premises and the crisp/fuzzy rule pair used
/// to compare plain inference against AC propagation.
pub fn fuzzy_world(n: usize) -> Specification {
    let mut spec = Specification::new();
    for i in 0..n {
        let obj = format!("o{i}");
        let acc = 0.5 + 0.4 * ((i % 10) as f64) / 10.0;
        spec.assert_fuzzy_fact(FactPat::new("flooded").arg(Pat::Atom(obj.clone())), acc)
            .expect("fuzzy fact");
        spec.assert_fuzzy_fact(FactPat::new("frozen").arg(Pat::Atom(obj)), 1.0 - acc / 2.0)
            .expect("fuzzy fact");
        // Crisp twins for the baseline.
        let obj = format!("o{i}");
        spec.assert_fact(FactPat::new("cflooded").arg(Pat::Atom(obj.clone())))
            .expect("ground fact");
        spec.assert_fact(FactPat::new("cfrozen").arg(Pat::Atom(obj)))
            .expect("ground fact");
    }
    gdp::lang::load(&mut spec, "chazard(X) :- cflooded(X), cfrozen(X).").expect("crisp rule");
    spec
}

/// B9: `m` models, each holding `facts_per_model` facts.
pub fn model_world(m: usize, facts_per_model: usize) -> Specification {
    let mut spec = Specification::new();
    for model in 0..m {
        let mname = format!("m{model}");
        spec.declare_model(&mname);
        for i in 0..facts_per_model {
            spec.assert_fact(
                FactPat::new("datum")
                    .arg(Pat::Atom(format!("d{model}_{i}")))
                    .model(Pat::Atom(mname.clone())),
            )
            .expect("ground fact");
        }
    }
    spec
}

/// T11: `models` survey models, each holding `readings` integer readings
/// and a model-scoped pair constraint over them. The world view activates
/// every model, so a full audit has one independent, equally-sized
/// error-derivation per member — the workload the parallel audit
/// distributes across workers.
///
/// Each model plants exactly one violating pair (the readings `0` and
/// `readings - 1` are `readings - 1` apart), so the audit must do the full
/// quadratic pair scan *and* its answer count is checkable.
pub fn audit_world(models: usize, readings: usize) -> Specification {
    let mut spec = Specification::new();
    let mut view: Vec<String> = vec!["omega".to_string()];
    for m in 0..models {
        let mname = format!("m{m}");
        spec.declare_model(&mname);
        view.push(mname.clone());
        for i in 0..readings {
            spec.assert_fact(
                FactPat::new("reading")
                    .arg(Pat::Atom(format!("o{m}_{i}")))
                    .arg(Pat::Int(i as i64))
                    .model(Pat::Atom(mname.clone())),
            )
            .expect("ground fact");
        }
        spec.constrain(
            Constraint::new("reading_gap")
                .model(Pat::Atom(mname.clone()))
                .witness(Pat::var("X"))
                .witness(Pat::var("Y"))
                .when(Formula::all(vec![
                    Formula::fact(
                        FactPat::new("reading")
                            .arg(Pat::var("X"))
                            .arg(Pat::var("V1"))
                            .model(Pat::Atom(mname.clone())),
                    ),
                    Formula::fact(
                        FactPat::new("reading")
                            .arg(Pat::var("Y"))
                            .arg(Pat::var("V2"))
                            .model(Pat::Atom(mname.clone())),
                    ),
                    Formula::Cmp(CmpOp::Lt, Pat::var("V1"), Pat::var("V2")),
                    Formula::Cmp(
                        CmpOp::NumEq,
                        Pat::var("V2"),
                        Pat::app("+", vec![Pat::var("V1"), Pat::Int(readings as i64 - 1)]),
                    ),
                ])),
        )
        .expect("safe constraint");
    }
    let view_refs: Vec<&str> = view.iter().map(String::as_str).collect();
    spec.set_world_view(&view_refs).expect("declared models");
    spec
}

/// T13: one streaming revision against [`audit_world`] — a transaction
/// asserting a fresh reading into `model`, committed, returning the delta
/// that drives `audit_incremental`. The value is chosen so the revision
/// never completes a `reading_gap` pair (all revised values sit below
/// `-readings`, and successive revisions differ by multiples of
/// `readings`): the violation count stays at one per model no matter how
/// many revisions stream in, which keeps repeated benchmark iterations
/// measuring identical work.
pub fn streaming_revision(
    spec: &mut Specification,
    model: usize,
    readings: usize,
    seq: usize,
) -> gdp::engine::Delta {
    spec.begin_txn().expect("no transaction open");
    spec.assert_fact(
        FactPat::new("reading")
            .arg(Pat::Atom(format!("u{model}_{seq}")))
            .arg(Pat::Int(-((seq as i64 + 1) * readings as i64)))
            .model(Pat::Atom(format!("m{model}"))),
    )
    .expect("ground fact");
    spec.commit_txn().expect("transaction open")
}

/// T15: recursive reachability over a gdp-datagen river network.
///
/// Traces `count` rivers over a deterministic 192×192 terrain and asserts
/// the deduplicated downhill steps as `edge(c<i>_<j>, c<i'>_<j'>)` facts —
/// acyclic by construction, since every river step strictly descends — then
/// defines `reach/2` recursively. `left_recursive` picks the formulation:
/// `reach(X,Y) :- reach(X,Z), edge(Z,Y)` terminates only under SLG, while
/// the right-recursive `reach(X,Y) :- edge(X,Z), reach(Z,Y)` terminates
/// under plain SLD too, at repeated-subgoal cost. Returns the edge list so
/// callers can build an independent reference closure.
///
/// Specification-level queries route through the `visible`/`h` meta
/// layer, so the recursion is only visible to the tabling engine at the
/// meta-predicate level: callers wanting SLG must enable
/// [`Specification::set_table_all`], not just nominate `reach/2`.
pub fn river_reachability(
    count: usize,
    left_recursive: bool,
) -> (Specification, Vec<(String, String)>) {
    let terrain = gdp_datagen::Terrain::generate(gdp_datagen::TerrainConfig {
        width: 192,
        height: 192,
        ..gdp_datagen::TerrainConfig::default()
    });
    let cell = |(i, j): (u32, u32)| format!("c{i}_{j}");
    let mut edges: Vec<(String, String)> = Vec::new();
    for river in terrain.rivers(count) {
        for w in river.windows(2) {
            edges.push((cell(w[0]), cell(w[1])));
        }
        // Braid the channel: every step also bridges two cells ahead.
        // Still acyclic (strictly downhill), but now a pair of cells is
        // joined by a path count that grows like a Fibonacci sequence in
        // the channel length — the regime where SLD re-derives each
        // `reach` subgoal once per path while SLG derives it once, full
        // stop.
        for i in 0..river.len().saturating_sub(2) {
            edges.push((cell(river[i]), cell(river[i + 2])));
        }
    }
    edges.sort();
    edges.dedup();
    let mut spec = Specification::new();
    for (a, b) in &edges {
        spec.assert_fact(
            FactPat::new("edge")
                .arg(Pat::Atom(a.clone()))
                .arg(Pat::Atom(b.clone())),
        )
        .expect("ground fact");
    }
    let rules = if left_recursive {
        r#"
        reach(X, Y) :- reach(X, Z), edge(Z, Y).
        reach(X, Y) :- edge(X, Y).
        "#
    } else {
        r#"
        reach(X, Y) :- edge(X, Z), reach(Z, Y).
        reach(X, Y) :- edge(X, Y).
        "#
    };
    gdp::lang::load(&mut spec, rules).expect("reach rules");
    (spec, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact_base_counts() {
        let spec = fact_base(100, true);
        assert_eq!(
            spec.query(FactPat::new("site").arg("X").arg("N"))
                .unwrap()
                .len(),
            100
        );
    }

    #[test]
    fn inference_chain_derives_at_depth() {
        let spec = inference_chain(8, 3);
        assert_eq!(
            spec.query(FactPat::new("level8").arg("X")).unwrap().len(),
            3
        );
    }

    #[test]
    fn bridge_world_half_open() {
        let spec = bridge_world(10, 3);
        assert_eq!(
            spec.query(FactPat::new("open_road").arg("X"))
                .unwrap()
                .len(),
            5
        );
        assert_eq!(
            spec.query(FactPat::new("closed").arg("X")).unwrap().len(),
            5
        );
    }

    #[test]
    fn spatial_world_answers_point_queries() {
        let (spec, _reg) = spatial_world(8);
        assert!(spec
            .provable(
                FactPat::new("zone")
                    .arg("wet")
                    .at(Pat::app("pt", vec![Pat::Float(0.7), Pat::Float(0.2)]))
            )
            .unwrap());
    }

    #[test]
    fn temporal_history_supports_interval_queries() {
        let spec = temporal_history(10);
        assert!(spec
            .provable(
                FactPat::new("status")
                    .arg("open")
                    .arg("b1")
                    .time(TimeQual::At(Pat::Int(5)))
            )
            .unwrap());
    }

    #[test]
    fn fuzzy_world_has_both_relations() {
        let spec = fuzzy_world(5);
        assert_eq!(
            spec.query(FactPat::new("chazard").arg("X")).unwrap().len(),
            5
        );
        assert!(!spec.provable(FactPat::new("flooded").arg("o0")).unwrap());
    }

    #[test]
    fn audit_world_plants_one_violation_per_model() {
        let spec = audit_world(4, 20);
        let violations = spec.check_consistency().unwrap();
        assert_eq!(violations.len(), 4);
        let report = spec.audit_world_views(4).unwrap();
        assert_eq!(report.violations, violations);
    }

    #[test]
    fn streaming_revision_keeps_violation_count_stable() {
        let mut spec = audit_world(3, 12);
        spec.set_incremental(true);
        let full = spec.audit_world_views(2).unwrap();
        assert_eq!(full.violations.len(), 3);
        for seq in 0..3 {
            let delta = streaming_revision(&mut spec, seq % 3, 12, seq);
            assert!(!delta.is_empty());
            let report = spec.audit_incremental(&delta, 2).unwrap();
            assert_eq!(report.violations.len(), 3, "revision {seq} changed answers");
            assert_eq!(report.violations, spec.check_consistency().unwrap());
        }
    }

    #[test]
    fn river_reachability_closures_agree() {
        use std::collections::BTreeSet;
        for left in [false, true] {
            let (mut spec, edges) = river_reachability(2, left);
            assert!(!edges.is_empty());
            spec.set_budget(5_000_000, 512);
            spec.enable_tabling(true);
            spec.set_table_all(true);
            let mut reference: BTreeSet<(String, String)> = BTreeSet::new();
            let nodes: BTreeSet<&String> = edges.iter().flat_map(|(a, b)| [a, b]).collect();
            for start in nodes {
                let mut frontier = vec![start];
                let mut seen: BTreeSet<&String> = BTreeSet::new();
                while let Some(node) = frontier.pop() {
                    for (a, b) in &edges {
                        if a == node && seen.insert(b) {
                            frontier.push(b);
                        }
                    }
                }
                reference.extend(seen.into_iter().map(|end| (start.clone(), end.clone())));
            }
            let engine: BTreeSet<(String, String)> = spec
                .query(FactPat::new("reach").arg("X").arg("Y"))
                .expect("reach query")
                .iter()
                .map(|ans| {
                    (
                        ans.get("X").expect("X bound").to_string(),
                        ans.get("Y").expect("Y bound").to_string(),
                    )
                })
                .collect();
            assert_eq!(engine, reference, "left={left}");
        }
    }

    #[test]
    fn model_world_respects_views() {
        let mut spec = model_world(3, 4);
        assert!(spec
            .query(FactPat::new("datum").arg("X"))
            .unwrap()
            .is_empty());
        spec.set_world_view(&["omega", "m0", "m1"]).unwrap();
        assert_eq!(spec.query(FactPat::new("datum").arg("X")).unwrap().len(), 8);
    }
}
