//! # gdp-bench — experiment runner and benchmark harness
//!
//! The paper has no measurement tables; its evaluation is the set of
//! worked examples plus the existence of the prototype. This crate
//! regenerates both "sides" of our reproduction:
//!
//! * [`experiments`] — E1–E16, the paper's worked examples, each reporting
//!   the paper's stated outcome next to the observed one (the
//!   `experiments` binary writes EXPERIMENTS.md);
//! * `benches/` — B1–B10, the performance characterization quantifying the
//!   paper's qualitative claims (Prolog-style inference cost, indexing,
//!   operator cascades, fuzzy overhead).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod workloads;
