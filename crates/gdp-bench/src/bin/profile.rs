//! gdp-profile — a per-predicate breakdown of the audit workloads.
//!
//! Runs the T11 synthetic world-view audit workload and (when the corpus
//! is reachable) the Missouri specification's consistency check with the
//! engine profiler attached, and prints the hot-predicate tables backing
//! the T12 section of EXPERIMENTS.md:
//!
//! ```text
//! $ cargo run --release -p gdp-bench --bin gdp-profile
//! ```

use gdp::core::Specification;
use gdp_bench::workloads::audit_world;

fn profile_consistency(label: &str, spec: &mut Specification) {
    spec.set_profile(true);
    spec.reset_profile();
    let violations = spec.check_consistency().expect("consistency audit");
    let stats = spec.solver_stats();
    let prof = spec.profile();
    println!("== {label} ==");
    println!(
        "{} violation(s); {} steps, {} clause resolutions",
        violations.len(),
        stats.steps,
        stats.resolutions
    );
    assert_eq!(
        prof.total_steps(),
        stats.steps,
        "profiler must account for every solver step"
    );
    print!("{}", prof.render());
    let (consults, hash_hits, range_hits, pruned, scans) =
        spec.kb()
            .index_stats()
            .iter()
            .fold((0, 0, 0, 0, 0), |(c, h, r, p, s), rep| {
                (
                    c + rep.consults,
                    h + rep.hash_hits,
                    r + rep.range_hits,
                    p + rep.pruned,
                    s + rep.scans,
                )
            });
    println!(
        "indexes: {consults} consults, {hash_hits} hash hits, {range_hits} range hits, \
         {pruned} clauses pruned, {scans} full scans"
    );
    println!();
}

fn main() {
    let mut synthetic = audit_world(8, 120);
    profile_consistency(
        "T12a synthetic audit workload (8 models x 120 readings)",
        &mut synthetic,
    );

    let missouri = ["specs/missouri.gdp", "../../specs/missouri.gdp"]
        .into_iter()
        .map(std::path::PathBuf::from)
        .find(|p| p.is_file());
    match missouri {
        Some(path) => {
            let source = std::fs::read_to_string(&path).expect("read missouri.gdp");
            let (mut spec, reg) = gdp::standard_spec().expect("standard spec");
            gdp::lang::Loader::with_spatial(&mut spec, &reg)
                .load_str(&source)
                .expect("load missouri.gdp");
            profile_consistency("T12b specs/missouri.gdp consistency audit", &mut spec);
        }
        None => println!("specs/missouri.gdp not found; skipping the corpus profile"),
    }
}
