//! Regenerate EXPERIMENTS.md's correctness table from live runs of E1–E16.
//!
//! Usage: `cargo run -p gdp-bench --bin experiments [-- --write PATH]`
//! Without `--write`, prints the markdown table to stdout.

use gdp_bench::experiments::run_all;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let write_path = args
        .iter()
        .position(|a| a == "--write")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let records = run_all();
    let mut out = String::new();
    out.push_str("| id | § | example | paper outcome | observed | match |\n");
    out.push_str("|----|---|---------|---------------|----------|-------|\n");
    let mut passes = 0;
    for r in &records {
        if r.pass {
            passes += 1;
        }
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            r.id,
            r.section,
            r.title,
            r.expected,
            r.observed,
            if r.pass { "yes" } else { "**NO**" }
        ));
    }
    out.push_str(&format!(
        "\n{passes}/{} experiments match the paper's stated outcomes.\n",
        records.len()
    ));

    match write_path {
        Some(path) => {
            std::fs::write(&path, &out).expect("write experiment table");
            eprintln!("wrote {path} ({passes}/{} pass)", records.len());
        }
        None => print!("{out}"),
    }
    if passes != records.len() {
        std::process::exit(1);
    }
}
