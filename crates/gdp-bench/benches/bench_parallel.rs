//! T11 — parallel world-view audit and batch solving: wall-clock scaling
//! of `Specification::audit_world_views` and `ParallelSolver::solve_batch`
//! over 1/2/4/8 workers.
//!
//! The audit workload (`audit_world`) gives every world-view member an
//! equally-sized, independent error derivation (a quadratic pair scan per
//! model), so the per-model goals the audit fans out are a balanced batch:
//! the speedup at `w` workers approaches `min(w, models)` minus the merge
//! and thread-spawn overhead. The batch workload stresses the same
//! machinery on plain engine goals (transitive closure over a chain).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdp::prelude::*;
use gdp_bench::workloads::audit_world;

fn bench_audit_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("T11_parallel_audit");
    group.sample_size(10);
    let spec = audit_world(8, 120);
    // Baseline: the sequential checker the audit must agree with.
    let expected = spec.check_consistency().expect("sequential audit");
    assert_eq!(expected.len(), 8, "one planted violation per model");
    group.bench_function("sequential_check", |b| {
        b.iter(|| {
            let violations = spec.check_consistency().unwrap();
            assert_eq!(violations.len(), 8);
        });
    });
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("audit", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let report = spec.audit_world_views(workers).unwrap();
                    assert_eq!(report.violations.len(), 8);
                });
            },
        );
    }
    group.finish();
}

fn bench_batch_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("T11_parallel_batch");
    group.sample_size(10);
    // A chain graph: t/2 reachability from node i enumerates the whole
    // suffix, so earlier-rooted goals are more expensive — a deliberately
    // *unbalanced* batch that exercises the work-stealing cursor.
    let mut kb = KnowledgeBase::new();
    let (x, y, z) = (Term::var(0), Term::var(1), Term::var(2));
    kb.assert_clause(
        Term::pred("t", vec![x.clone(), y.clone()]),
        Term::or(
            Term::pred("e", vec![x.clone(), y.clone()]),
            Term::and(
                Term::pred("e", vec![x.clone(), z.clone()]),
                Term::pred("t", vec![z, y]),
            ),
        ),
    );
    let n = 160usize;
    for i in 0..n - 1 {
        kb.assert_fact(Term::pred(
            "e",
            vec![
                Term::atom(&format!("n{i}")),
                Term::atom(&format!("n{}", i + 1)),
            ],
        ));
    }
    let goals: Vec<Term> = (0..32)
        .map(|i| Term::pred("t", vec![Term::atom(&format!("n{}", i * 4)), Term::var(0)]))
        .collect();
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("solve_batch", workers),
            &workers,
            |b, &workers| {
                let par = ParallelSolver::new(&kb, workers);
                b.iter(|| {
                    let results = par.solve_batch(&goals);
                    assert!(results.iter().all(|r| r.is_ok()));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_audit_scaling, bench_batch_scaling);
criterion_main!(benches);
