//! T16 — serving & durability: what does MVCC snapshotting cost the
//! writer, and what does a concurrent writer cost the readers?
//!
//! The workload is `audit_world(8, 40)` behind a [`SpecStore`]: eight
//! survey models plus omega, each member an independent quadratic pair
//! scan. Two questions, each isolated by the other side's load:
//!
//! * **Sustained commit throughput** — one writer streams single-fact
//!   transactions through `SpecStore::commit` while 0 vs 4 reader
//!   threads continuously pin head snapshots and audit them. Snapshots
//!   are O(#predicates) pointer copies and readers never take the write
//!   lock during solving, so the 4-reader column should price only the
//!   brief `RwLock` handoff, not the readers' audit work.
//! * **Concurrent-reader audit latency** — pin-plus-audit measured on a
//!   quiescent store vs under a writer churning commits. The churn
//!   writer alternates assert/retract of the same reading so the store
//!   stays the same size and iterations measure identical work.
//!
//! Durability is priced separately (`wal` column): the same commit
//! stream with a write-ahead log attached, fsync per commit — the gap
//! between the two columns is exactly the durability tax.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdp::core::{DurabilityOptions, FactPat, Pat, SpecError, SpecStore};
use gdp_bench::workloads::audit_world;

const MODELS: usize = 8;
const READINGS: usize = 40;

/// Commit one fresh, never-violating reading into model 0 (values sit
/// far below every existing reading, mirroring `streaming_revision`).
fn commit_reading(store: &SpecStore, seq: usize) {
    let (_, _) = store
        .commit(|spec| {
            spec.assert_fact(
                FactPat::new("reading")
                    .arg(Pat::Atom(format!("w0_{seq}")))
                    .arg(Pat::Int(-((seq as i64 + 2) * READINGS as i64)))
                    .model(Pat::Atom("m0".to_string())),
            )
        })
        .expect("commit");
}

/// Commit the retraction of that same reading.
fn retract_reading(store: &SpecStore, seq: usize) {
    store
        .commit(|spec| {
            spec.retract_fact(
                FactPat::new("reading")
                    .arg(Pat::Atom(format!("w0_{seq}")))
                    .arg(Pat::Int(-((seq as i64 + 2) * READINGS as i64)))
                    .model(Pat::Atom("m0".to_string())),
            )
            .map(|removed| assert!(removed, "churn fact {seq} vanished"))
        })
        .expect("commit");
}

fn bench_commit_throughput(c: &mut Criterion) {
    gate();
    let mut group = c.benchmark_group("T16_commit_throughput");
    group.sample_size(10);
    for readers in [0usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("plain", readers),
            &readers,
            |b, &readers| {
                let store = Arc::new(SpecStore::new(audit_world(MODELS, READINGS)));
                let stop = Arc::new(AtomicBool::new(false));
                let done = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..readers)
                    .map(|_| {
                        let store = Arc::clone(&store);
                        let stop = Arc::clone(&stop);
                        let done = Arc::clone(&done);
                        std::thread::spawn(move || {
                            let mut audits = 0usize;
                            while !stop.load(Ordering::Relaxed) || audits == 0 {
                                let (_, snapshot) = store.snapshot();
                                let report = snapshot.audit_world_views(1).expect("reader audit");
                                assert_eq!(report.violations.len(), MODELS);
                                audits += 1;
                                done.fetch_add(1, Ordering::Relaxed);
                            }
                            audits
                        })
                    })
                    .collect();
                // Only measure once every reader is in steady state (one full
                // audit completed) — on a small box the first audits dominate
                // the whole measurement window otherwise.
                while done.load(Ordering::Relaxed) < readers {
                    std::thread::yield_now();
                }
                let seq = AtomicUsize::new(0);
                b.iter(|| commit_reading(&store, seq.fetch_add(1, Ordering::Relaxed)));
                stop.store(true, Ordering::Relaxed);
                for h in handles {
                    assert!(
                        h.join().expect("reader") > 0,
                        "reader never completed an audit"
                    );
                }
            },
        );
    }
    // The durability tax: the identical commit stream, fsynced to a WAL.
    group.bench_function(BenchmarkId::new("wal", 0usize), |b| {
        let path = std::env::temp_dir().join(format!("gdp-bench-t16-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let store = SpecStore::create_wal(audit_world(MODELS, READINGS), &path).expect("wal store");
        let seq = AtomicUsize::new(0);
        b.iter(|| commit_reading(&store, seq.fetch_add(1, Ordering::Relaxed)));
        let _ = std::fs::remove_file(&path);
    });
    group.finish();
}

fn bench_reader_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("T16_reader_audit");
    group.sample_size(10);
    for churn in [false, true] {
        let label = if churn { "under_writer" } else { "quiescent" };
        group.bench_function(BenchmarkId::new("pin_and_audit", label), |b| {
            let store = Arc::new(SpecStore::new(audit_world(MODELS, READINGS)));
            let stop = Arc::new(AtomicBool::new(false));
            let writer = churn.then(|| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seq = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        commit_reading(&store, seq);
                        retract_reading(&store, seq);
                        seq += 1;
                    }
                    seq
                })
            });
            b.iter(|| {
                let (_, snapshot) = store.snapshot();
                let report = snapshot.audit_world_views(2).expect("audit");
                assert_eq!(report.violations.len(), MODELS);
            });
            stop.store(true, Ordering::Relaxed);
            if let Some(h) = writer {
                assert!(h.join().expect("writer") > 0, "writer never committed");
            }
        });
    }
    group.finish();
}

/// T17 — checkpointed recovery: restart time must track the checkpoint
/// interval, not total history.
///
/// Disk state is prepared once per point (N single-fact commits through
/// a durable store, N from the interval up to 10× past it), then each
/// iteration rebuilds the base image and runs the full recovery path
/// (`SpecStore::recover_durable`: harvest images, pick the furthest
/// contiguous chain, install, replay the WAL suffix). The workload is
/// *churn* — alternating assert/retract of the same reading — so the KB
/// stays base-sized however long the history gets: what grows with N is
/// exactly the log, isolating the replay term. `wal_only` has no
/// checkpoints, so recovery replays all N records and scales with N;
/// `checkpointed` (the default interval, 32) installs a base-sized
/// image and replays at most one interval's worth no matter how much
/// history accumulated — the flat-line that justifies the checkpoint
/// machinery. A smaller world than T16 keeps the constant base-rebuild
/// cost from burying the replay term being measured.
fn bench_recovery(c: &mut Criterion) {
    const INTERVAL: usize = 32; // DEFAULT_CHECKPOINT_INTERVAL
    let mut group = c.benchmark_group("T17_recovery");
    group.sample_size(10);
    for commits in [INTERVAL, 2 * INTERVAL, 10 * INTERVAL] {
        for (label, opts) in [
            ("wal_only", DurabilityOptions::no_checkpoints()),
            ("checkpointed", DurabilityOptions::default()),
        ] {
            group.bench_with_input(BenchmarkId::new(label, commits), &commits, |b, &commits| {
                let path = std::env::temp_dir().join(format!(
                    "gdp-bench-t17-{label}-{commits}-{}.wal",
                    std::process::id()
                ));
                remove_family(&path);
                let store =
                    SpecStore::create_durable(audit_world(2, 8), &path, opts).expect("create");
                for seq in 0..commits / 2 {
                    commit_reading(&store, seq);
                    retract_reading(&store, seq);
                }
                drop(store);
                b.iter(|| {
                    let (store, head) = SpecStore::recover_durable(audit_world(2, 8), &path, opts)
                        .expect("recover");
                    assert_eq!(head, commits as u64);
                    store
                });
                remove_family(&path);
            });
        }
    }
    group.finish();
}

fn remove_family(path: &Path) {
    for suffix in ["", ".prev", ".ckpt", ".ckpt.prev", ".ckpt.tmp"] {
        let mut os = path.as_os_str().to_os_string();
        os.push(suffix);
        let _ = std::fs::remove_file(std::path::PathBuf::from(os));
    }
}

/// Equivalence gate run once per bench process: a pinned snapshot taken
/// mid-churn audits identically to the live spec at the same seq.
fn gate() {
    let store = SpecStore::new(audit_world(2, 8));
    commit_reading(&store, 0);
    let (seq, snapshot) = store.snapshot();
    commit_reading(&store, 1);
    let pinned = snapshot.audit_world_views(1).expect("pinned audit");
    let replayed = store
        .snapshot_at(seq)
        .expect("snapshot_at")
        .audit_world_views(1)
        .expect("replayed audit");
    assert_eq!(pinned.violations, replayed.violations);
    assert_eq!(pinned.per_model, replayed.per_model);
    let err: Result<(), SpecError> = Err(SpecError::Transaction("probe".into()));
    assert!(
        store.commit(|_| err).is_err(),
        "failed commits must not land"
    );
}

criterion_group!(
    benches,
    bench_commit_throughput,
    bench_reader_latency,
    bench_recovery
);
criterion_main!(benches);
