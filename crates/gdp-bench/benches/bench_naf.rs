//! B4 — negation-as-failure and bounded universal quantification: the cost
//! of the paper's `open_road` (∀) and `closed` (not) rules as the bridge
//! count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdp::prelude::*;
use gdp_bench::workloads::bridge_world;

fn bench_forall(c: &mut Criterion) {
    let mut group = c.benchmark_group("B4_open_road_forall");
    for bridges in [2usize, 8, 32] {
        let spec = bridge_world(20, bridges);
        group.bench_with_input(BenchmarkId::from_parameter(bridges), &bridges, |b, _| {
            b.iter(|| {
                let open = spec.query(FactPat::new("open_road").arg("X")).unwrap();
                assert_eq!(open.len(), 10);
            });
        });
    }
    group.finish();
}

fn bench_naf(c: &mut Criterion) {
    let mut group = c.benchmark_group("B4_closed_naf");
    for bridges in [2usize, 8, 32] {
        let spec = bridge_world(20, bridges);
        group.bench_with_input(BenchmarkId::from_parameter(bridges), &bridges, |b, _| {
            b.iter(|| {
                let closed = spec.query(FactPat::new("closed").arg("X")).unwrap();
                assert_eq!(closed.len(), 10);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forall, bench_naf);
criterion_main!(benches);
