//! B3 — first-argument indexing vs the unindexed scan (the 1986-Prolog
//! baseline). Who wins, by how much, and how the gap scales with the fact
//! base.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdp::prelude::*;
use gdp_bench::workloads::fact_base;

fn bench_indexed_vs_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("B3_indexing");
    for n in [100usize, 1_000, 10_000] {
        // Three regimes: full multi-argument indexing (this system),
        // classic first-argument indexing (useless on the reified h/5,
        // whose first argument is nearly always the default model ω), and
        // the unindexed scan (the 1986 Prolog baseline).
        for label in ["multi_arg", "first_arg_only", "unindexed"] {
            let mut spec = fact_base(n, label != "unindexed");
            if label == "first_arg_only" {
                spec.kb_mut()
                    .set_index_args(gdp::engine::PredKey::new("h", 5), &[0]);
            }
            let probe = FactPat::new("site")
                .arg(Pat::Atom(format!("s{}", n - 1)))
                .arg(Pat::Int((n - 1) as i64));
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| assert!(spec.provable(probe.clone()).unwrap()))
            });
        }
    }
    group.finish();
}

fn bench_negative_lookup(c: &mut Criterion) {
    // Failing lookups are the worst case for the scan baseline.
    let mut group = c.benchmark_group("B3_negative_lookup");
    for (label, indexing) in [("indexed", true), ("unindexed", false)] {
        let spec = fact_base(10_000, indexing);
        let probe = FactPat::new("site").arg("missing").arg(Pat::Int(-1));
        group.bench_function(label, |b| {
            b.iter(|| assert!(!spec.provable(probe.clone()).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_indexed_vs_scan, bench_negative_lookup);
criterion_main!(benches);
