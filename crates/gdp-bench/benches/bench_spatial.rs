//! B5 — spatial-operator cascades vs grid resolution: point queries
//! through `@u`, sampled queries through `@s`, and averages through `@a`
//! as the logical space grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdp::prelude::*;
use gdp_bench::workloads::spatial_world;

fn pt(x: f64, y: f64) -> Pat {
    Pat::app("pt", vec![Pat::Float(x), Pat::Float(y)])
}

fn bench_point_through_uniform(c: &mut Criterion) {
    let mut group = c.benchmark_group("B5_point_via_uniform");
    group.sample_size(10);
    for g in [8u32, 16, 32] {
        let (spec, _reg) = spatial_world(g);
        let probe = FactPat::new("zone").arg("wet").at(pt(0.7, 0.2));
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, _| {
            b.iter(|| assert!(spec.provable(probe.clone()).unwrap()));
        });
    }
    group.finish();
}

fn bench_sampled_at_coarse(c: &mut Criterion) {
    let mut group = c.benchmark_group("B5_sampled_at_coarse");
    group.sample_size(10);
    for g in [8u32, 16, 32] {
        let (spec, _reg) = spatial_world(g);
        let probe = FactPat::new("zone")
            .arg("wet")
            .space(SpaceQual::AreaSampled {
                res: Pat::atom("coarse"),
                at: pt(2.0, 2.0),
            });
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, _| {
            b.iter(|| assert!(spec.provable(probe.clone()).unwrap()));
        });
    }
    group.finish();
}

fn bench_negative_point(c: &mut Criterion) {
    // Failing spatial queries must scan every candidate patch fact.
    let mut group = c.benchmark_group("B5_negative_point");
    group.sample_size(10);
    for g in [8u32, 16, 32] {
        let (spec, _reg) = spatial_world(g);
        let probe = FactPat::new("zone").arg("dry").at(pt(0.7, 0.2));
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, _| {
            b.iter(|| assert!(!spec.provable(probe.clone()).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_point_through_uniform,
    bench_sampled_at_coarse,
    bench_negative_point
);
criterion_main!(benches);
