//! B10 — the aggregation primitives: `card` (the paper's statistical
//! accuracy machinery, §VII.B) and `avg` over growing solution sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdp::core::AggOp;
use gdp::prelude::*;
use gdp_bench::workloads::fact_base;

fn bench_card(c: &mut Criterion) {
    let mut group = c.benchmark_group("B10_card");
    group.sample_size(10);
    for n in [100usize, 1_000, 10_000] {
        let spec = fact_base(n, true);
        let formula = Formula::Card(
            Box::new(Formula::fact(FactPat::new("site").arg("X").arg("N"))),
            Pat::var("Count"),
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let answers = spec.satisfy(&formula).unwrap();
                assert_eq!(answers[0].get("Count").unwrap(), &Term::int(n as i64));
            });
        });
    }
    group.finish();
}

fn bench_avg(c: &mut Criterion) {
    let mut group = c.benchmark_group("B10_avg");
    group.sample_size(10);
    for n in [100usize, 1_000, 10_000] {
        let spec = fact_base(n, true);
        let formula = Formula::Agg(
            AggOp::Avg,
            Pat::var("N"),
            Box::new(Formula::fact(FactPat::new("site").arg("X").arg("N"))),
            Pat::var("Mean"),
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let answers = spec.satisfy(&formula).unwrap();
                let mean = answers[0].get("Mean").unwrap().as_f64().unwrap();
                assert!((mean - (n as f64 - 1.0) / 2.0).abs() < 1e-9);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_card, bench_avg);
criterion_main!(benches);
