//! B9 — world-view filtering overhead: query latency as facts spread
//! across more models, and the cost of switching world views.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdp::prelude::*;
use gdp_bench::workloads::model_world;

fn bench_query_across_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("B9_query_across_models");
    group.sample_size(10);
    for m in [1usize, 4, 16] {
        let mut spec = model_world(m, 1_000 / m);
        let names: Vec<String> = (0..m).map(|i| format!("m{i}")).collect();
        let mut view: Vec<&str> = vec!["omega"];
        view.extend(names.iter().map(String::as_str));
        spec.set_world_view(&view).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                let answers = spec.query(FactPat::new("datum").arg("X")).unwrap();
                assert_eq!(answers.len(), 1_000 / m * m);
            });
        });
    }
    group.finish();
}

fn bench_world_view_switch(c: &mut Criterion) {
    let mut group = c.benchmark_group("B9_world_view_switch");
    for m in [4usize, 16, 64] {
        let mut spec = model_world(m, 10);
        let names: Vec<String> = (0..m).map(|i| format!("m{i}")).collect();
        let all: Vec<&str> = std::iter::once("omega")
            .chain(names.iter().map(String::as_str))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                spec.set_world_view(&all).unwrap();
                spec.set_world_view(&["omega"]).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_across_models, bench_world_view_switch);
criterion_main!(benches);
