//! B8 — fuzzy overhead: crisp inference vs the AC accuracy-propagation
//! pass over the same rule shape. §VII claims fuzzy logic is "compatible"
//! with two-valued inference; this measures the constant factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdp::fuzzy::ac::{derive_accuracies, AcOptions};
use gdp::prelude::*;
use gdp_bench::workloads::fuzzy_world;

fn bench_crisp_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("B8_crisp_inference");
    group.sample_size(10);
    for n in [10usize, 50, 200] {
        let spec = fuzzy_world(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let answers = spec.query(FactPat::new("chazard").arg("X")).unwrap();
                assert_eq!(answers.len(), n);
            });
        });
    }
    group.finish();
}

fn bench_ac_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("B8_ac_propagation");
    group.sample_size(10);
    let rule = Rule::new(
        FactPat::new("hazard").arg("X"),
        Formula::and(
            Formula::fact(FactPat::new("flooded").arg("X")),
            Formula::fact(FactPat::new("frozen").arg("X")),
        ),
    );
    for n in [10usize, 50, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                // Fresh spec per iteration: derive_accuracies asserts.
                let mut spec = fuzzy_world(n);
                let derived = derive_accuracies(&mut spec, &rule, &AcOptions::default()).unwrap();
                assert_eq!(derived, n);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crisp_baseline, bench_ac_propagation);
criterion_main!(benches);
