//! T10 — tabled resolution: the answer table against the two workloads the
//! paper's "notorious inefficiency" shows up in.
//!
//! * the B7 history sweep: instant lookups under the continuity
//!   assumption are O(h³) in the assertion history because every lookup
//!   re-enumerates interval candidates and re-runs the negation scans;
//!   with tabling the first lookup pays that price once and every later
//!   lookup replays the memoized answers;
//! * the B2 depth sweep: a `table_all` configuration memoizes each rule
//!   level of the inference chain, so repeated queries stop re-deriving
//!   the whole chain.
//!
//! Benchmarked with tabling off and on over the *same* workload builders,
//! so the two rows of each pair are directly comparable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdp::prelude::*;
use gdp_bench::workloads::{inference_chain, temporal_history};

fn bench_b7_history(c: &mut Criterion) {
    let mut group = c.benchmark_group("T10_tabling_b7_history");
    group.sample_size(10);
    for h in [10usize, 100, 1_000] {
        for tabling in [false, true] {
            let mut spec = temporal_history(h);
            // The untabled h=1000 lookup needs billions of steps; lift the
            // step limit entirely so both configurations run to completion.
            spec.set_budget(u64::MAX, 256);
            spec.enable_tabling(tabling);
            let t = (h as i64 / 2) * 10 + 5;
            let value = if (h / 2) % 2 == 0 { "open" } else { "closed" };
            let probe = FactPat::new("status")
                .arg(value)
                .arg("b1")
                .time(TimeQual::At(Pat::Int(t)));
            let label = if tabling { "tabled" } else { "untabled" };
            if tabling {
                // Warm the table: the first lookup pays the full O(h³)
                // enumeration once (same cost as one untabled query — see
                // that row); what tabling buys, and what this row measures,
                // is every subsequent lookup over the unchanged history.
                assert!(spec.provable(probe.clone()).unwrap());
            }
            group.bench_with_input(BenchmarkId::new(label, h), &h, |b, _| {
                b.iter(|| assert!(spec.provable(probe.clone()).unwrap()));
            });
        }
    }
    group.finish();
}

fn bench_b2_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("T10_tabling_b2_depth");
    group.sample_size(10);
    for depth in [2usize, 8, 32, 64] {
        for tabling in [false, true] {
            let mut spec = inference_chain(depth, 10);
            spec.enable_tabling(tabling);
            spec.set_table_all(tabling);
            let goal = FactPat::new(&format!("level{depth}")).arg("X");
            let label = if tabling { "tabled" } else { "untabled" };
            if tabling {
                // Warm the table (see bench_b7_history): measure replay,
                // not the one-time build.
                assert_eq!(spec.query(goal.clone()).unwrap().len(), 10);
            }
            group.bench_with_input(BenchmarkId::new(label, depth), &depth, |b, _| {
                b.iter(|| {
                    let answers = spec.query(goal.clone()).unwrap();
                    assert_eq!(answers.len(), 10);
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_b7_history, bench_b2_depth);
criterion_main!(benches);
