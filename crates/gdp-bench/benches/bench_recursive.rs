//! T15 — SLG resolution on recursive tabled predicates: transitive
//! closure over gdp-datagen river networks (acyclic downhill DAGs with
//! braided confluences).
//!
//! Two formulations of the same `reach/2`:
//!
//! * **right-recursive** (`reach(X,Y) :- edge(X,Z), reach(Z,Y)`) also
//!   terminates under plain SLD, so it is the head-to-head row: SLD
//!   re-derives `reach(Z,Y)` once per path into `Z`, while SLG derives
//!   each subgoal once and shares the answer set — the "≥10× fewer
//!   steps" claim of the PR (measured by `gdp-profile`; this bench
//!   records the wall-clock counterpart);
//! * **left-recursive** (`reach(X,Y) :- reach(X,Z), edge(Z,Y)`) loops
//!   to budget exhaustion under SLD, so it has no untabled row at all —
//!   before the measurement the harness asserts the SLG answer set is
//!   identical to an independent Rust BFS closure over the same edges.
//!
//! `slg_cold` clears the answer table every iteration (measures the
//! forest evaluation itself); `slg_replay` keeps it warm (measures the
//! persistent-table hit path, the old T10 regime).

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdp::prelude::*;
use gdp_bench::workloads::river_reachability;

/// All-pairs transitive closure of `edges`, computed in Rust.
fn reference_closure(edges: &[(String, String)]) -> BTreeSet<(String, String)> {
    let mut pairs = BTreeSet::new();
    let nodes: BTreeSet<&String> = edges.iter().flat_map(|(a, b)| [a, b]).collect();
    for start in nodes {
        let mut frontier = vec![start];
        let mut seen: BTreeSet<&String> = BTreeSet::new();
        while let Some(node) = frontier.pop() {
            for (a, b) in edges {
                if a == node && seen.insert(b) {
                    frontier.push(b);
                }
            }
        }
        pairs.extend(seen.into_iter().map(|end| (start.clone(), end.clone())));
    }
    pairs
}

/// Render the engine's `reach(X, Y)` answers the same way.
fn engine_closure(spec: &Specification) -> BTreeSet<(String, String)> {
    spec.query(FactPat::new("reach").arg("X").arg("Y"))
        .expect("reach query")
        .iter()
        .map(|answer| {
            let x = answer.get("X").expect("X bound");
            let y = answer.get("Y").expect("Y bound");
            (x.to_string(), y.to_string())
        })
        .collect()
}

fn bench_right_recursion(c: &mut Criterion) {
    let mut group = c.benchmark_group("T15_right_recursive");
    group.sample_size(10);
    for rivers in [8usize, 32] {
        let (mut spec, edges) = river_reachability(rivers, false);
        spec.set_budget(u64::MAX, 4096);
        let reference = reference_closure(&edges);

        // SLD: tabling off, every recursive call resolved by clauses.
        spec.enable_tabling(false);
        spec.set_table_all(false);
        assert_eq!(engine_closure(&spec), reference);
        group.bench_with_input(BenchmarkId::new("sld", rivers), &rivers, |b, _| {
            b.iter(|| assert_eq!(engine_closure(&spec).len(), reference.len()));
        });

        // SLG, cold: evaluate the answer forest from scratch each time.
        spec.enable_tabling(true);
        spec.set_table_all(true);
        assert_eq!(engine_closure(&spec), reference);
        group.bench_with_input(BenchmarkId::new("slg_cold", rivers), &rivers, |b, _| {
            b.iter(|| {
                spec.kb().table().clear();
                assert_eq!(engine_closure(&spec).len(), reference.len());
            });
        });

        // SLG, warm: replay the persistent table entry.
        assert_eq!(engine_closure(&spec), reference);
        group.bench_with_input(BenchmarkId::new("slg_replay", rivers), &rivers, |b, _| {
            b.iter(|| assert_eq!(engine_closure(&spec).len(), reference.len()));
        });
    }
    group.finish();
}

fn bench_left_recursion(c: &mut Criterion) {
    let mut group = c.benchmark_group("T15_left_recursive");
    group.sample_size(10);
    for rivers in [32usize, 256] {
        let (mut spec, edges) = river_reachability(rivers, true);
        spec.set_budget(u64::MAX, 4096);
        spec.enable_tabling(true);
        spec.set_table_all(true);
        let reference = reference_closure(&edges);
        // The acceptance check: the SLG fixpoint over the full river
        // network (≥1k edges at rivers=256) is exactly the BFS closure.
        assert_eq!(engine_closure(&spec), reference);
        assert_eq!(spec.solver_stats().table_fallbacks, 0);

        group.bench_with_input(BenchmarkId::new("slg_cold", rivers), &rivers, |b, _| {
            b.iter(|| {
                spec.kb().table().clear();
                assert_eq!(engine_closure(&spec).len(), reference.len());
            });
        });
        group.bench_with_input(BenchmarkId::new("slg_replay", rivers), &rivers, |b, _| {
            b.iter(|| assert_eq!(engine_closure(&spec).len(), reference.len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_right_recursion, bench_left_recursion);
criterion_main!(benches);
