//! B2 — virtual-fact inference cost vs rule-chain depth.
//!
//! Quantifies the "notorious inefficiency" of logic-based models the paper
//! accepts in exchange for flexibility (§I): resolution cost grows with
//! derivation depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdp::prelude::*;
use gdp_bench::workloads::inference_chain;

fn bench_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("B2_inference_depth");
    for depth in [2usize, 8, 32, 64] {
        let spec = inference_chain(depth, 10);
        let goal = FactPat::new(&format!("level{depth}")).arg("X");
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                let answers = spec.query(goal.clone()).unwrap();
                assert_eq!(answers.len(), 10);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_depth);
criterion_main!(benches);
