//! T13 — streaming updates: after a committed single-model delta, how much
//! cheaper is `Specification::audit_incremental` than a full
//! `audit_world_views` re-audit?
//!
//! The workload is `audit_world(16, 80)`: 16 survey models plus omega in
//! the world view, each member an independent quadratic pair scan. A
//! streaming revision dirties exactly one model, so the dependency closure
//! marks one member of seventeen stale — the incremental audit re-solves
//! that member and merges the sixteen cached results, while the full audit
//! re-derives all seventeen. The expected gap is therefore about the
//! member count (T11 showed this box gains little from audit parallelism,
//! so the gap holds at every worker count).
//!
//! The tabled variant exercises the same delta path with the answer table
//! on: the commit bumps the revised predicate's generation, so the stale
//! member's re-solve drops out-of-date entries (counted in
//! `SolverStats::table_invalidations`) instead of serving them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdp_bench::workloads::{audit_world, streaming_revision};

const MODELS: usize = 16;
const READINGS: usize = 80;

fn bench_streaming_audit(c: &mut Criterion) {
    let mut group = c.benchmark_group("T13_streaming_update");
    group.sample_size(10);
    let mut spec = audit_world(MODELS, READINGS);
    spec.set_incremental(true);
    let seed = spec.audit_world_views(4).expect("seed audit");
    assert_eq!(seed.violations.len(), MODELS);
    let delta = streaming_revision(&mut spec, 0, READINGS, 0);
    // Equivalence gate before timing anything: the incremental report must
    // be byte-identical to the full re-audit after the same delta.
    let incremental = spec.audit_incremental(&delta, 4).expect("incremental");
    let full = spec.audit_world_views(4).expect("full re-audit");
    assert_eq!(incremental.violations, full.violations);
    assert_eq!(incremental.per_model, full.per_model);
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("full_reaudit", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let report = spec.audit_world_views(workers).unwrap();
                    assert_eq!(report.violations.len(), MODELS);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("incremental", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let report = spec.audit_incremental(&delta, workers).unwrap();
                    assert_eq!(report.violations.len(), MODELS);
                });
            },
        );
    }
    group.finish();
}

fn bench_streaming_audit_tabled(c: &mut Criterion) {
    let mut group = c.benchmark_group("T13_streaming_update_tabled");
    group.sample_size(10);
    let mut spec = audit_world(MODELS, READINGS);
    spec.set_incremental(true);
    spec.enable_tabling(true);
    spec.set_table_all(true);
    spec.audit_world_views(4).expect("seed audit");
    let delta = streaming_revision(&mut spec, 0, READINGS, 0);
    let warm = spec.audit_incremental(&delta, 4).expect("incremental");
    // The commit bumped the revised predicate's generation: the stale
    // member's re-solve must have dropped out-of-date table entries.
    eprintln!(
        "T13 tabled warm pass: steps={} table_invalidations={} table_hits={}",
        warm.stats.steps, warm.stats.table_invalidations, warm.stats.table_hits
    );
    assert_eq!(
        warm.violations,
        spec.audit_world_views(4).unwrap().violations
    );
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let report = spec.audit_incremental(&delta, 4).unwrap();
            assert_eq!(report.violations.len(), MODELS);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_streaming_audit, bench_streaming_audit_tabled);
criterion_main!(benches);
