//! B7 — temporal reasoning: instant lookups under the continuity
//! assumption as the assertion history grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdp::prelude::*;
use gdp_bench::workloads::temporal_history;

fn bench_continuity_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("B7_continuity_lookup");
    group.sample_size(10);
    // An instant lookup under the continuity assumption is O(h³): the
    // interval-uniform rule leaves the derived interval unbound, so the
    // continuity rule enumerates all (T1, T2) assertion pairs (h²) and
    // runs an O(h) negation scan for each — the paper's "notorious
    // inefficiency" made concrete. Keep h modest and budget generous.
    for h in [10usize, 50, 150] {
        let mut spec = temporal_history(h);
        spec.set_budget(1_000_000_000, 256);
        // Probe a moment midway between two assertions.
        let t = (h as i64 / 2) * 10 + 5;
        let value = if (h / 2) % 2 == 0 { "open" } else { "closed" };
        let probe = FactPat::new("status")
            .arg(value)
            .arg("b1")
            .time(TimeQual::At(Pat::Int(t)));
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, _| {
            b.iter(|| assert!(spec.provable(probe.clone()).unwrap()));
        });
    }
    group.finish();
}

fn bench_interval_average(c: &mut Criterion) {
    let mut group = c.benchmark_group("B7_interval_average");
    group.sample_size(10);
    for h in [10usize, 100, 1_000] {
        let mut spec = Specification::new();
        gdp::temporal::install_default(&mut spec).unwrap();
        for t in 0..h {
            spec.assert_fact(
                FactPat::new("temp")
                    .arg(Pat::Float(t as f64))
                    .arg("stl")
                    .time(TimeQual::At(Pat::Int(t as i64))),
            )
            .unwrap();
        }
        let probe = FactPat::new("temp")
            .arg("Z")
            .arg("stl")
            .time(TimeQual::IntervalAveraged(IntervalPat::closed(0, h as i64)));
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, _| {
            b.iter(|| {
                let answers = spec.query_n(probe.clone(), 1).unwrap();
                assert_eq!(answers.len(), 1);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_continuity_lookup, bench_interval_average);
criterion_main!(benches);
