//! B1 — fact assertion and ground-query cost vs base size.
//!
//! The paper's premise: requirements-level data volumes are "relatively
//! small" and flexibility beats performance (§I). This bench puts numbers
//! on what "small" buys: assertion throughput and ground-lookup latency as
//! the fact base grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdp::prelude::*;
use gdp_bench::workloads::fact_base;

fn bench_assert(c: &mut Criterion) {
    let mut group = c.benchmark_group("B1_assert_facts");
    group.sample_size(10);
    for n in [100usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| fact_base(n, true));
        });
    }
    group.finish();
}

fn bench_ground_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("B1_ground_query");
    for n in [100usize, 1_000, 10_000] {
        let spec = fact_base(n, true);
        let probe = FactPat::new("site")
            .arg(Pat::Atom(format!("s{}", n / 2)))
            .arg(Pat::Int((n / 2) as i64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| spec.provable(probe.clone()).unwrap());
        });
    }
    group.finish();
}

fn bench_enumerate(c: &mut Criterion) {
    let mut group = c.benchmark_group("B1_enumerate_all");
    group.sample_size(10);
    for n in [100usize, 1_000, 10_000] {
        let spec = fact_base(n, true);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let answers = spec.query(FactPat::new("site").arg("X").arg("N")).unwrap();
                assert_eq!(answers.len(), n);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_assert, bench_ground_query, bench_enumerate);
criterion_main!(benches);
