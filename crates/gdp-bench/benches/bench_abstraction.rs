//! B6 — the map-generalization pipeline (§V.D): averaging a coarse patch
//! through `@a`, and the island-threshold rule, vs grid size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdp::prelude::*;
use gdp::spatial::abstraction::{abstraction_meta_model, threshold_copy_rule};
use gdp_bench::workloads::spatial_world;

fn pt(x: f64, y: f64) -> Pat {
    Pat::app("pt", vec![Pat::Float(x), Pat::Float(y)])
}

fn bench_area_average(c: &mut Criterion) {
    let mut group = c.benchmark_group("B6_area_average");
    group.sample_size(10);
    for g in [8u32, 16, 32] {
        let (mut spec, _reg) = spatial_world(g);
        // Attach elevations to every fine patch.
        for j in 0..g {
            for i in 0..g {
                spec.assert_fact(
                    FactPat::new("elev")
                        .arg(Pat::Float(f64::from(i + j)))
                        .arg("land")
                        .space(SpaceQual::AreaUniform {
                            res: Pat::atom("fine"),
                            at: pt(f64::from(i) + 0.5, f64::from(j) + 0.5),
                        }),
                )
                .unwrap();
            }
        }
        let probe = FactPat::new("elev")
            .arg("Z")
            .arg("land")
            .space(SpaceQual::AreaAveraged {
                res: Pat::atom("coarse"),
                at: pt(2.0, 2.0),
            });
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, _| {
            b.iter(|| {
                let answers = spec.query_n(probe.clone(), 1).unwrap();
                assert_eq!(answers.len(), 1);
            });
        });
    }
    group.finish();
}

fn bench_island_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("B6_island_threshold");
    group.sample_size(10);
    for g in [8u32, 16] {
        let (mut spec, _reg) = spatial_world(g);
        spec.register_meta_model(abstraction_meta_model(
            "gen",
            vec![threshold_copy_rule("zone", "fine", "coarse", 4)],
        ));
        spec.activate_meta_model("gen").unwrap();
        let probe = FactPat::new("zone")
            .arg("wet")
            .space(SpaceQual::AreaUniform {
                res: Pat::atom("coarse"),
                at: pt(2.0, 2.0),
            });
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, _| {
            b.iter(|| spec.provable(probe.clone()).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_area_average, bench_island_threshold);
criterion_main!(benches);
