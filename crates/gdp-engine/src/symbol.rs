//! Interned symbols.
//!
//! Every atom and functor name in the engine is interned once into a global
//! table and referred to by a 32-bit [`Sym`]. Interning makes unification of
//! atoms an integer comparison and keeps [`crate::Term`] small — both matter
//! because the solver compares functors on every clause-head match.

use std::fmt;
use std::sync::OnceLock;

use parking_lot::RwLock;

use crate::hash::FxHashMap;

/// An interned symbol: a cheap, copyable handle to a string stored exactly
/// once in the process-wide symbol table.
///
/// Two `Sym`s are equal if and only if the strings they were interned from
/// are equal, so `==` on `Sym` is a correct (and O(1)) string comparison.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// Intern `name`, returning its symbol. Idempotent.
    pub fn new(name: &str) -> Sym {
        table().intern(name)
    }

    /// The string this symbol was interned from.
    ///
    /// Returns an owned `String` because the table may grow concurrently;
    /// the string contents are immutable, only the lookup requires a lock.
    pub fn as_str(self) -> String {
        table().resolve(self)
    }

    /// The raw index of this symbol in the table. Stable for the lifetime of
    /// the process; useful as a dense map key.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

struct SymbolTable {
    inner: RwLock<TableInner>,
}

#[derive(Default)]
struct TableInner {
    names: Vec<Box<str>>,
    index: FxHashMap<Box<str>, u32>,
}

impl SymbolTable {
    fn intern(&self, name: &str) -> Sym {
        {
            let inner = self.inner.read();
            if let Some(&id) = inner.index.get(name) {
                return Sym(id);
            }
        }
        let mut inner = self.inner.write();
        // Re-check under the write lock: another thread may have interned
        // `name` between our read unlock and write lock.
        if let Some(&id) = inner.index.get(name) {
            return Sym(id);
        }
        let id = u32::try_from(inner.names.len()).expect("symbol table overflow");
        let boxed: Box<str> = name.into();
        inner.names.push(boxed.clone());
        inner.index.insert(boxed, id);
        Sym(id)
    }

    fn resolve(&self, sym: Sym) -> String {
        let inner = self.inner.read();
        inner.names[sym.0 as usize].to_string()
    }
}

fn table() -> &'static SymbolTable {
    static TABLE: OnceLock<SymbolTable> = OnceLock::new();
    TABLE.get_or_init(|| SymbolTable {
        inner: RwLock::new(TableInner::default()),
    })
}

/// Well-known symbols used by the solver's control constructs and builtins.
///
/// Interning them once through this accessor keeps hot comparisons out of the
/// symbol table entirely.
pub mod symbols {
    use super::Sym;
    use std::sync::OnceLock;

    macro_rules! known {
        ($($fn_name:ident => $text:expr;)*) => {
            $(
                /// Well-known symbol for the construct of the same name.
                pub fn $fn_name() -> Sym {
                    static S: OnceLock<Sym> = OnceLock::new();
                    *S.get_or_init(|| Sym::new($text))
                }
            )*
        };
    }

    known! {
        and => ",";
        or => ";";
        not => "not";
        absent => "absent";
        forall => "forall";
        true_ => "true";
        fail => "fail";
        unify => "=";
        not_unify => "\\=";
        struct_eq => "==";
        struct_ne => "\\==";
        is => "is";
        lt => "<";
        le => "=<";
        gt => ">";
        ge => ">=";
        arith_eq => "=:=";
        arith_ne => "=\\=";
        var_test => "var";
        nonvar => "nonvar";
        atom_test => "atom";
        number => "number";
        ground => "ground";
        call => "call";
        findall => "findall";
        card => "card";
        aggregate => "aggregate";
        between => "between";
        univ => "=..";
        functor => "functor";
        arg => "arg";
        compare => "compare";
        nil => "[]";
        cons => ".";
        avg => "avg";
        sum => "sum";
        min => "min";
        max => "max";
        count => "count";
        once => "once";
        length => "length";
        msort => "msort";
        sort => "sort";
        reverse => "reverse";
        nth0 => "nth0";
        sum_list => "sum_list";
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Sym::new("saint_louis");
        let b = Sym::new("saint_louis");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "saint_louis");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Sym::new("open"), Sym::new("closed"));
    }

    #[test]
    fn display_round_trips() {
        let s = Sym::new("bridge_b17");
        assert_eq!(s.to_string(), "bridge_b17");
    }

    #[test]
    fn known_symbols_match_text() {
        assert_eq!(symbols::and().as_str(), ",");
        assert_eq!(symbols::cons().as_str(), ".");
        assert_eq!(symbols::nil().as_str(), "[]");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Sym::new("concurrent_symbol")))
            .collect();
        let syms: Vec<Sym> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }
}
