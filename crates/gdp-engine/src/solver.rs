//! The SLD resolution solver.
//!
//! An iterative, trail-based machine: the continuation (remaining goals) is
//! a persistent cons list shared by choice points, backtracking undoes the
//! trail to the recorded mark, and clause alternatives are cursors into the
//! knowledge base's candidate lists. Nothing recurses on the host stack
//! except sub-solvers, which are bounded by the [`Budget`]'s depth limit —
//! sub-solvers implement exactly the constructs the paper's formula grammar
//! needs beyond plain conjunction: `not` (negation as failure), `forall`
//! (bounded universal quantification), and the aggregation primitives
//! (`findall`, `card`, `aggregate`).

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;

use crate::arith;
use crate::budget::Budget;
use crate::builtins::{self, BuiltinOutcome};
use crate::error::{EngineError, EngineResult};
use crate::kb::{BoundSet, Candidates, KnowledgeBase, NumRange, PredKey};
use crate::symbol::{symbols, Sym};
use crate::table::{self, CachedAnswer, CyclePolicy, Forest, Lookup};
use crate::term::{Term, Var};
use crate::trace::{NullSink, Port, TraceEvent, TraceSink};
use crate::unify::{resolve_deep, BindStore, TrailMark};

/// Goals whose ports are not reported: pure scheduling constructs that a
/// human reading a trace does not think of as calls.
fn untraced_port(key: PredKey) -> bool {
    (key.name == symbols::and() && key.arity == 2)
        || (key.name == symbols::true_() && key.arity == 0)
}

/// Attribution key for budget steps spent on goals that have no predicate
/// key (unbound-variable and non-callable goal errors), so the profiler's
/// step totals still partition `SolverStats::steps` exactly.
fn invalid_goal_key() -> PredKey {
    PredKey::new("$invalid_goal", 0)
}

/// One answer to a query: the query's variables with their resolved values.
#[derive(Clone, Debug, PartialEq)]
pub struct Solution {
    bindings: Vec<(Var, Term)>,
}

impl Solution {
    /// The value bound to `v`, if `v` occurred in the query.
    ///
    /// A variable left unbound by the solution maps to itself.
    pub fn get(&self, v: Var) -> Option<&Term> {
        self.bindings.iter().find(|(w, _)| *w == v).map(|(_, t)| t)
    }

    /// All `(variable, value)` pairs, in the variables' first-occurrence
    /// order within the query.
    pub fn bindings(&self) -> &[(Var, Term)] {
        &self.bindings
    }
}

/// Execution counters for one [`Solver`], accumulated across all queries
/// it runs. Readable after any `solve`/`prove`/`count`/`iter` via
/// [`Solver::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Inference steps consumed from the budget.
    pub steps: u64,
    /// Clause-head resolution attempts.
    pub resolutions: u64,
    /// Tabled calls answered from a completed table.
    pub table_hits: u64,
    /// Tabled calls that had to enumerate (or fell back to plain SLD).
    pub table_misses: u64,
    /// Completed answer sets this solver recorded.
    pub table_inserts: u64,
    /// Stale (out-of-epoch) entries this solver's lookups dropped.
    pub table_invalidations: u64,
    /// Tabled calls that fell back to plain SLD resolution instead of
    /// using the table: a re-entry observed from a negation/aggregation
    /// sub-machine (where a partial answer set must not leak), or a call
    /// whose SLG evaluation the depth budget refused. Non-zero values are
    /// a *degradation signal* — the call still answers correctly, but
    /// without memoization.
    pub table_fallbacks: u64,
    /// Tabled calls answered from an MVCC *snapshot* table — cached work
    /// carried over from the live KB and reused by a pinned reader. A
    /// subset of [`SolverStats::table_hits`].
    pub snapshot_hits: u64,
}

impl SolverStats {
    /// Component-wise accumulation — merging per-worker reports from a
    /// parallel batch into one global view.
    pub fn absorb(&mut self, other: &SolverStats) {
        self.steps += other.steps;
        self.resolutions += other.resolutions;
        self.table_hits += other.table_hits;
        self.table_misses += other.table_misses;
        self.table_inserts += other.table_inserts;
        self.table_invalidations += other.table_invalidations;
        self.table_fallbacks += other.table_fallbacks;
        self.snapshot_hits += other.snapshot_hits;
    }
}

/// Shared mutable counters behind [`SolverStats`]; `Rc<Cell>` like the
/// budget, so sub-machines spawned for `not`/`forall`/aggregation report
/// into the same totals.
#[derive(Default)]
pub(crate) struct Counters {
    resolutions: Cell<u64>,
    table_hits: Cell<u64>,
    table_misses: Cell<u64>,
    table_inserts: Cell<u64>,
    table_invalidations: Cell<u64>,
    table_fallbacks: Cell<u64>,
    snapshot_hits: Cell<u64>,
}

/// Entry point for running queries against a [`KnowledgeBase`].
///
/// The solver is generic over its [`TraceSink`]; the default [`NullSink`]
/// has `ENABLED == false`, so every trace emission site in the machine is
/// statically compiled away on the untraced path (see DESIGN.md §6.9).
pub struct Solver<'kb, S: TraceSink = NullSink> {
    kb: &'kb KnowledgeBase,
    budget: Budget,
    counters: Rc<Counters>,
    /// Shared with every sub-machine, like the budget and counters, so
    /// events from `not`/`forall`/aggregation sub-solvers land in the same
    /// stream (tagged with their nesting depth).
    sink: Rc<RefCell<S>>,
}

impl<'kb> Solver<'kb> {
    /// A solver over `kb` with the given resource budget. The budget is
    /// shared across all queries issued through this solver instance.
    pub fn new(kb: &'kb KnowledgeBase, budget: Budget) -> Solver<'kb> {
        Solver::with_sink(kb, budget, NullSink)
    }
}

impl<'kb, S: TraceSink> Solver<'kb, S> {
    /// A solver over `kb` that reports port-model events and step
    /// attribution into `sink` (e.g. a [`crate::Profiler`] or
    /// [`crate::RingTrace`]). Answers are identical to an untraced solver;
    /// only observation is added.
    pub fn with_sink(kb: &'kb KnowledgeBase, budget: Budget, sink: S) -> Solver<'kb, S> {
        Solver {
            kb,
            budget,
            counters: Rc::new(Counters::default()),
            sink: Rc::new(RefCell::new(sink)),
        }
    }

    /// Execution counters accumulated so far (across every query this
    /// solver instance has run, including sub-solvers).
    pub fn stats(&self) -> SolverStats {
        SolverStats {
            steps: self.budget.steps_used(),
            resolutions: self.counters.resolutions.get(),
            table_hits: self.counters.table_hits.get(),
            table_misses: self.counters.table_misses.get(),
            table_inserts: self.counters.table_inserts.get(),
            table_invalidations: self.counters.table_invalidations.get(),
            table_fallbacks: self.counters.table_fallbacks.get(),
            snapshot_hits: self.counters.snapshot_hits.get(),
        }
    }

    /// Read access to the attached sink (inspect a profiler or ring
    /// mid-session).
    pub fn sink(&self) -> std::cell::Ref<'_, S> {
        self.sink.borrow()
    }

    /// Consume the solver and return its sink with everything it
    /// collected.
    ///
    /// # Panics
    ///
    /// Panics if a [`SolutionIter`] from this solver is still alive (the
    /// iterator shares the sink).
    pub fn into_sink(self) -> S {
        match Rc::try_unwrap(self.sink) {
            Ok(cell) => cell.into_inner(),
            Err(_) => panic!("into_sink while a solution iterator is still alive"),
        }
    }

    fn machine(&self, goal: Term) -> EngineResult<Machine<'kb, S>> {
        Machine::start(
            self.kb,
            self.budget.clone(),
            Rc::clone(&self.counters),
            Rc::clone(&self.sink),
            goal,
        )
    }

    /// Collect up to `max_solutions` answers to `goal`.
    pub fn solve(&self, goal: Term, max_solutions: usize) -> EngineResult<Vec<Solution>> {
        let query_vars = goal.variables();
        let mut machine = self.machine(goal)?;
        let mut out = Vec::new();
        while out.len() < max_solutions && machine.next_solution()? {
            out.push(Solution {
                bindings: query_vars
                    .iter()
                    .map(|&v| (v, resolve_deep(&machine.store, &Term::Var(v))))
                    .collect(),
            });
        }
        Ok(out)
    }

    /// Collect all answers to `goal`.
    pub fn solve_all(&self, goal: Term) -> EngineResult<Vec<Solution>> {
        self.solve(goal, usize::MAX)
    }

    /// Is `goal` provable at all?
    pub fn prove(&self, goal: Term) -> EngineResult<bool> {
        let mut machine = self.machine(goal)?;
        machine.next_solution()
    }

    /// Number of answers to `goal` (with duplicates; see `card` for the
    /// distinct count the paper's cardinality primitive uses).
    pub fn count(&self, goal: Term) -> EngineResult<usize> {
        let mut machine = self.machine(goal)?;
        let mut n = 0;
        while machine.next_solution()? {
            n += 1;
        }
        Ok(n)
    }

    /// Stream answers lazily: each `next()` resumes the resolution machine
    /// where the previous answer left off, so consumers pay only for the
    /// solutions they take.
    pub fn iter(&self, goal: Term) -> EngineResult<SolutionIter<'kb, S>> {
        let query_vars = goal.variables();
        let machine = self.machine(goal)?;
        Ok(SolutionIter {
            machine,
            query_vars,
        })
    }
}

/// Lazy solution stream returned by [`Solver::iter`].
pub struct SolutionIter<'kb, S: TraceSink = NullSink> {
    machine: Machine<'kb, S>,
    query_vars: Vec<Var>,
}

impl<S: TraceSink> Iterator for SolutionIter<'_, S> {
    type Item = EngineResult<Solution>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.machine.next_solution() {
            Ok(true) => Some(Ok(Solution {
                bindings: self
                    .query_vars
                    .iter()
                    .map(|&v| (v, resolve_deep(&self.machine.store, &Term::Var(v))))
                    .collect(),
            })),
            Ok(false) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

/// Persistent goal continuation.
enum Cont {
    Done,
    Goal(Term, Rc<Cont>),
}

impl Cont {
    fn push(rest: &Rc<Cont>, goal: Term) -> Rc<Cont> {
        Rc::new(Cont::Goal(goal, Rc::clone(rest)))
    }
}

impl Drop for Cont {
    /// Iterative drop: a runaway query can build a continuation list
    /// hundreds of thousands of cells long before its budget trips, and
    /// the default recursive drop would overflow the host stack unwinding
    /// it.
    fn drop(&mut self) {
        let mut next = match self {
            Cont::Goal(_, rest) => Some(std::mem::replace(rest, Rc::new(Cont::Done))),
            Cont::Done => None,
        };
        while let Some(rc) = next {
            next = match Rc::try_unwrap(rc) {
                Ok(mut cont) => {
                    let taken = match &mut cont {
                        Cont::Goal(_, rest) => Some(std::mem::replace(rest, Rc::new(Cont::Done))),
                        Cont::Done => None,
                    };
                    // `cont` now has a trivial tail; its drop is shallow.
                    taken
                }
                // Still shared: another handle keeps the rest alive.
                Err(_) => None,
            };
        }
    }
}

/// Active `range_call` bounds, as a persistent cons list (like [`Cont`]):
/// choice points capture the list by reference and backtracking restores
/// it in O(1). An entry constrains an *unbound* variable for exactly the
/// derivation extent of its `range_call`'s goal — the paired `$range_chk`
/// pops it on the way out.
enum RangeCtx {
    Empty,
    Bound {
        var: Var,
        range: NumRange,
        rest: Rc<RangeCtx>,
    },
}

/// Pending alternatives at a choice point.
enum Alts<'kb> {
    /// Remaining clause candidates for a user-predicate call.
    Clauses {
        goal: Term,
        clauses: Candidates<'kb>,
        next: usize,
    },
    /// The right branch of a disjunction.
    Disjunct { right: Term },
    /// Remaining integers for `between(L, H, X)`.
    Between { var: Term, cur: i64, hi: i64 },
    /// Remaining cached answers for a tabled call.
    Answers {
        goal: Term,
        answers: Arc<Vec<CachedAnswer>>,
        next: usize,
    },
    /// A recursive consumer over the *live* answer list of an in-flight
    /// subgoal frame in the answer forest. Unlike [`Alts::Answers`] the
    /// list can grow while this choice point is pending: answers a
    /// producer derives after the cursor was pushed are picked up on
    /// redo, which is how answers propagate within a saturation pass.
    Live {
        goal: Term,
        /// Forest stack position of the producing frame. Stable for the
        /// lifetime of the choice point: a region at or below the frame
        /// cannot complete while a consumer machine above it is running.
        frame: usize,
        next: usize,
    },
}

struct ChoicePoint<'kb> {
    cont: Rc<Cont>,
    mark: TrailMark,
    ranges: Rc<RangeCtx>,
    alts: Alts<'kb>,
}

pub(crate) struct Machine<'kb, S: TraceSink = NullSink> {
    kb: &'kb KnowledgeBase,
    pub(crate) store: BindStore,
    cont: Rc<Cont>,
    cps: Vec<ChoicePoint<'kb>>,
    /// Active `range_call` bounds on this derivation path.
    ranges: Rc<RangeCtx>,
    budget: Budget,
    counters: Rc<Counters>,
    /// Trace sink shared with sub-machines; every use is statically
    /// guarded by `S::ENABLED`.
    sink: Rc<RefCell<S>>,
    /// The SLG answer forest: in-flight tabled subgoals with their
    /// growing answer sets. Shared with every sub-machine, like the
    /// budget, so a recursive call finds the frame its ancestor pushed.
    forest: Rc<RefCell<Forest>>,
    /// What role this machine plays in SLG evaluation — it decides how a
    /// call into an in-flight (active) table pattern is resolved.
    slg: SlgCtx,
    /// False until the first `next_solution` call; subsequent calls must
    /// backtrack before resuming the main loop.
    started: bool,
    /// Set when the machine has exhausted all alternatives.
    exhausted: bool,
}

/// The SLG role of one [`Machine`].
#[derive(Clone, Copy, Debug)]
enum SlgCtx {
    /// The top-level query machine. Every tabled evaluation it starts
    /// completes (and publishes) before its continuation resumes, so it
    /// never observes an active pattern of its own making.
    Outer,
    /// A producer pass enumerating the pattern of the forest frame at
    /// stack position `pos`. The *root* dispatch — the first call on the
    /// frame's own pattern — resolves against the program clauses (that
    /// is what a producer is); after `root_done`, calls into active
    /// patterns consume live answers (or succeed, under a coinductive
    /// policy).
    Pass { pos: usize, root_done: bool },
    /// An auxiliary sub-machine (`not`/`absent`/`forall`/`once`/
    /// aggregation): its answers feed non-monotone constructs, so it must
    /// never observe a *partial* answer set — calls into active patterns
    /// fall back to plain SLD, exactly like the pre-SLG engine, and are
    /// counted in [`SolverStats::table_fallbacks`]. `enclosing` remembers
    /// the nearest producer frame so low-links of subgoals evaluated from
    /// here still propagate to the region that must wait for them.
    Aux { enclosing: Option<usize> },
}

impl<'kb, S: TraceSink> Machine<'kb, S> {
    pub(crate) fn start(
        kb: &'kb KnowledgeBase,
        budget: Budget,
        counters: Rc<Counters>,
        sink: Rc<RefCell<S>>,
        goal: Term,
    ) -> EngineResult<Machine<'kb, S>> {
        let mut store = BindStore::new();
        if let Some(max) = goal.max_var() {
            store.ensure(max);
        }
        Ok(Machine {
            kb,
            store,
            cont: Cont::push(&Rc::new(Cont::Done), goal),
            cps: Vec::new(),
            ranges: Rc::new(RangeCtx::Empty),
            budget,
            counters,
            sink,
            forest: Rc::new(RefCell::new(Forest::new())),
            slg: SlgCtx::Outer,
            started: false,
            exhausted: false,
        })
    }

    /// The nearest enclosing producer frame, if any — the frame whose
    /// low link must absorb the links of subgoals evaluated from this
    /// machine.
    fn enclosing_frame(&self) -> Option<usize> {
        match self.slg {
            SlgCtx::Outer => None,
            SlgCtx::Pass { pos, .. } => Some(pos),
            SlgCtx::Aux { enclosing } => enclosing,
        }
    }

    /// Spawn a sub-machine sharing this machine's budget, over a goal that
    /// has already been resolved against this machine's store. Unbound
    /// variables of the outer store keep their identities (the sub-store is
    /// sized to cover them by length, all slots unbound — sizing by
    /// `ensure(len - 1)` used to underflow on an empty outer store).
    fn sub_machine(&self, goal: Term) -> EngineResult<Machine<'kb, S>> {
        let mut store = BindStore::new();
        store.ensure_len(self.store.len());
        if let Some(max) = goal.max_var() {
            store.ensure(max);
        }
        Ok(Machine {
            kb: self.kb,
            store,
            cont: Cont::push(&Rc::new(Cont::Done), goal),
            cps: Vec::new(),
            // A fresh, empty range context: bounds never cross a
            // sub-machine boundary (in particular, tabled enumerations must
            // not be range-pruned — their answer sets are reused under
            // other constraints).
            ranges: Rc::new(RangeCtx::Empty),
            budget: self.budget.clone(),
            counters: Rc::clone(&self.counters),
            sink: Rc::clone(&self.sink),
            forest: Rc::clone(&self.forest),
            slg: SlgCtx::Aux {
                enclosing: self.enclosing_frame(),
            },
            started: false,
            exhausted: false,
        })
    }

    /// Spawn the producer machine for one saturation pass over the frame
    /// at `pos`. The goal is the frame's canonical pattern, so the store
    /// is fresh (pattern variables are numbered from zero) — unlike
    /// [`Machine::sub_machine`], nothing from the caller's store is in
    /// scope.
    fn pass_machine(&self, goal: Term, pos: usize) -> Machine<'kb, S> {
        let mut store = BindStore::new();
        if let Some(max) = goal.max_var() {
            store.ensure(max);
        }
        Machine {
            kb: self.kb,
            store,
            cont: Cont::push(&Rc::new(Cont::Done), goal),
            cps: Vec::new(),
            ranges: Rc::new(RangeCtx::Empty),
            budget: self.budget.clone(),
            counters: Rc::clone(&self.counters),
            sink: Rc::clone(&self.sink),
            forest: Rc::clone(&self.forest),
            slg: SlgCtx::Pass {
                pos,
                root_done: false,
            },
            started: false,
            exhausted: false,
        }
    }

    /// Report a port-model event. Call sites guard on `S::ENABLED` so the
    /// event construction (and any goal clone feeding it) is compiled away
    /// for the [`NullSink`].
    fn emit(&self, port: Port, key: PredKey, goal: Term) {
        debug_assert!(S::ENABLED, "emit on a disabled sink");
        let event = TraceEvent {
            port,
            depth: self.budget.depth(),
            key,
            goal,
        };
        self.sink.borrow_mut().event(&event);
    }

    /// Attribute one consumed budget step to `key` (profiling).
    #[inline]
    fn attribute_step(&self, key: PredKey) {
        if S::ENABLED {
            self.sink.borrow_mut().step(key);
        }
    }

    /// Advance to the next solution. Returns `Ok(false)` when no more exist.
    pub(crate) fn next_solution(&mut self) -> EngineResult<bool> {
        if self.exhausted {
            return Ok(false);
        }
        if self.started {
            // Re-entry: the previous solution's bindings are still in
            // place; find another path.
            if !self.backtrack()? {
                return Ok(false);
            }
        }
        self.started = true;
        self.run()
    }

    fn run(&mut self) -> EngineResult<bool> {
        loop {
            let (goal, rest) = match &*self.cont {
                Cont::Done => return Ok(true),
                Cont::Goal(g, rest) => (g.clone(), Rc::clone(rest)),
            };
            self.cont = rest;
            if !self.step_goal(goal)? && !self.backtrack()? {
                return Ok(false);
            }
        }
    }

    /// Execute one goal. Returns `Ok(true)` to continue with the current
    /// continuation, `Ok(false)` to fail into backtracking.
    fn step_goal(&mut self, goal: Term) -> EngineResult<bool> {
        // The budget step for dispatching this goal is consumed (and, when
        // a sink is attached, attributed) here, so profiler step totals
        // partition `SolverStats::steps` exactly.
        self.budget.step()?;
        let goal = self.store.deref(&goal).clone();
        let key = match &goal {
            Term::Var(_) => {
                self.attribute_step(invalid_goal_key());
                return Err(EngineError::Instantiation { context: "call" });
            }
            Term::Atom(s) => PredKey { name: *s, arity: 0 },
            Term::Compound(f, args) => match u16::try_from(args.len()) {
                Ok(arity) => PredKey { name: *f, arity },
                // Never truncate: a `p/65537` call must not dispatch to
                // `p/1` clauses.
                Err(_) => {
                    self.attribute_step(invalid_goal_key());
                    return Err(EngineError::ArityOverflow {
                        name: *f,
                        arity: args.len(),
                    });
                }
            },
            other => {
                self.attribute_step(invalid_goal_key());
                return Err(EngineError::NotCallable {
                    goal: other.clone(),
                });
            }
        };
        self.attribute_step(key);

        if S::ENABLED && !untraced_port(key) {
            self.emit(Port::Call, key, goal.clone());
            let out = self.dispatch(key, goal.clone());
            match &out {
                // Resolved on exit so the trace shows the bindings the
                // goal succeeded with.
                Ok(true) => self.emit(Port::Exit, key, resolve_deep(&self.store, &goal)),
                Ok(false) => self.emit(Port::Fail, key, goal),
                // Errors propagate without a port of their own; the last
                // Call in the ring shows where the failure happened.
                Err(_) => {}
            }
            out
        } else {
            self.dispatch(key, goal)
        }
    }

    /// Dispatch a dereferenced, keyed goal: control constructs, builtins,
    /// natives, tabled calls, then user-clause resolution.
    fn dispatch(&mut self, key: PredKey, goal: Term) -> EngineResult<bool> {
        // Control constructs first.
        if let Some(done) = self.try_control(key.name, &goal)? {
            return Ok(done);
        }

        // Builtins (arithmetic, comparison, type tests, term construction).
        match builtins::dispatch(&mut self.store, key, goal.args())? {
            BuiltinOutcome::Succeeded => return Ok(true),
            BuiltinOutcome::Failed => return Ok(false),
            BuiltinOutcome::NotABuiltin => {}
        }

        // Native predicates registered by higher layers.
        if let Some(native) = self.kb.native(key) {
            if S::ENABLED {
                self.emit(Port::NativeCall, key, goal.clone());
            }
            let native = Arc::clone(native);
            return native(&mut self.store, goal.args());
        }

        // Tabled predicates: consult the memoized answer cache first.
        if self.kb.is_tabled(key) {
            return self.call_tabled(key, goal);
        }

        // User predicates: clause resolution.
        self.call_user(key, goal)
    }

    /// Resolve a call to a tabled predicate.
    ///
    /// * Completed pattern (persistent table hit): replay the answers.
    /// * Active pattern (recursive re-entry while the pattern is mid-
    ///   evaluation on the forest stack): inside a producer pass, record
    ///   the cycle and consume the *live* answer list (or succeed, for a
    ///   coinductive predicate); inside an auxiliary machine, fall back
    ///   to plain SLD — a negation must never observe a partial table.
    /// * New pattern: run a full SLG evaluation ([`Self::evaluate_subgoal`]),
    ///   then replay the completed answers. When the evaluation cannot
    ///   complete because the subgoal joined an enclosing recursive
    ///   region, the caller consumes live answers like any re-entry.
    ///
    /// The only remaining degradations to plain SLD — auxiliary-context
    /// re-entry and a depth-budget refusal — are counted in
    /// [`SolverStats::table_fallbacks`] and traced as
    /// [`Port::TableFallback`]; nothing degrades silently any more.
    fn call_tabled(&mut self, key: PredKey, goal: Term) -> EngineResult<bool> {
        let resolved = resolve_deep(&self.store, &goal);
        let (pattern, _) = table::canonicalize(&resolved);
        let active = self.forest.borrow().active_pos(&pattern);
        if let Some(target) = active {
            if let SlgCtx::Pass { pos, root_done } = &mut self.slg {
                if target == *pos && !*root_done {
                    // The producer's root dispatch of its own pattern:
                    // resolve against the program clauses — that is the
                    // production. Only *inner* occurrences go through the
                    // answer lists.
                    *root_done = true;
                    return self.call_user(key, goal);
                }
            }
            return self.call_active(key, goal, target);
        }
        let validity = self.kb.dep_snapshot(key);
        match self.kb.table().lookup(&pattern, &validity) {
            Lookup::Hit(answers) => {
                self.counters
                    .table_hits
                    .set(self.counters.table_hits.get() + 1);
                let from_snapshot = self.kb.table().is_snapshot();
                if from_snapshot {
                    self.counters
                        .snapshot_hits
                        .set(self.counters.snapshot_hits.get() + 1);
                }
                if S::ENABLED {
                    let port = if from_snapshot {
                        Port::SnapshotHit
                    } else {
                        Port::TableHit
                    };
                    self.emit(port, key, resolved.clone());
                }
                self.replay(goal, answers)
            }
            Lookup::Miss { invalidated } => {
                self.counters
                    .table_misses
                    .set(self.counters.table_misses.get() + 1);
                if invalidated {
                    self.counters
                        .table_invalidations
                        .set(self.counters.table_invalidations.get() + 1);
                    if S::ENABLED {
                        self.emit(Port::Invalidate, key, resolved.clone());
                    }
                }
                let Ok(_guard) = self.budget.enter() else {
                    // The evaluation machinery would blow the depth limit
                    // where a plain call would not; stay equivalent to the
                    // untabled solver (and make the degradation visible).
                    return self.table_fallback(key, goal);
                };
                match self.evaluate_subgoal(key, pattern.clone(), validity)? {
                    Some(answers) => self.replay(goal, answers),
                    None => {
                        // The subgoal joined an enclosing recursive region
                        // and stays active until that region's leader
                        // completes; resolve this call like a re-entry.
                        let target = self
                            .forest
                            .borrow()
                            .active_pos(&pattern)
                            .expect("uncompleted subgoal stays on the forest stack");
                        self.call_active(key, goal, target)
                    }
                }
            }
        }
    }

    /// Resolve a tabled call whose pattern is active (mid-evaluation) at
    /// forest position `target`.
    fn call_active(&mut self, key: PredKey, goal: Term, target: usize) -> EngineResult<bool> {
        if let SlgCtx::Pass { pos: my_pos, .. } = self.slg {
            self.forest.borrow_mut().record_link(my_pos, target);
            if self.kb.cycle_policy_of(key) == CyclePolicy::Coinductive {
                // Coinductive cycle: the re-entered goal is its own
                // evidence (greatest-fixpoint reading) and succeeds with
                // no additional bindings — the goal is an instance of the
                // very pattern being evaluated.
                return Ok(true);
            }
            return self.consume_live(goal, target);
        }
        // Auxiliary machines (negation, forall, aggregation) and the
        // outer machine must not read a partial answer set: plain SLD,
        // counted and traced.
        self.table_fallback(key, goal)
    }

    /// The observable SLD fallback: count it, trace it, resolve the call
    /// against the clauses directly.
    fn table_fallback(&mut self, key: PredKey, goal: Term) -> EngineResult<bool> {
        self.counters
            .table_fallbacks
            .set(self.counters.table_fallbacks.get() + 1);
        self.kb.table().note_fallback();
        if S::ENABLED {
            self.emit(Port::TableFallback, key, goal.clone());
        }
        self.call_user(key, goal)
    }

    /// Run a full SLG evaluation of a new subgoal `pattern`: push a frame,
    /// saturate its strongly-connected region to a fixpoint, and — if this
    /// frame turns out to be the region's leader — publish every member's
    /// completed answer set to the persistent table. Returns the completed
    /// answers for `pattern`, or `None` when the subgoal linked into an
    /// enclosing region and must stay active until *that* region's leader
    /// completes.
    fn evaluate_subgoal(
        &mut self,
        key: PredKey,
        pattern: Term,
        validity: Arc<crate::table::TableValidity>,
    ) -> EngineResult<Option<Arc<Vec<CachedAnswer>>>> {
        let pos = self
            .forest
            .borrow_mut()
            .push(key, pattern, Arc::clone(&validity));
        if let Err(e) = self.saturate(pos) {
            // Only completed evaluations may publish; drop the partial
            // frames so a later query starts clean.
            self.forest.borrow_mut().unwind_to(pos);
            return Err(e);
        }
        let link = self.forest.borrow().link(pos);
        if link < pos {
            // Not the leader: an enclosing frame is part of this region
            // and must absorb the low link before its own completion
            // check.
            if let Some(parent) = self.enclosing_frame() {
                self.forest.borrow_mut().propagate(parent, link);
            }
            return Ok(None);
        }
        // Leader: the whole region [pos..] is saturated. Publish each
        // member against the validity snapshot taken when its evaluation
        // began.
        let frames = self.forest.borrow_mut().complete_region(pos);
        let mut own = None;
        for (i, frame) in frames.into_iter().enumerate() {
            let answers = Arc::new(frame.answers);
            self.kb.table().insert(
                frame.pattern.clone(),
                (*frame.validity).clone(),
                Arc::clone(&answers),
            );
            self.counters
                .table_inserts
                .set(self.counters.table_inserts.get() + 1);
            if S::ENABLED {
                self.emit(Port::Complete, frame.key, frame.pattern.clone());
                self.emit(Port::TableInsert, frame.key, frame.pattern);
            }
            if i == 0 {
                own = Some(answers);
            }
        }
        Ok(own)
    }

    /// Saturate the region rooted at frame `pos`: run producer passes over
    /// `pos` and every frame stacked above it until a full round derives
    /// no new answer. A non-recursive subgoal (no re-entry was observed
    /// and no incomplete child remains) is complete after its single pass
    /// — that pass is byte-for-byte the old enumerating sub-machine, so
    /// non-recursive tabling behaves exactly as before.
    fn saturate(&mut self, pos: usize) -> EngineResult<()> {
        let mut round = 0u64;
        loop {
            let stamp_before = self.forest.borrow().stamp();
            let mut i = pos;
            loop {
                let len = self.forest.borrow().len();
                if i >= len {
                    break;
                }
                if S::ENABLED && round > 0 {
                    // Re-driving a producer over grown answer lists is the
                    // scheduler-level resume of its suspended consumers.
                    let (key, pattern) = {
                        let forest = self.forest.borrow();
                        (forest.key(i), forest.pattern(i))
                    };
                    self.emit(Port::Resume, key, pattern);
                }
                self.run_pass(i)?;
                i += 1;
            }
            let forest = self.forest.borrow();
            if !forest.is_recursive(pos) && forest.len() == pos + 1 {
                // Plain non-recursive evaluation: one pass is complete.
                return Ok(());
            }
            if forest.stamp() == stamp_before {
                // A whole round at fixpoint: the region is saturated.
                return Ok(());
            }
            drop(forest);
            round += 1;
        }
    }

    /// One producer pass: enumerate the frame's pattern in a fresh
    /// machine, feeding every derived solution into the frame's answer
    /// list (where concurrent live consumers of the same pass can already
    /// see it). A budget error aborts the evaluation without recording.
    fn run_pass(&mut self, pos: usize) -> EngineResult<()> {
        let goal = self.forest.borrow().pattern(pos);
        let mut sub = self.pass_machine(goal.clone(), pos);
        while sub.next_solution()? {
            let inst = resolve_deep(&sub.store, &goal);
            let (term, n_vars) = table::canonicalize(&inst);
            self.forest
                .borrow_mut()
                .insert_answer(pos, CachedAnswer { term, n_vars });
        }
        Ok(())
    }

    /// Consume the live answer list of the active frame at `target`, with
    /// a choice point that re-reads the (possibly grown) list on redo.
    fn consume_live(&mut self, goal: Term, target: usize) -> EngineResult<bool> {
        let mut alts = Alts::Live {
            goal,
            frame: target,
            next: 0,
        };
        let cont = Rc::clone(&self.cont);
        let mark = self.store.mark();
        let ranges = Rc::clone(&self.ranges);
        if self.try_live_alts(&mut alts)? {
            // Always keep the choice point: even a cursor at the end of
            // the list may see more answers by the time it is resumed.
            self.cps.push(ChoicePoint {
                cont,
                mark,
                ranges,
                alts,
            });
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Try live answers from the cursor until one unifies with the goal.
    /// Running dry on an incomplete table is a *suspension*: the consumer
    /// fails for now and the saturation loop re-runs it after producers
    /// have derived more answers.
    fn try_live_alts(&mut self, alts: &mut Alts<'_>) -> EngineResult<bool> {
        let Alts::Live { goal, frame, next } = alts else {
            unreachable!("try_live_alts on non-live alts");
        };
        let step_key = if S::ENABLED {
            Some(PredKey::of_term(goal).unwrap_or_else(invalid_goal_key))
        } else {
            None
        };
        loop {
            let answer = {
                let forest = self.forest.borrow();
                if *next < forest.answers_len(*frame) {
                    Some(forest.answer(*frame, *next))
                } else {
                    None
                }
            };
            let Some(answer) = answer else {
                if let Some(key) = step_key {
                    self.emit(Port::Suspend, key, goal.clone());
                }
                return Ok(false);
            };
            *next += 1;
            self.budget.step()?;
            if let Some(key) = step_key {
                self.attribute_step(key);
            }
            let instance = if answer.n_vars == 0 {
                answer.term.clone()
            } else {
                let base = self.store.alloc_block(answer.n_vars);
                answer.term.offset_vars(base)
            };
            if self.store.unify(goal, &instance) {
                return Ok(true);
            }
        }
    }

    /// Unify `goal` against cached answers, with a choice point for the
    /// remainder — the same renaming-apart discipline as clause
    /// activation, minus the bodies.
    fn replay(&mut self, goal: Term, answers: Arc<Vec<CachedAnswer>>) -> EngineResult<bool> {
        let mut alts = Alts::Answers {
            goal,
            answers,
            next: 0,
        };
        let cont = Rc::clone(&self.cont);
        let mark = self.store.mark();
        let ranges = Rc::clone(&self.ranges);
        if self.try_answer_alts(&mut alts)? {
            if let Alts::Answers { answers, next, .. } = &alts {
                if *next < answers.len() {
                    self.cps.push(ChoicePoint {
                        cont,
                        mark,
                        ranges,
                        alts,
                    });
                }
            }
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Try cached answers from the cursor until one unifies with the goal.
    fn try_answer_alts(&mut self, alts: &mut Alts<'_>) -> EngineResult<bool> {
        let Alts::Answers {
            goal,
            answers,
            next,
        } = alts
        else {
            unreachable!("try_answer_alts on non-answer alts");
        };
        let step_key = if S::ENABLED {
            Some(PredKey::of_term(goal).unwrap_or_else(invalid_goal_key))
        } else {
            None
        };
        while *next < answers.len() {
            let answer = &answers[*next];
            *next += 1;
            self.budget.step()?;
            if let Some(key) = step_key {
                self.attribute_step(key);
            }
            let instance = if answer.n_vars == 0 {
                answer.term.clone()
            } else {
                let base = self.store.alloc_block(answer.n_vars);
                answer.term.offset_vars(base)
            };
            if self.store.unify(goal, &instance) {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Handle control constructs; `None` means the goal is not a control
    /// construct; `Some(cont?)` is the continue/fail outcome.
    fn try_control(&mut self, name: Sym, goal: &Term) -> EngineResult<Option<bool>> {
        let args = goal.args();
        let out = if name == symbols::true_() && args.is_empty() {
            Some(true)
        } else if (name == symbols::fail() || name == Sym::new("false")) && args.is_empty() {
            Some(false)
        } else if name == symbols::and() && args.len() == 2 {
            self.cont = Cont::push(&self.cont, args[1].clone());
            self.cont = Cont::push(&self.cont, args[0].clone());
            Some(true)
        } else if name == symbols::or() && args.len() == 2 {
            self.cps.push(ChoicePoint {
                cont: Rc::clone(&self.cont),
                mark: self.store.mark(),
                ranges: Rc::clone(&self.ranges),
                alts: Alts::Disjunct {
                    right: args[1].clone(),
                },
            });
            self.cont = Cont::push(&self.cont, args[0].clone());
            Some(true)
        } else if name == symbols::not() && args.len() == 1 {
            // Floundering check (§III.A): closed-world evaluation of a
            // non-ground negation is unsound — `not(open(X))` with unbound
            // `X` is neither "no X is open" nor "some X is not open" under
            // SLDNF. Report it instead of silently answering.
            let negated = resolve_deep(&self.store, &args[0]);
            if !negated.is_ground() {
                return Err(EngineError::NonGroundNegation { goal: negated });
            }
            Some(!self.prove_resolved(negated)?)
        } else if name == symbols::absent() && args.len() == 1 {
            // Existentially-closed negation: "no instance of G is
            // derivable". Free variables are local to the negation by
            // construction, so no groundness requirement applies.
            Some(!self.prove_sub(&args[0])?)
        } else if name == symbols::forall() && args.len() == 2 {
            // forall(C, T) holds iff no solution of C violates T:
            // absent((C, not(T))). The outer negation is existential over
            // the quantified variables (they are *meant* to be free); the
            // inner `not(T)` is still groundness-checked when the
            // sub-machine reaches it, after C has bound them — catching
            // non-range-restricted forall templates.
            let counterexample = Term::and(args[0].clone(), Term::not(args[1].clone()));
            Some(!self.prove_sub(&counterexample)?)
        } else if name == symbols::once() && args.len() == 1 {
            Some(self.once_sub(&args[0])?)
        } else if name == symbols::call() && args.len() == 1 {
            self.cont = Cont::push(&self.cont, args[0].clone());
            Some(true)
        } else if name == symbols::findall() && args.len() == 3 {
            let items = self.findall_sub(&args[0], &args[1], false)?;
            Some(self.store.unify(&Term::list(items), &args[2]))
        } else if name == symbols::card() && args.len() == 2 {
            // The paper's cardinality primitive (§VII.B): the number of
            // *distinct* provable instances of the formula.
            let items = self.findall_sub(&args[0], &args[0], true)?;
            let count = arith::checked_len(items.len(), "card/2")?;
            Some(self.store.unify(&count, &args[1]))
        } else if name == symbols::aggregate() && args.len() == 4 {
            Some(self.aggregate_sub(&args[0], &args[1], &args[2], &args[3])?)
        } else if name == symbols::between() && args.len() == 3 {
            Some(self.between(&args[0], &args[1], &args[2])?)
        } else if name == Sym::new("range_call") && args.len() == 2 {
            // range_call(G, Cs): declare that, while G runs, each
            // rc(X, IV) in the list Cs bounds the still-unbound variable X
            // to the numeric interval IV. The bounds are pruning hints for
            // the KB's range indexes; the `$range_chk` pushed behind G
            // re-verifies every solution (and retires the bounds), so a
            // wrapped goal — which keeps its original filter goals —
            // solves exactly as the unwrapped one. Non-variable or
            // non-parseable entries contribute nothing.
            let mut pushed: i64 = 0;
            let mut cursor = args[1].clone();
            loop {
                let cell = self.store.deref(&cursor).clone();
                let Term::Compound(f, cell_args) = &cell else {
                    break;
                };
                if *f != symbols::cons() || cell_args.len() != 2 {
                    break;
                }
                let item = self.store.deref(&cell_args[0]).clone();
                if let Term::Compound(rf, rc_args) = &item {
                    if *rf == Sym::new("rc") && rc_args.len() == 2 {
                        let var = match self.store.deref(&rc_args[0]) {
                            Term::Var(v) => Some(*v),
                            _ => None,
                        };
                        if let Some(v) = var {
                            if let Some(range) = self.parse_range(&rc_args[1]) {
                                self.ranges = Rc::new(RangeCtx::Bound {
                                    var: v,
                                    range,
                                    rest: Rc::clone(&self.ranges),
                                });
                                pushed += 1;
                            }
                        }
                    }
                }
                cursor = cell_args[1].clone();
            }
            self.cont = Cont::push(
                &self.cont,
                Term::pred("$range_chk", vec![args[1].clone(), Term::Int(pushed)]),
            );
            self.cont = Cont::push(&self.cont, args[0].clone());
            Some(true)
        } else if name == Sym::new("$range_chk") && args.len() == 2 {
            let ok = self.range_chk(&args[0]);
            // Retire this range_call's bounds unconditionally: the goal's
            // derivation extent ends here. Backtracking into the goal
            // restores them from the choice points' captured contexts.
            if let Term::Int(n) = self.store.deref(&args[1]) {
                self.pop_ranges(*n);
            }
            Some(ok)
        } else {
            None
        };
        Ok(out)
    }

    /// Decode an `iv(Lo, Hi, LoEnd, HiEnd)` term against the current
    /// store: bounds are the atoms `minf`/`inf` or arithmetic expressions,
    /// ends are `closed`/`open`. `None` (no constraint) for anything else
    /// — including NaN bounds and unbound subterms.
    fn parse_range(&self, t: &Term) -> Option<NumRange> {
        let iv = self.store.deref(t).clone();
        let Term::Compound(f, args) = &iv else {
            return None;
        };
        if *f != Sym::new("iv") || args.len() != 4 {
            return None;
        }
        let bound = |machine: &Self, t: &Term, infinity: f64| -> Option<f64> {
            if let Term::Atom(s) = machine.store.deref(t) {
                if *s == Sym::new("minf") {
                    return Some(f64::NEG_INFINITY);
                }
                if *s == Sym::new("inf") {
                    return Some(infinity);
                }
            }
            let v = crate::arith::eval(&machine.store, t).ok()?.as_f64();
            if v.is_nan() {
                None
            } else {
                Some(v)
            }
        };
        let end = |machine: &Self, t: &Term| -> Option<bool> {
            match machine.store.deref(t) {
                Term::Atom(s) if *s == Sym::new("closed") => Some(false),
                Term::Atom(s) if *s == Sym::new("open") => Some(true),
                _ => None,
            }
        };
        Some(NumRange::new(
            bound(self, &args[0], f64::INFINITY)?,
            end(self, &args[2])?,
            bound(self, &args[1], f64::INFINITY)?,
            end(self, &args[3])?,
        ))
    }

    /// Verify a `range_call` constraint list against the current bindings:
    /// a constraint rejects only when its variable is bound to a number,
    /// its interval parses, and the number falls outside — everything else
    /// passes vacuously (the wrapped goal's own filter goals decide).
    fn range_chk(&self, cs: &Term) -> bool {
        let mut cursor = cs.clone();
        loop {
            let cell = self.store.deref(&cursor).clone();
            let Term::Compound(f, cell_args) = &cell else {
                return true;
            };
            if *f != symbols::cons() || cell_args.len() != 2 {
                return true;
            }
            let item = self.store.deref(&cell_args[0]).clone();
            if let Term::Compound(rf, rc_args) = &item {
                if *rf == Sym::new("rc") && rc_args.len() == 2 {
                    let value = match self.store.deref(&rc_args[0]) {
                        Term::Int(i) => Some(*i as f64),
                        Term::Float(v) => Some(v.get()),
                        _ => None,
                    };
                    if let Some(x) = value {
                        if let Some(range) = self.parse_range(&rc_args[1]) {
                            if !range.contains(x) {
                                return false;
                            }
                        }
                    }
                }
            }
            cursor = cell_args[1].clone();
        }
    }

    /// Drop the `n` most recent range-context entries.
    fn pop_ranges(&mut self, n: i64) {
        for _ in 0..n {
            let rest = match &*self.ranges {
                RangeCtx::Bound { rest, .. } => Rc::clone(rest),
                RangeCtx::Empty => break,
            };
            self.ranges = rest;
        }
    }

    /// Snapshot the active range bounds for a candidate query, re-deref'ing
    /// each entry's variable: an entry whose variable got bound since the
    /// push is inert (the binding itself keys the index), and aliased
    /// variables are tracked under their current representative.
    fn collect_bounds(&self) -> BoundSet {
        let mut bounds = BoundSet::default();
        let mut cur: &RangeCtx = &self.ranges;
        while let RangeCtx::Bound { var, range, rest } = cur {
            let probe = Term::Var(*var);
            if let Term::Var(v) = self.store.deref(&probe) {
                bounds.insert(*v, *range);
            }
            cur = rest;
        }
        bounds
    }

    /// NAF / forall support: is the (resolved) goal provable? Runs in a
    /// sub-machine so no bindings escape.
    fn prove_sub(&mut self, goal: &Term) -> EngineResult<bool> {
        let resolved = resolve_deep(&self.store, goal);
        self.prove_resolved(resolved)
    }

    /// As [`Self::prove_sub`], for a goal already resolved against the
    /// current store.
    fn prove_resolved(&mut self, resolved: Term) -> EngineResult<bool> {
        let _guard = self.budget.enter()?;
        let mut sub = self.sub_machine(resolved)?;
        sub.next_solution()
    }

    /// `once(G)`: commit to the first solution of `G`, propagating its
    /// bindings into the outer store by unifying `G` with the solved
    /// instance.
    fn once_sub(&mut self, goal: &Term) -> EngineResult<bool> {
        let _guard = self.budget.enter()?;
        let resolved = resolve_deep(&self.store, goal);
        let mut sub = self.sub_machine(resolved.clone())?;
        if sub.next_solution()? {
            let instance = resolve_deep(&sub.store, &resolved);
            Ok(self.store.unify(goal, &instance))
        } else {
            Ok(false)
        }
    }

    /// Enumerate all solutions of `goal`, collecting the instantiated
    /// `template` for each. With `distinct`, duplicates are dropped (the
    /// `card` semantics).
    fn findall_sub(
        &mut self,
        template: &Term,
        goal: &Term,
        distinct: bool,
    ) -> EngineResult<Vec<Term>> {
        let _guard = self.budget.enter()?;
        // Resolve template and goal together so shared variables stay
        // shared inside the sub-machine.
        let pair = Term::pred("$pair", vec![template.clone(), goal.clone()]);
        let pair = resolve_deep(&self.store, &pair);
        let (template, goal) = (pair.args()[0].clone(), pair.args()[1].clone());
        let mut sub = self.sub_machine(goal)?;
        let mut out = Vec::new();
        let mut seen = crate::hash::FxHashSet::default();
        while sub.next_solution()? {
            let inst = resolve_deep(&sub.store, &template);
            if distinct {
                // Dedup up to variable renaming: fresh sub-machine ids must
                // not make alpha-equivalent instances look distinct.
                if seen.insert(table::canonicalize_vars(&inst)) {
                    out.push(inst);
                }
            } else {
                out.push(inst);
            }
        }
        Ok(out)
    }

    /// `aggregate(Op, Template, Goal, Result)` where `Op` is one of
    /// `avg|sum|min|max|count`. `avg`, `min`, and `max` *fail* on an empty
    /// solution set (no points → no average, matching the paper's area-
    /// average meta-fact, which only derives a value when subarea values
    /// exist); `sum` and `count` yield 0.
    fn aggregate_sub(
        &mut self,
        op: &Term,
        template: &Term,
        goal: &Term,
        result: &Term,
    ) -> EngineResult<bool> {
        let op = match self.store.deref(op) {
            Term::Atom(s) => *s,
            other => {
                return Err(EngineError::TypeError {
                    context: "aggregate/4",
                    expected: "one of avg|sum|min|max|count",
                    found: other.clone(),
                })
            }
        };
        let items = self.findall_sub(template, goal, false)?;
        if op == symbols::count() {
            let count = arith::checked_len(items.len(), "aggregate/4")?;
            return Ok(self.store.unify(&count, result));
        }
        let mut nums = Vec::with_capacity(items.len());
        for item in &items {
            match item.as_f64() {
                Some(v) => nums.push(v),
                None => {
                    return Err(EngineError::TypeError {
                        context: "aggregate/4",
                        expected: "numeric template instances",
                        found: item.clone(),
                    })
                }
            }
        }
        let value = if op == symbols::sum() {
            Some(nums.iter().sum::<f64>())
        } else if nums.is_empty() {
            None
        } else if op == symbols::avg() {
            Some(nums.iter().sum::<f64>() / nums.len() as f64)
        } else if op == symbols::min() {
            nums.iter().copied().reduce(f64::min)
        } else if op == symbols::max() {
            nums.iter().copied().reduce(f64::max)
        } else {
            return Err(EngineError::TypeError {
                context: "aggregate/4",
                expected: "one of avg|sum|min|max|count",
                found: Term::Atom(op),
            });
        };
        match value {
            Some(v) => Ok(self.store.unify(&Term::float(v), result)),
            None => Ok(false),
        }
    }

    fn between(&mut self, lo: &Term, hi: &Term, x: &Term) -> EngineResult<bool> {
        let lo = crate::arith::eval(&self.store, lo)?;
        let hi = crate::arith::eval(&self.store, hi)?;
        let (lo, hi) = match (lo, hi) {
            (crate::arith::Num::Int(a), crate::arith::Num::Int(b)) => (a, b),
            _ => {
                return Err(EngineError::TypeError {
                    context: "between/3",
                    expected: "integer bounds",
                    found: Term::atom("float"),
                })
            }
        };
        match self.store.deref(x).clone() {
            Term::Int(v) => Ok(lo <= v && v <= hi),
            Term::Var(_) => {
                if lo > hi {
                    return Ok(false);
                }
                if lo < hi {
                    self.cps.push(ChoicePoint {
                        cont: Rc::clone(&self.cont),
                        mark: self.store.mark(),
                        ranges: Rc::clone(&self.ranges),
                        alts: Alts::Between {
                            var: x.clone(),
                            cur: lo + 1,
                            hi,
                        },
                    });
                }
                Ok(self.store.unify(x, &Term::Int(lo)))
            }
            other => Err(EngineError::TypeError {
                context: "between/3",
                expected: "integer or variable",
                found: other,
            }),
        }
    }

    fn call_user(&mut self, key: PredKey, goal: Term) -> EngineResult<bool> {
        let bounds = match &*self.ranges {
            RangeCtx::Empty => BoundSet::default(),
            _ => self.collect_bounds(),
        };
        let clauses = self.kb.candidates(key, &self.store, goal.args(), &bounds);
        if clauses.is_empty() {
            if self.kb.strict() && !self.kb.defined(key) {
                return Err(EngineError::UnknownPredicate {
                    name: key.name,
                    arity: key.arity as usize,
                });
            }
            return Ok(false);
        }
        let mut alts = Alts::Clauses {
            goal,
            clauses,
            next: 0,
        };
        let cont = Rc::clone(&self.cont);
        let mark = self.store.mark();
        let ranges = Rc::clone(&self.ranges);
        if self.try_clause_alts(&mut alts)? {
            // More candidates may remain; record them.
            if let Alts::Clauses { clauses, next, .. } = &alts {
                if *next < clauses.len() {
                    self.cps.push(ChoicePoint {
                        cont,
                        mark,
                        ranges,
                        alts,
                    });
                }
            }
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Try clause candidates from the cursor until one's head unifies; on
    /// success push its body and return true. The cursor is left at the
    /// next untried candidate.
    fn try_clause_alts(&mut self, alts: &mut Alts<'kb>) -> EngineResult<bool> {
        let Alts::Clauses {
            goal,
            clauses,
            next,
        } = alts
        else {
            unreachable!("try_clause_alts on non-clause alts");
        };
        let step_key = if S::ENABLED {
            Some(PredKey::of_term(goal).unwrap_or_else(invalid_goal_key))
        } else {
            None
        };
        while *next < clauses.len() {
            let clause = Arc::clone(clauses.get(*next).expect("cursor within len"));
            *next += 1;
            self.budget.step()?;
            if let Some(key) = step_key {
                self.attribute_step(key);
            }
            self.counters
                .resolutions
                .set(self.counters.resolutions.get() + 1);
            let base = self.store.alloc_block(clause.n_vars);
            let head = clause.head.offset_vars(base);
            if self.store.unify(goal, &head) {
                let body = clause.body.offset_vars(base);
                if body != Term::Atom(symbols::true_()) {
                    self.cont = Cont::push(&self.cont, body);
                }
                return Ok(true);
            }
            // Head mismatch: bindings already undone by unify's failure
            // path; the allocated block is simply abandoned.
        }
        Ok(false)
    }

    /// Restore the most recent choice point that still has an alternative.
    /// Returns false when none remain.
    fn backtrack(&mut self) -> EngineResult<bool> {
        while let Some(mut cp) = self.cps.pop() {
            self.store.undo_to(cp.mark);
            self.cont = Rc::clone(&cp.cont);
            self.ranges = Rc::clone(&cp.ranges);
            match &mut cp.alts {
                Alts::Disjunct { right } => {
                    let right = right.clone();
                    if S::ENABLED {
                        let key = PredKey {
                            name: symbols::or(),
                            arity: 2,
                        };
                        self.emit(Port::Redo, key, right.clone());
                    }
                    self.cont = Cont::push(&self.cont, right);
                    return Ok(true);
                }
                Alts::Between { var, cur, hi } => {
                    let (var, cur, hi) = (var.clone(), *cur, *hi);
                    if cur < hi {
                        self.cps.push(ChoicePoint {
                            cont: Rc::clone(&cp.cont),
                            mark: cp.mark,
                            ranges: Rc::clone(&cp.ranges),
                            alts: Alts::Between {
                                var: var.clone(),
                                cur: cur + 1,
                                hi,
                            },
                        });
                    }
                    if S::ENABLED {
                        let key = PredKey {
                            name: symbols::between(),
                            arity: 3,
                        };
                        self.emit(
                            Port::Redo,
                            key,
                            Term::compound(
                                symbols::between(),
                                vec![Term::Int(cur), Term::Int(hi), var.clone()],
                            ),
                        );
                    }
                    if self.store.unify(&var, &Term::Int(cur)) {
                        if S::ENABLED {
                            let key = PredKey {
                                name: symbols::between(),
                                arity: 3,
                            };
                            self.emit(
                                Port::Exit,
                                key,
                                Term::compound(
                                    symbols::between(),
                                    vec![Term::Int(cur), Term::Int(hi), Term::Int(cur)],
                                ),
                            );
                        }
                        return Ok(true);
                    }
                    // Unification can only fail if `var` got bound by an
                    // earlier goal on this path — keep backtracking.
                }
                Alts::Clauses { .. } | Alts::Answers { .. } | Alts::Live { .. } => {
                    if self.resume_stored_alts(cp)? {
                        return Ok(true);
                    }
                }
            }
        }
        self.exhausted = true;
        Ok(false)
    }

    /// Resume a clause or cached-answer choice point, emitting the
    /// Redo/Exit/Fail ports around the retry.
    fn resume_stored_alts(&mut self, cp: ChoicePoint<'kb>) -> EngineResult<bool> {
        let cont = cp.cont;
        let mark = cp.mark;
        let ranges = cp.ranges;
        let mut alts = cp.alts;
        let redo: Option<(PredKey, Term)> = if S::ENABLED {
            let goal = match &alts {
                Alts::Clauses { goal, .. }
                | Alts::Answers { goal, .. }
                | Alts::Live { goal, .. } => goal,
                _ => unreachable!("resume_stored_alts on control alts"),
            };
            let key = PredKey::of_term(goal).unwrap_or_else(invalid_goal_key);
            self.emit(Port::Redo, key, goal.clone());
            Some((key, goal.clone()))
        } else {
            None
        };
        let resumed = match &alts {
            Alts::Clauses { .. } => self.try_clause_alts(&mut alts)?,
            Alts::Answers { .. } => self.try_answer_alts(&mut alts)?,
            Alts::Live { .. } => self.try_live_alts(&mut alts)?,
            _ => unreachable!("resume_stored_alts on control alts"),
        };
        if resumed {
            let more = match &alts {
                Alts::Clauses { clauses, next, .. } => *next < clauses.len(),
                Alts::Answers { answers, next, .. } => *next < answers.len(),
                // A live cursor at the end of the list may still see more
                // answers once producers re-pass: always retryable.
                Alts::Live { .. } => true,
                _ => unreachable!("resume_stored_alts on control alts"),
            };
            if more {
                self.cps.push(ChoicePoint {
                    cont,
                    mark,
                    ranges,
                    alts,
                });
            }
            if let Some((key, goal)) = redo {
                self.emit(Port::Exit, key, resolve_deep(&self.store, &goal));
            }
            Ok(true)
        } else {
            if let Some((key, goal)) = redo {
                self.emit(Port::Fail, key, goal);
            }
            Ok(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::KnowledgeBase;

    fn kb_roads() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(Term::pred("road", vec![Term::atom("s1")]));
        kb.assert_fact(Term::pred("road", vec![Term::atom("s2")]));
        kb.assert_fact(Term::pred(
            "road_intersection",
            vec![Term::atom("s1"), Term::atom("s2")],
        ));
        kb
    }

    fn solve(kb: &KnowledgeBase, goal: Term) -> Vec<Solution> {
        Solver::new(kb, Budget::default()).solve_all(goal).unwrap()
    }

    #[test]
    fn ground_fact_query() {
        let kb = kb_roads();
        let s = Solver::new(&kb, Budget::default());
        assert!(s.prove(Term::pred("road", vec![Term::atom("s1")])).unwrap());
        assert!(!s.prove(Term::pred("road", vec![Term::atom("s9")])).unwrap());
    }

    #[test]
    fn variable_query_enumerates() {
        let kb = kb_roads();
        let sols = solve(&kb, Term::pred("road", vec![Term::var(0)]));
        let names: Vec<String> = sols
            .iter()
            .map(|s| s.get(Var(0)).unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["s1", "s2"]);
    }

    #[test]
    fn conjunction_joins() {
        let kb = kb_roads();
        let goal = Term::and(
            Term::pred("road", vec![Term::var(0)]),
            Term::pred("road_intersection", vec![Term::var(0), Term::var(1)]),
        );
        let sols = solve(&kb, goal);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].get(Var(0)).unwrap(), &Term::atom("s1"));
        assert_eq!(sols[0].get(Var(1)).unwrap(), &Term::atom("s2"));
    }

    #[test]
    fn disjunction_both_branches() {
        let kb = kb_roads();
        let goal = Term::or(
            Term::pred("road", vec![Term::var(0)]),
            Term::unify(Term::var(0), Term::atom("ferry")),
        );
        let sols = solve(&kb, goal);
        assert_eq!(sols.len(), 3);
        assert_eq!(sols[2].get(Var(0)).unwrap(), &Term::atom("ferry"));
    }

    #[test]
    fn rules_chain() {
        let mut kb = kb_roads();
        // connected(X, Y) :- road_intersection(X, Y) ; road_intersection(Y, X).
        kb.assert_clause(
            Term::pred("connected", vec![Term::var(0), Term::var(1)]),
            Term::or(
                Term::pred("road_intersection", vec![Term::var(0), Term::var(1)]),
                Term::pred("road_intersection", vec![Term::var(1), Term::var(0)]),
            ),
        );
        let s = Solver::new(&kb, Budget::default());
        assert!(s
            .prove(Term::pred(
                "connected",
                vec![Term::atom("s2"), Term::atom("s1")]
            ))
            .unwrap());
    }

    #[test]
    fn naf_is_open_world_test() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(Term::pred("bridge", vec![Term::atom("b1")]));
        kb.assert_fact(Term::pred("bridge", vec![Term::atom("b2")]));
        kb.assert_fact(Term::pred("open", vec![Term::atom("b1")]));
        // closed(X) :- bridge(X), not(open(X)).   (§III.A example)
        kb.assert_clause(
            Term::pred("closed", vec![Term::var(0)]),
            Term::and(
                Term::pred("bridge", vec![Term::var(0)]),
                Term::not(Term::pred("open", vec![Term::var(0)])),
            ),
        );
        let sols = solve(&kb, Term::pred("closed", vec![Term::var(0)]));
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].get(Var(0)).unwrap(), &Term::atom("b2"));
    }

    #[test]
    fn forall_all_bridges_open() {
        let mut kb = KnowledgeBase::new();
        for (b, r) in [("b1", "r1"), ("b2", "r1"), ("b3", "r2")] {
            kb.assert_fact(Term::pred("bridge_on", vec![Term::atom(b), Term::atom(r)]));
        }
        kb.assert_fact(Term::pred("open", vec![Term::atom("b1")]));
        kb.assert_fact(Term::pred("open", vec![Term::atom("b2")]));
        kb.assert_fact(Term::pred("road", vec![Term::atom("r1")]));
        kb.assert_fact(Term::pred("road", vec![Term::atom("r2")]));
        // open_road(X) :- road(X), forall(bridge_on(Y, X), open(Y)).  (§III.A)
        kb.assert_clause(
            Term::pred("open_road", vec![Term::var(0)]),
            Term::and(
                Term::pred("road", vec![Term::var(0)]),
                Term::forall(
                    Term::pred("bridge_on", vec![Term::var(1), Term::var(0)]),
                    Term::pred("open", vec![Term::var(1)]),
                ),
            ),
        );
        let sols = solve(&kb, Term::pred("open_road", vec![Term::var(0)]));
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].get(Var(0)).unwrap(), &Term::atom("r1"));
    }

    /// `range_call(G, Cs)` is semantically transparent — same solutions,
    /// same order, with and without a matching range index — and its
    /// bounds apply only inside G's derivation extent.
    #[test]
    fn range_call_is_transparent_and_scoped() {
        use crate::kb::{ArgPath, RangeSpec};
        let build = |indexed: bool| {
            let mut kb = KnowledgeBase::new();
            if indexed {
                kb.set_range_indexes(
                    PredKey::new("val", 1),
                    vec![RangeSpec::Interval(ArgPath::arg(0))],
                );
            }
            for i in 0..10 {
                kb.assert_fact(Term::pred("val", vec![Term::int(i)]));
            }
            kb
        };
        // range_call(val(X), [rc(X, iv(2, 6, open, closed))]), X < 5
        let wrapped = Term::and(
            Term::pred(
                "range_call",
                vec![
                    Term::pred("val", vec![Term::var(0)]),
                    Term::list(vec![Term::pred(
                        "rc",
                        vec![
                            Term::var(0),
                            Term::pred(
                                "iv",
                                vec![
                                    Term::int(2),
                                    Term::int(6),
                                    Term::atom("open"),
                                    Term::atom("closed"),
                                ],
                            ),
                        ],
                    )]),
                ],
            ),
            Term::pred("<", vec![Term::var(0), Term::int(5)]),
        );
        let collect = |kb: &KnowledgeBase| -> Vec<String> {
            solve(kb, wrapped.clone())
                .iter()
                .map(|s| s.get(Var(0)).unwrap().to_string())
                .collect()
        };
        let indexed = collect(&build(true));
        assert_eq!(indexed, vec!["3", "4"], "chk ∧ filter semantics");
        assert_eq!(indexed, collect(&build(false)), "indexed ≡ unindexed");
        // After the range_call, the bound is retired: a later enumeration
        // of the same predicate through the same variable-free pattern
        // must see every clause again.
        let seq = Term::and(
            Term::pred(
                "range_call",
                vec![
                    Term::pred("val", vec![Term::var(0)]),
                    Term::list(vec![Term::pred(
                        "rc",
                        vec![
                            Term::var(0),
                            Term::pred(
                                "iv",
                                vec![
                                    Term::int(4),
                                    Term::int(4),
                                    Term::atom("closed"),
                                    Term::atom("closed"),
                                ],
                            ),
                        ],
                    )]),
                ],
            ),
            Term::pred("val", vec![Term::var(1)]),
        );
        let kb = build(true);
        let sols = solve(&kb, seq);
        assert_eq!(sols.len(), 10, "second enumeration must be unpruned");
        // Unbound-tail and garbage constraints pass vacuously.
        let vacuous = Term::pred(
            "range_call",
            vec![
                Term::pred("val", vec![Term::var(0)]),
                Term::list(vec![Term::atom("junk")]),
            ],
        );
        assert_eq!(solve(&kb, vacuous).len(), 10);
    }

    #[test]
    fn findall_collects_in_order() {
        let kb = kb_roads();
        let goal = Term::pred(
            "findall",
            vec![
                Term::var(0),
                Term::pred("road", vec![Term::var(0)]),
                Term::var(1),
            ],
        );
        let sols = solve(&kb, goal);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].get(Var(1)).unwrap().to_string(), "[s1, s2]");
    }

    #[test]
    fn findall_on_no_solutions_gives_nil() {
        let kb = KnowledgeBase::new();
        let goal = Term::pred(
            "findall",
            vec![
                Term::var(0),
                Term::pred("unicorn", vec![Term::var(0)]),
                Term::var(1),
            ],
        );
        let sols = solve(&kb, goal);
        assert_eq!(sols[0].get(Var(1)).unwrap(), &Term::nil());
    }

    #[test]
    fn card_counts_distinct_instances() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(Term::pred(
            "color",
            vec![Term::atom("p1"), Term::atom("white")],
        ));
        kb.assert_fact(Term::pred(
            "color",
            vec![Term::atom("p2"), Term::atom("white")],
        ));
        kb.assert_fact(Term::pred(
            "color",
            vec![Term::atom("p2"), Term::atom("white")],
        )); // duplicate
        let goal = Term::pred(
            "card",
            vec![
                Term::pred("color", vec![Term::var(0), Term::atom("white")]),
                Term::var(1),
            ],
        );
        let sols = solve(&kb, goal);
        assert_eq!(sols[0].get(Var(1)).unwrap(), &Term::Int(2));
    }

    #[test]
    fn card_dedups_alpha_equivalent_instances() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(Term::pred("p", vec![Term::atom("a")]));
        // Two identical rules: q(X, Y) :- p(X).  Y stays unbound, with a
        // different fresh id per derivation.
        for _ in 0..2 {
            kb.assert_clause(
                Term::pred("q", vec![Term::var(0), Term::var(1)]),
                Term::pred("p", vec![Term::var(0)]),
            );
        }
        let goal = Term::pred(
            "card",
            vec![
                Term::pred("q", vec![Term::var(0), Term::var(1)]),
                Term::var(2),
            ],
        );
        let sols = solve(&kb, goal);
        assert_eq!(sols[0].get(Var(2)).unwrap(), &Term::Int(1));
    }

    #[test]
    fn aggregate_avg_sum_min_max() {
        let mut kb = KnowledgeBase::new();
        for (p, v) in [("a", 10.0), ("b", 20.0), ("c", 60.0)] {
            kb.assert_fact(Term::pred("elev", vec![Term::atom(p), Term::float(v)]));
        }
        let agg = |op: &str| {
            Term::pred(
                "aggregate",
                vec![
                    Term::atom(op),
                    Term::var(0),
                    Term::pred("elev", vec![Term::var(1), Term::var(0)]),
                    Term::var(2),
                ],
            )
        };
        let get = |op: &str| {
            let sols = solve(&kb, agg(op));
            sols[0].get(Var(2)).unwrap().as_f64().unwrap()
        };
        assert_eq!(get("avg"), 30.0);
        assert_eq!(get("sum"), 90.0);
        assert_eq!(get("min"), 10.0);
        assert_eq!(get("max"), 60.0);
    }

    #[test]
    fn aggregate_avg_of_empty_fails() {
        let kb = KnowledgeBase::new();
        let goal = Term::pred(
            "aggregate",
            vec![
                Term::atom("avg"),
                Term::var(0),
                Term::pred("no_such", vec![Term::var(0)]),
                Term::var(1),
            ],
        );
        assert!(solve(&kb, goal).is_empty());
    }

    #[test]
    fn between_enumerates_and_tests() {
        let kb = KnowledgeBase::new();
        let goal = Term::pred("between", vec![Term::int(1), Term::int(4), Term::var(0)]);
        let sols = solve(&kb, goal);
        let vals: Vec<i64> = sols
            .iter()
            .map(|s| s.get(Var(0)).unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(vals, vec![1, 2, 3, 4]);
        let s = Solver::new(&kb, Budget::default());
        assert!(s
            .prove(Term::pred(
                "between",
                vec![Term::int(1), Term::int(4), Term::int(3)]
            ))
            .unwrap());
        assert!(!s
            .prove(Term::pred(
                "between",
                vec![Term::int(1), Term::int(4), Term::int(9)]
            ))
            .unwrap());
    }

    #[test]
    fn once_commits_to_first() {
        let kb = kb_roads();
        let goal = Term::pred("once", vec![Term::pred("road", vec![Term::var(0)])]);
        let sols = solve(&kb, goal);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].get(Var(0)).unwrap(), &Term::atom("s1"));
    }

    #[test]
    fn recursion_terminates_with_base_case() {
        let mut kb = KnowledgeBase::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            kb.assert_fact(Term::pred("edge", vec![Term::atom(a), Term::atom(b)]));
        }
        kb.assert_clause(
            Term::pred("path", vec![Term::var(0), Term::var(1)]),
            Term::pred("edge", vec![Term::var(0), Term::var(1)]),
        );
        kb.assert_clause(
            Term::pred("path", vec![Term::var(0), Term::var(1)]),
            Term::and(
                Term::pred("edge", vec![Term::var(0), Term::var(2)]),
                Term::pred("path", vec![Term::var(2), Term::var(1)]),
            ),
        );
        let s = Solver::new(&kb, Budget::default());
        assert!(s
            .prove(Term::pred("path", vec![Term::atom("a"), Term::atom("d")]))
            .unwrap());
        let sols = solve(&kb, Term::pred("path", vec![Term::atom("a"), Term::var(0)]));
        assert_eq!(sols.len(), 3);
    }

    #[test]
    fn infinite_recursion_hits_step_limit() {
        let mut kb = KnowledgeBase::new();
        kb.assert_clause(Term::atom("loop"), Term::atom("loop"));
        let s = Solver::new(&kb, Budget::new(10_000, 16));
        assert!(matches!(
            s.prove(Term::atom("loop")),
            Err(EngineError::StepLimit { .. })
        ));
    }

    #[test]
    fn unknown_predicate_fails_open_world() {
        let kb = KnowledgeBase::new();
        let s = Solver::new(&kb, Budget::default());
        assert!(!s.prove(Term::atom("never_defined")).unwrap());
    }

    #[test]
    fn unknown_predicate_errors_in_strict_mode() {
        let mut kb = KnowledgeBase::new();
        kb.set_strict(true);
        let s = Solver::new(&kb, Budget::default());
        assert!(matches!(
            s.prove(Term::atom("never_defined")),
            Err(EngineError::UnknownPredicate { .. })
        ));
    }

    #[test]
    fn native_predicates_run() {
        let mut kb = KnowledgeBase::new();
        kb.register_native("double", 2, |store, args| {
            let x = crate::arith::eval(store, &args[0])?;
            let doubled = Term::float(x.as_f64() * 2.0);
            Ok(store.unify(&doubled, &args[1]))
        });
        let sols = solve(&kb, Term::pred("double", vec![Term::int(21), Term::var(0)]));
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].get(Var(0)).unwrap().as_f64(), Some(42.0));
    }

    #[test]
    fn iter_streams_lazily_and_matches_solve_all() {
        let kb = kb_roads();
        let solver = Solver::new(&kb, Budget::default());
        let goal = Term::pred("road", vec![Term::var(0)]);
        let streamed: Vec<Solution> = solver
            .iter(goal.clone())
            .unwrap()
            .collect::<EngineResult<Vec<_>>>()
            .unwrap();
        let collected = solver.solve_all(goal.clone()).unwrap();
        assert_eq!(streamed, collected);
        // Taking one answer does not force the rest.
        let first = solver.iter(goal).unwrap().next().unwrap().unwrap();
        assert_eq!(first.get(Var(0)).unwrap(), &Term::atom("s1"));
    }

    #[test]
    fn iter_surfaces_errors() {
        let mut kb = KnowledgeBase::new();
        kb.assert_clause(Term::atom("loop"), Term::atom("loop"));
        let solver = Solver::new(&kb, Budget::new(1_000, 8));
        let mut it = solver.iter(Term::atom("loop")).unwrap();
        assert!(matches!(
            it.next(),
            Some(Err(EngineError::StepLimit { .. }))
        ));
    }

    #[test]
    fn solution_order_follows_clause_order() {
        let mut kb = KnowledgeBase::new();
        for name in ["first", "second", "third"] {
            kb.assert_fact(Term::pred("item", vec![Term::atom(name)]));
        }
        let sols = solve(&kb, Term::pred("item", vec![Term::var(0)]));
        let names: Vec<String> = sols
            .iter()
            .map(|s| s.get(Var(0)).unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }

    #[test]
    fn nested_naf() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(Term::atom("p"));
        let s = Solver::new(&kb, Budget::default());
        // not(not(p)) should hold.
        assert!(s.prove(Term::not(Term::not(Term::atom("p")))).unwrap());
        assert!(!s.prove(Term::not(Term::atom("p"))).unwrap());
        assert!(!s.prove(Term::not(Term::not(Term::atom("q")))).unwrap());
    }

    #[test]
    fn naf_non_ground_goal_is_reported() {
        // §III.A regression: `not(open(X))` with unbound X used to be
        // answered closed-world (flounder silently); it must now be a
        // reported error.
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(Term::pred("open", vec![Term::atom("b1")]));
        let s = Solver::new(&kb, Budget::default());
        let err = s
            .prove(Term::not(Term::pred("open", vec![Term::var(0)])))
            .unwrap_err();
        match err {
            EngineError::NonGroundNegation { goal } => {
                assert_eq!(goal, Term::pred("open", vec![Term::var(0)]));
            }
            other => panic!("expected NonGroundNegation, got {other:?}"),
        }
        // The same holds mid-conjunction: the negation is reached before
        // `X = b` could ever bind X, and the old behaviour silently
        // failed the whole conjunction.
        let goal = Term::and(
            Term::not(Term::pred("open", vec![Term::var(0)])),
            Term::unify(Term::var(0), Term::atom("b")),
        );
        assert!(matches!(
            s.solve_all(goal),
            Err(EngineError::NonGroundNegation { .. })
        ));
    }

    #[test]
    fn naf_ground_by_evaluation_time_is_fine() {
        // `bridge(X), not(open(X))` is safe: X is bound by the positive
        // literal before the negation is evaluated.
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(Term::pred("bridge", vec![Term::atom("b1")]));
        kb.assert_fact(Term::pred("bridge", vec![Term::atom("b2")]));
        kb.assert_fact(Term::pred("open", vec![Term::atom("b1")]));
        let goal = Term::and(
            Term::pred("bridge", vec![Term::var(0)]),
            Term::not(Term::pred("open", vec![Term::var(0)])),
        );
        let sols = solve(&kb, goal);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].get(Var(0)).unwrap(), &Term::atom("b2"));
    }

    #[test]
    fn absent_allows_existential_variables() {
        // `absent(G)` is the explicit existentially-closed reading: no
        // instance of G is derivable. Unbound variables are fine.
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(Term::pred("open", vec![Term::atom("b1")]));
        let s = Solver::new(&kb, Budget::default());
        // Some bridge is open → absent fails.
        assert!(!s
            .prove(Term::absent(Term::pred("open", vec![Term::var(0)])))
            .unwrap());
        // Nothing is closed → absent succeeds.
        assert!(s
            .prove(Term::absent(Term::pred("closed", vec![Term::var(0)])))
            .unwrap());
        // And no bindings leak out of the failed scan.
        let goal = Term::and(
            Term::absent(Term::pred("closed", vec![Term::var(0)])),
            Term::unify(Term::var(0), Term::atom("b")),
        );
        let sols = solve(&kb, goal);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].get(Var(0)).unwrap(), &Term::atom("b"));
    }

    #[test]
    fn forall_non_range_restricted_template_is_reported() {
        // forall(member(X, L), p(X, Y)) with Y unbound: the quantified X
        // is legal, but the template's free Y floundering inside the
        // desugared inner not(T) must be reported.
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(Term::pred("q", vec![Term::atom("a")]));
        let s = Solver::new(&kb, Budget::default());
        let goal = Term::forall(
            Term::pred("q", vec![Term::var(0)]),
            Term::pred("p", vec![Term::var(0), Term::var(1)]),
        );
        assert!(matches!(
            s.prove(goal),
            Err(EngineError::NonGroundNegation { .. })
        ));
    }

    // ---- tabling -----------------------------------------------------

    fn tabled_kb_roads() -> KnowledgeBase {
        let mut kb = kb_roads();
        kb.set_tabling(true);
        kb.mark_tabled(PredKey {
            name: Sym::new("road"),
            arity: 1,
        });
        kb
    }

    #[test]
    fn tabled_solutions_match_untabled() {
        let plain = kb_roads();
        let tabled = tabled_kb_roads();
        for goal in [
            Term::pred("road", vec![Term::var(0)]),
            Term::pred("road", vec![Term::atom("s1")]),
            Term::pred("road", vec![Term::atom("s9")]),
            Term::and(
                Term::pred("road", vec![Term::var(0)]),
                Term::pred("road_intersection", vec![Term::var(0), Term::var(1)]),
            ),
            Term::not(Term::pred("road", vec![Term::atom("s2")])),
        ] {
            assert_eq!(
                solve(&plain, goal.clone()),
                solve(&tabled, goal.clone()),
                "tabled/untabled divergence on {goal}"
            );
            // Run twice so the second pass replays from the table.
            assert_eq!(solve(&plain, goal.clone()), solve(&tabled, goal));
        }
        assert!(!tabled.table().is_empty());
    }

    #[test]
    fn tabled_hit_skips_resolution() {
        let kb = tabled_kb_roads();
        let goal = Term::pred("road", vec![Term::var(0)]);
        let s1 = Solver::new(&kb, Budget::default());
        assert_eq!(s1.solve_all(goal.clone()).unwrap().len(), 2);
        let stats = s1.stats();
        assert_eq!(stats.table_misses, 1);
        assert_eq!(stats.table_inserts, 1);
        assert_eq!(stats.table_hits, 0);
        // A fresh solver over the same KB replays the cached answers
        // without touching a single clause.
        let s2 = Solver::new(&kb, Budget::default());
        assert_eq!(s2.solve_all(goal).unwrap().len(), 2);
        let stats = s2.stats();
        assert_eq!(stats.table_hits, 1);
        assert_eq!(stats.resolutions, 0);
    }

    #[test]
    fn tabled_variants_share_an_entry() {
        let kb = tabled_kb_roads();
        let s = Solver::new(&kb, Budget::default());
        assert_eq!(
            s.solve_all(Term::pred("road", vec![Term::var(3)]))
                .unwrap()
                .len(),
            2
        );
        assert_eq!(
            s.solve_all(Term::pred("road", vec![Term::var(7)]))
                .unwrap()
                .len(),
            2
        );
        let stats = s.stats();
        assert_eq!(stats.table_misses, 1, "alpha-variant should hit");
        assert_eq!(stats.table_hits, 1);
    }

    #[test]
    fn assert_invalidates_table() {
        let mut kb = tabled_kb_roads();
        let goal = Term::pred("road", vec![Term::var(0)]);
        assert_eq!(solve(&kb, goal.clone()).len(), 2);
        kb.assert_fact(Term::pred("road", vec![Term::atom("s3")]));
        // The stale entry must be dropped, not replayed.
        assert_eq!(solve(&kb, goal.clone()).len(), 3);
        kb.retract_fact(&Term::pred("road", vec![Term::atom("s1")]));
        assert_eq!(solve(&kb, goal).len(), 2);
        assert!(kb.table().stats().invalidations >= 1);
    }

    #[test]
    fn tabled_recursion_terminates() {
        let mut kb = KnowledgeBase::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            kb.assert_fact(Term::pred("edge", vec![Term::atom(a), Term::atom(b)]));
        }
        // path(X, Y) :- edge(X, Y) ; (edge(X, Z), path(Z, Y)).
        kb.assert_clause(
            Term::pred("path", vec![Term::var(0), Term::var(1)]),
            Term::or(
                Term::pred("edge", vec![Term::var(0), Term::var(1)]),
                Term::and(
                    Term::pred("edge", vec![Term::var(0), Term::var(2)]),
                    Term::pred("path", vec![Term::var(2), Term::var(1)]),
                ),
            ),
        );
        let plain_sols = solve(&kb, Term::pred("path", vec![Term::atom("a"), Term::var(0)]));
        kb.set_tabling(true);
        kb.mark_tabled(PredKey {
            name: Sym::new("path"),
            arity: 2,
        });
        let tabled_sols = solve(&kb, Term::pred("path", vec![Term::atom("a"), Term::var(0)]));
        assert_eq!(plain_sols, tabled_sols);
        // Second query replays from the completed table.
        assert_eq!(
            tabled_sols,
            solve(&kb, Term::pred("path", vec![Term::atom("a"), Term::var(0)]))
        );
    }

    #[test]
    fn naf_over_tabled_predicate() {
        let kb = tabled_kb_roads();
        let s = Solver::new(&kb, Budget::default());
        // Non-ground negation is an error even when the predicate is
        // tabled; `absent/1` provides the existential reading.
        assert!(matches!(
            s.prove(Term::not(Term::pred("road", vec![Term::var(0)]))),
            Err(EngineError::NonGroundNegation { .. })
        ));
        assert!(!s
            .prove(Term::absent(Term::pred("road", vec![Term::var(0)])))
            .unwrap());
        assert!(s
            .prove(Term::not(Term::pred("road", vec![Term::atom("s9")])))
            .unwrap());
        // And again, now served from the table.
        assert!(s
            .prove(Term::not(Term::pred("road", vec![Term::atom("s9")])))
            .unwrap());
    }

    #[test]
    fn table_all_tables_every_user_predicate() {
        let mut kb = kb_roads();
        kb.set_tabling(true);
        kb.set_table_all(true);
        let goal = Term::pred("road_intersection", vec![Term::var(0), Term::var(1)]);
        assert_eq!(solve(&kb, goal.clone()).len(), 1);
        assert_eq!(solve(&kb, goal).len(), 1);
        assert!(kb.table().stats().hits >= 1);
    }

    #[test]
    fn tabling_off_by_default() {
        let kb = kb_roads();
        assert!(!kb.tabling_enabled());
        let goal = Term::pred("road", vec![Term::var(0)]);
        assert_eq!(solve(&kb, goal.clone()).len(), 2);
        assert!(kb.table().is_empty());
        let s = Solver::new(&kb, Budget::default());
        s.solve_all(goal).unwrap();
        let stats = s.stats();
        assert_eq!(stats.table_misses, 0);
        assert!(stats.resolutions > 0);
        assert!(stats.steps > 0);
    }

    #[test]
    fn sub_machine_renaming_handles_empty_store() {
        // Regression: spawning a sub-solver (here for `not/1`) before any
        // variable has been bound used to size the child store from
        // `len - 1`, which underflows when the parent store is empty.
        let kb = KnowledgeBase::new();
        let s = Solver::new(&kb, Budget::default());
        assert!(s.prove(Term::not(Term::atom("q"))).unwrap());
    }

    #[test]
    fn oversized_arity_is_an_error_not_a_truncation() {
        let kb = KnowledgeBase::new();
        let s = Solver::new(&kb, Budget::default());
        let goal = Term::pred("huge", vec![Term::Int(0); PredKey::MAX_ARITY + 1]);
        assert!(matches!(
            s.prove(goal),
            Err(EngineError::ArityOverflow { arity, .. }) if arity == PredKey::MAX_ARITY + 1
        ));
    }

    #[test]
    fn cyclic_solution_renders_without_hanging() {
        // With the occurs check off (the default), `X = f(X)` succeeds and
        // binds X cyclically. Reading the solution back must terminate,
        // cutting the cycle at the variable.
        let kb = KnowledgeBase::new();
        let s = Solver::new(&kb, Budget::default());
        let goal = Term::unify(Term::var(0), Term::pred("f", vec![Term::var(0)]));
        let sols = s.solve_all(goal).unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].get(Var(0)).unwrap().to_string(), "f(_0)");
    }

    #[test]
    fn ring_trace_records_the_port_sequence() {
        use crate::trace::RingTrace;
        let kb = kb_roads();
        let solver = Solver::with_sink(&kb, Budget::default(), RingTrace::new(64));
        let sols = solver
            .solve_all(Term::pred("road", vec![Term::var(0)]))
            .unwrap();
        assert_eq!(sols.len(), 2);
        let ring = solver.into_sink();
        let ports: Vec<(Port, String)> = ring
            .events()
            .map(|e| (e.port, e.goal.to_string()))
            .collect();
        assert_eq!(
            ports,
            vec![
                (Port::Call, "road(_0)".to_string()),
                (Port::Exit, "road(s1)".to_string()),
                (Port::Redo, "road(_0)".to_string()),
                (Port::Exit, "road(s2)".to_string()),
            ]
        );
    }

    #[test]
    fn failing_query_ends_its_trace_with_fail() {
        use crate::trace::RingTrace;
        let kb = kb_roads();
        let solver = Solver::with_sink(&kb, Budget::default(), RingTrace::new(64));
        assert!(!solver
            .prove(Term::pred("road", vec![Term::atom("s9")]))
            .unwrap());
        let ring = solver.into_sink();
        let last = ring.events().last().unwrap();
        assert_eq!(last.port, Port::Fail);
        assert_eq!(last.goal.to_string(), "road(s9)");
    }

    #[test]
    fn table_ports_surface_hits_and_inserts() {
        use crate::trace::RingTrace;
        let kb = tabled_kb_roads();
        let goal = Term::pred("road", vec![Term::var(0)]);
        let solver = Solver::with_sink(&kb, Budget::default(), RingTrace::new(256));
        solver.solve_all(goal.clone()).unwrap();
        solver.solve_all(goal).unwrap();
        let ring = solver.into_sink();
        assert!(ring.events().any(|e| e.port == Port::TableInsert));
        assert!(ring.events().any(|e| e.port == Port::TableHit));
    }

    #[test]
    fn profiler_step_totals_match_solver_stats() {
        use crate::trace::Profiler;
        let kb = kb_roads();
        let goal = Term::and(
            Term::pred("road", vec![Term::var(0)]),
            Term::pred("road_intersection", vec![Term::var(0), Term::var(1)]),
        );
        let traced = Solver::with_sink(&kb, Budget::default(), Profiler::new());
        let traced_sols = traced.solve_all(goal.clone()).unwrap();
        let steps = traced.stats().steps;
        let prof = traced.into_sink();
        assert!(steps > 0);
        assert_eq!(prof.total_steps(), steps);
        let row_sum: u64 = prof.rows().iter().map(|(_, p)| p.steps).sum();
        assert_eq!(row_sum, steps);
        // Observation must not perturb the answers.
        assert_eq!(traced_sols, solve(&kb, goal));
    }

    #[test]
    fn tracing_does_not_change_step_counts() {
        use crate::trace::ObserverSink;
        let kb = kb_roads();
        let goal = Term::or(
            Term::pred("road", vec![Term::var(0)]),
            Term::pred("road_intersection", vec![Term::var(0), Term::var(1)]),
        );
        let plain = Solver::new(&kb, Budget::default());
        plain.solve_all(goal.clone()).unwrap();
        let traced = Solver::with_sink(&kb, Budget::default(), ObserverSink::new(true, Some(8)));
        traced.solve_all(goal).unwrap();
        assert_eq!(plain.stats().steps, traced.stats().steps);
        assert_eq!(plain.stats().resolutions, traced.stats().resolutions);
    }
}
