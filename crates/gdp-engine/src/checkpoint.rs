//! Crash-safe checkpoint images of a full knowledge base.
//!
//! A WAL alone makes recovery cost proportional to *total history*: every
//! commit since the base image must be replayed, and the base must be
//! rebuilt exactly as it was when the log was created. A checkpoint bounds
//! both. Every N commits (or on demand) the serving layer serializes the
//! entire knowledge base — clause lists in order, per-predicate generation
//! counters, modification epoch — into a single checksummed image, and
//! recovery becomes *newest valid checkpoint + WAL suffix*.
//!
//! ## File format
//!
//! One record, same framing as a WAL record:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes]
//! payload = magic "GDPC", version: u32 LE, fingerprint: u64 LE,
//!           seq: u64 LE, epoch: u64 LE,
//!           pred_count: u32, (key, clause_count: u32, clause*)*,
//!           gen_count: u32, (key, generation: u64)*
//! ```
//!
//! Predicates are sorted by `(name, arity)` so the image is canonical;
//! clause lists keep assertion order (clause positions are observable
//! through solution order). Terms reuse the WAL codec, so the image is
//! portable across processes with different symbol-interning orders and
//! clause `n_vars` is recomputed on decode.
//!
//! ## Torn images
//!
//! Checkpoints are written to a temporary file, synced, and renamed into
//! place, so a crash mid-checkpoint leaves the previous image intact. If
//! an image is torn or corrupt anyway (CRC mismatch, truncated payload),
//! [`CheckpointImage::read`] returns `Ok(None)` and recovery falls back
//! to an older checkpoint, then to the base image — corruption degrades
//! recovery time, never correctness. A CRC-*valid* image whose
//! [`fingerprint`] does not match the base it is being restored against
//! is different: that means the operator changed the base (`--load`
//! files) between runs, and the store reports a hard error instead of
//! silently diverging.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::chaos::{ChaosFile, IoFaultConfig};
use crate::delta::DeltaOp;
use crate::kb::{Clause, KnowledgeBase, PredKey};
use crate::wal::{crc32, put_clause, put_key, put_u32, put_u64, Cursor};

const MAGIC: &[u8; 4] = b"GDPC";
const VERSION: u32 = 1;

/// Canonical content hash of a knowledge base: FNV-1a 64 over the sorted
/// predicate/clause serialization (names, not interned ids — stable
/// across processes). This is the *base fingerprint* stamped into both
/// WAL headers and checkpoint images: recovery refuses to proceed when
/// the base it was handed hashes differently from the base the log and
/// checkpoints were created over. Validity counters (generations, epoch)
/// are deliberately excluded — the fingerprint identifies stored
/// content, which is what replay positions depend on.
pub fn fingerprint(kb: &KnowledgeBase) -> u64 {
    let mut bytes = Vec::new();
    encode_preds(&mut bytes, &collect_preds(kb));
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in &bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn sort_key(key: &PredKey) -> (String, u16) {
    (key.name.as_str().to_string(), key.arity)
}

fn collect_preds(kb: &KnowledgeBase) -> Vec<(PredKey, Vec<Arc<Clause>>)> {
    let mut keys: Vec<PredKey> = kb
        .iter_clauses()
        .map(|(k, _)| k)
        .collect::<HashSet<_>>()
        .into_iter()
        .collect();
    keys.sort_by_key(sort_key);
    keys.into_iter().map(|k| (k, kb.clauses_of(k))).collect()
}

fn encode_preds(out: &mut Vec<u8>, preds: &[(PredKey, Vec<Arc<Clause>>)]) {
    put_u32(out, preds.len() as u32);
    for (key, clauses) in preds {
        put_key(out, *key);
        put_u32(out, clauses.len() as u32);
        for clause in clauses {
            put_clause(out, clause);
        }
    }
}

/// A decoded (or freshly captured) checkpoint: the full stored content of
/// a knowledge base as of commit `seq`, plus the validity counters needed
/// to make a restored KB indistinguishable from the live one.
#[derive(Debug)]
pub struct CheckpointImage {
    /// [`fingerprint`] of the *base image* the owning WAL chain replays
    /// over — not of this checkpoint's content.
    pub fingerprint: u64,
    /// The last commit sequence number folded into this image. Recovery
    /// resumes WAL replay at `seq + 1`.
    pub seq: u64,
    /// Modification epoch of the live KB when the image was taken.
    pub epoch: u64,
    preds: Vec<(PredKey, Vec<Arc<Clause>>)>,
    generations: Vec<(PredKey, u64)>,
}

impl CheckpointImage {
    /// Capture the live KB as a checkpoint of commit `seq` under the base
    /// fingerprint `fp`.
    pub fn capture(kb: &KnowledgeBase, fp: u64, seq: u64) -> CheckpointImage {
        let mut generations: Vec<(PredKey, u64)> = kb.generations().collect();
        generations.sort_by_key(|(k, _)| sort_key(k));
        CheckpointImage {
            fingerprint: fp,
            seq,
            epoch: kb.epoch(),
            preds: collect_preds(kb),
            generations,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);
        put_u64(&mut out, self.fingerprint);
        put_u64(&mut out, self.seq);
        put_u64(&mut out, self.epoch);
        encode_preds(&mut out, &self.preds);
        put_u32(&mut out, self.generations.len() as u32);
        for (key, generation) in &self.generations {
            put_key(&mut out, *key);
            put_u64(&mut out, *generation);
        }
        out
    }

    fn decode(buf: &[u8]) -> Option<CheckpointImage> {
        let len = u32::from_le_bytes(buf.get(0..4)?.try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf.get(4..8)?.try_into().unwrap());
        let payload = buf.get(8..8 + len)?;
        if crc32(payload) != crc {
            return None;
        }
        let mut cur = Cursor::new(payload);
        if cur.take(4)? != MAGIC || cur.u32()? != VERSION {
            return None;
        }
        let fingerprint = cur.u64()?;
        let seq = cur.u64()?;
        let epoch = cur.u64()?;
        let pred_count = cur.u32()? as usize;
        let mut preds = Vec::with_capacity(pred_count);
        for _ in 0..pred_count {
            let key = cur.key()?;
            let clause_count = cur.u32()? as usize;
            let mut clauses = Vec::with_capacity(clause_count.min(1 << 16));
            for _ in 0..clause_count {
                clauses.push(cur.clause()?);
            }
            preds.push((key, clauses));
        }
        let gen_count = cur.u32()? as usize;
        let mut generations = Vec::with_capacity(gen_count.min(1 << 16));
        for _ in 0..gen_count {
            let key = cur.key()?;
            generations.push((key, cur.u64()?));
        }
        if !cur.finished() {
            return None; // trailing garbage inside a "valid" payload
        }
        Some(CheckpointImage {
            fingerprint,
            seq,
            epoch,
            preds,
            generations,
        })
    }

    /// Write the image to `path` atomically: serialize to `path` + `.tmp`,
    /// sync, rename into place, sync the parent directory. A crash at any
    /// byte leaves either the old image or the new one, never a blend —
    /// the rename is the commit point.
    pub fn write(&self, path: &Path, faults: Option<IoFaultConfig>) -> io::Result<()> {
        let payload = self.encode();
        let len: u32 = payload.len().try_into().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "checkpoint payload of {} bytes overflows the length field",
                    payload.len()
                ),
            )
        })?;
        let mut record = Vec::with_capacity(8 + payload.len());
        put_u32(&mut record, len);
        put_u32(&mut record, crc32(&payload));
        record.extend_from_slice(&payload);
        let tmp = tmp_path(path);
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        let mut file = ChaosFile::new(file, faults);
        file.write_all(&record)?;
        file.sync_data()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path)
    }

    /// Read an image back. `Ok(None)` when the file does not exist *or*
    /// is torn/corrupt (bad CRC, truncated or malformed payload) — the
    /// caller falls back to an older checkpoint or the base. Only real
    /// I/O failures surface as errors; fingerprint checking is the
    /// caller's job (it knows the base, the image only reports it).
    pub fn read(path: &Path) -> io::Result<Option<CheckpointImage>> {
        let buf = match std::fs::read(path) {
            Ok(buf) => buf,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        Ok(CheckpointImage::decode(&buf))
    }

    /// Replace `kb`'s stored content and validity counters with this
    /// image's. `kb` carries configuration (tabling, strictness, index
    /// layout) from base setup; only clauses, generations, and epoch are
    /// overwritten. After install, `kb` is
    /// [`KnowledgeBase::content_eq`] to the KB the image was captured
    /// from.
    pub fn install(&self, kb: &mut KnowledgeBase) {
        let existing: Vec<PredKey> = kb
            .iter_clauses()
            .map(|(k, _)| k)
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        for key in existing {
            kb.retract_predicate(key);
        }
        for (key, clauses) in &self.preds {
            for clause in clauses {
                kb.apply_op(&DeltaOp::Assert {
                    key: *key,
                    clause: Arc::clone(clause),
                });
            }
        }
        kb.restore_validity(self.generations.iter().copied(), self.epoch);
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Make a rename durable: fsync the directory holding `path`. Without
/// this, a crash after rename can resurrect the old directory entry.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::GroupId;
    use crate::term::Term;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gdp-ckpt-test-{tag}-{}", std::process::id()));
        p
    }

    fn sample_kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(Term::pred("road", vec![Term::atom("s1")]));
        kb.assert_fact(Term::pred("road", vec![Term::atom("s2")]));
        kb.assert_clause_in(
            GroupId::named("m1"),
            Term::pred("soil", vec![Term::var(0), Term::float(0.5)]),
            Term::pred("road", vec![Term::var(0)]),
        );
        kb.assert_fact(Term::pred("label", vec![Term::str("x-17"), Term::int(17)]));
        kb.retract_fact(&Term::pred("road", vec![Term::atom("s2")]));
        kb
    }

    #[test]
    fn capture_write_read_install_roundtrip() {
        let path = temp_path("roundtrip");
        let live = sample_kb();
        let fp = fingerprint(&KnowledgeBase::new());
        let image = CheckpointImage::capture(&live, fp, 7);
        image.write(&path, None).unwrap();
        let read = CheckpointImage::read(&path).unwrap().expect("valid image");
        assert_eq!(read.fingerprint, fp);
        assert_eq!(read.seq, 7);
        let mut restored = KnowledgeBase::new();
        read.install(&mut restored);
        assert!(restored.content_eq(&live), "install != captured KB");
        restored.check_index_integrity().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn install_replaces_existing_content() {
        let path = temp_path("replace");
        let live = sample_kb();
        let image = CheckpointImage::capture(&live, 1, 3);
        image.write(&path, None).unwrap();
        let mut target = KnowledgeBase::new();
        target.assert_fact(Term::pred("stale", vec![Term::atom("x")]));
        CheckpointImage::read(&path)
            .unwrap()
            .unwrap()
            .install(&mut target);
        assert!(target.content_eq(&live));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_image_reads_as_none_at_every_cut() {
        let path = temp_path("torn");
        let live = sample_kb();
        let image = CheckpointImage::capture(&live, 1, 1);
        image.write(&path, None).unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(
                CheckpointImage::read(&path).unwrap().is_none(),
                "cut at {cut} accepted"
            );
        }
        // Flipping any single byte must also be rejected.
        for i in 0..full.len() {
            let mut bytes = full.clone();
            bytes[i] ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
            assert!(
                CheckpointImage::read(&path).unwrap().is_none(),
                "flip at {i} accepted"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_tracks_content_not_history() {
        let mut a = KnowledgeBase::new();
        a.assert_fact(Term::pred("p", vec![Term::atom("x")]));
        let mut b = KnowledgeBase::new();
        b.assert_fact(Term::pred("p", vec![Term::atom("x")]));
        b.assert_fact(Term::pred("q", vec![Term::atom("y")]));
        b.retract_fact(&Term::pred("q", vec![Term::atom("y")]));
        // q was fully retracted: only stored content counts. (Note the
        // counters differ; the fingerprint deliberately ignores them.)
        assert_ne!(fingerprint(&a), fingerprint(&KnowledgeBase::new()));
        let mut c = KnowledgeBase::new();
        c.assert_fact(Term::pred("p", vec![Term::atom("y")]));
        assert_ne!(fingerprint(&a), fingerprint(&c), "different arg");
        assert_eq!(fingerprint(&a), fingerprint(&b), "same stored content");
    }

    #[test]
    fn missing_file_reads_as_none() {
        let path = temp_path("missing");
        std::fs::remove_file(&path).ok();
        assert!(CheckpointImage::read(&path).unwrap().is_none());
    }
}
