//! The term language.
//!
//! Terms are the single data representation shared by facts, rules, goals,
//! and semantic-domain values. The representation favors cheap cloning —
//! compound argument lists live behind `Arc` — because the solver copies
//! (sub)terms whenever it instantiates a stored clause.

use std::fmt;
use std::sync::Arc;

use crate::symbol::{symbols, Sym};

/// A logic variable, identified by a dense index into a [`crate::BindStore`].
///
/// Clauses are *stored* with variables numbered `0..n_vars`; the solver
/// renames them apart by offsetting into freshly allocated binding slots at
/// activation time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_{}", self.0)
    }
}

/// A total-ordered, hashable `f64` wrapper.
///
/// Semantic domains (temperature, elevation, accuracy, coordinates) are
/// real-valued, but terms must be `Eq`/`Hash` for indexing. NaN is rejected
/// at construction so the `Eq` impl is sound.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct F64(f64);

impl F64 {
    /// Wrap a float. Panics on NaN — NaN never arises from the engine's own
    /// arithmetic (division by zero is reported as an error instead) and is
    /// rejected at the API boundary.
    pub fn new(v: f64) -> F64 {
        assert!(!v.is_nan(), "NaN is not a valid term value");
        F64(v)
    }

    /// Checked constructor: returns `None` for NaN.
    pub fn try_new(v: f64) -> Option<F64> {
        if v.is_nan() {
            None
        } else {
            Some(F64(v))
        }
    }

    /// The wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for F64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for F64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Safe: NaN is excluded by construction.
        self.0
            .partial_cmp(&other.0)
            .expect("NaN excluded by construction")
    }
}

impl std::hash::Hash for F64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Normalize -0.0 to 0.0 so that values comparing equal hash equal.
        let v = if self.0 == 0.0 { 0.0f64 } else { self.0 };
        v.to_bits().hash(state);
    }
}

impl fmt::Debug for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

/// A first-order term.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// An unbound-or-bound logic variable (resolved through the bind store).
    Var(Var),
    /// An interned constant symbol, e.g. `saint_louis`.
    Atom(Sym),
    /// A 64-bit integer, e.g. a population count.
    Int(i64),
    /// A finite 64-bit float, e.g. a coordinate or an accuracy in `[0,1]`.
    Float(F64),
    /// An immutable string value (used for labels and identifiers supplied
    /// by data generators; unlike atoms, not interned).
    Str(Arc<str>),
    /// A compound term `f(t1, …, tn)` with `n ≥ 1`.
    Compound(Sym, Arc<[Term]>),
}

impl Term {
    /// Construct an atom.
    pub fn atom(name: &str) -> Term {
        Term::Atom(Sym::new(name))
    }

    /// Construct a variable term.
    pub fn var(id: u32) -> Term {
        Term::Var(Var(id))
    }

    /// Construct an integer term.
    pub fn int(v: i64) -> Term {
        Term::Int(v)
    }

    /// Construct a float term. Panics on NaN.
    pub fn float(v: f64) -> Term {
        Term::Float(F64::new(v))
    }

    /// Construct a string term.
    pub fn str(s: &str) -> Term {
        Term::Str(Arc::from(s))
    }

    /// Construct a compound term from a functor name and arguments.
    ///
    /// With zero arguments this degenerates to an atom, mirroring Prolog,
    /// so `Term::pred("now", vec![])` is the atom `now`.
    pub fn pred(functor: &str, args: Vec<Term>) -> Term {
        Term::compound(Sym::new(functor), args)
    }

    /// Construct a compound term from an interned functor and arguments.
    pub fn compound(functor: Sym, args: Vec<Term>) -> Term {
        if args.is_empty() {
            Term::Atom(functor)
        } else {
            Term::Compound(functor, args.into())
        }
    }

    /// The empty list `[]`.
    pub fn nil() -> Term {
        Term::Atom(symbols::nil())
    }

    /// The list cell `[head | tail]`.
    pub fn cons(head: Term, tail: Term) -> Term {
        Term::Compound(symbols::cons(), Arc::from(vec![head, tail]))
    }

    /// Build a proper list from items.
    pub fn list(items: Vec<Term>) -> Term {
        items
            .into_iter()
            .rev()
            .fold(Term::nil(), |tail, head| Term::cons(head, tail))
    }

    /// Conjunction `(a , b)`.
    pub fn and(a: Term, b: Term) -> Term {
        Term::Compound(symbols::and(), Arc::from(vec![a, b]))
    }

    /// Right-nested conjunction of all goals; `true` when empty.
    pub fn conj(goals: Vec<Term>) -> Term {
        let mut it = goals.into_iter().rev();
        match it.next() {
            None => Term::Atom(symbols::true_()),
            Some(last) => it.fold(last, |acc, g| Term::and(g, acc)),
        }
    }

    /// Disjunction `(a ; b)`.
    pub fn or(a: Term, b: Term) -> Term {
        Term::Compound(symbols::or(), Arc::from(vec![a, b]))
    }

    /// Negation as failure `not(g)` — the paper's `not` operator: "a test
    /// that a formula may not be shown to be true" (§III.A), not logical
    /// negation.
    #[allow(clippy::should_implement_trait)] // `not/1` is the formalism's name
    pub fn not(g: Term) -> Term {
        Term::Compound(symbols::not(), Arc::from(vec![g]))
    }

    /// Existentially-closed negation `absent(g)`: succeeds iff *no instance*
    /// of `g` is derivable. Unlike [`Term::not`], unbound variables in `g`
    /// are read as existentially quantified inside the negation, so the goal
    /// need not be ground. This is the explicit closed-world test that
    /// assumption meta-models (e.g. the continuity assumption, §VI.B) use to
    /// scan an assertion history for conflicting entries.
    pub fn absent(g: Term) -> Term {
        Term::Compound(symbols::absent(), Arc::from(vec![g]))
    }

    /// Bounded universal quantification `forall(cond, then)`: every solution
    /// of `cond` must satisfy `then`. This is the `∀Xj:(F2 → F3)` production
    /// of the paper's formula grammar (§III.A).
    pub fn forall(cond: Term, then: Term) -> Term {
        Term::Compound(symbols::forall(), Arc::from(vec![cond, then]))
    }

    /// Unification goal `a = b`.
    pub fn unify(a: Term, b: Term) -> Term {
        Term::Compound(symbols::unify(), Arc::from(vec![a, b]))
    }

    /// The functor symbol of an atom or compound.
    pub fn functor(&self) -> Option<Sym> {
        match self {
            Term::Atom(s) => Some(*s),
            Term::Compound(s, _) => Some(*s),
            _ => None,
        }
    }

    /// Arity: 0 for atoms, `n` for compounds, `None` for non-callables.
    pub fn arity(&self) -> Option<usize> {
        match self {
            Term::Atom(_) => Some(0),
            Term::Compound(_, args) => Some(args.len()),
            _ => None,
        }
    }

    /// Arguments of a compound (empty slice for atoms).
    pub fn args(&self) -> &[Term] {
        match self {
            Term::Compound(_, args) => args,
            _ => &[],
        }
    }

    /// True if the term contains no variables at all.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Compound(_, args) => args.iter().all(Term::is_ground),
            _ => true,
        }
    }

    /// The largest variable index occurring in the term, if any.
    pub fn max_var(&self) -> Option<u32> {
        match self {
            Term::Var(v) => Some(v.0),
            Term::Compound(_, args) => args.iter().filter_map(Term::max_var).max(),
            _ => None,
        }
    }

    /// Collect the distinct variables of the term in first-occurrence order.
    pub fn variables(&self) -> Vec<Var> {
        fn walk(t: &Term, out: &mut Vec<Var>) {
            match t {
                Term::Var(v) if !out.contains(v) => {
                    out.push(*v);
                }
                Term::Compound(_, args) => {
                    for a in args.iter() {
                        walk(a, out);
                    }
                }
                _ => {}
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Rewrite every variable `Var(i)` to `Var(i + offset)`.
    ///
    /// This is the renaming-apart step performed when a stored clause (whose
    /// variables are numbered from zero) is activated against a live store.
    pub fn offset_vars(&self, offset: u32) -> Term {
        if offset == 0 {
            return self.clone();
        }
        match self {
            Term::Var(v) => Term::Var(Var(v.0 + offset)),
            Term::Compound(f, args) => {
                // Avoid reallocating ground subterms.
                if args.iter().all(Term::is_ground) {
                    self.clone()
                } else {
                    let new_args: Vec<Term> = args.iter().map(|a| a.offset_vars(offset)).collect();
                    Term::Compound(*f, new_args.into())
                }
            }
            other => other.clone(),
        }
    }

    /// Extract an `f64` from an `Int` or `Float` term.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Term::Int(i) => Some(*i as f64),
            Term::Float(f) => Some(f.get()),
            _ => None,
        }
    }

    /// Extract an `i64` from an `Int` term.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Term::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract the symbol of an atom term.
    pub fn as_atom(&self) -> Option<Sym> {
        match self {
            Term::Atom(s) => Some(*s),
            _ => None,
        }
    }

    /// Total order on ground-or-not terms (the "standard order of terms"):
    /// variables < numbers < atoms < strings < compounds, with compounds
    /// ordered by arity, then functor name, then arguments left to right.
    pub fn order(&self, other: &Term) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        use Term::*;
        fn rank(t: &Term) -> u8 {
            match t {
                Var(_) => 0,
                Int(_) | Float(_) => 1,
                Atom(_) => 2,
                Str(_) => 3,
                Compound(..) => 4,
            }
        }
        match (self, other) {
            (Var(a), Var(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.cmp(b),
            (Int(a), Float(b)) => {
                F64::new(*a as f64).cmp(b).then(Greater) // int after equal float
            }
            (Float(a), Int(b)) => a.cmp(&F64::new(*b as f64)).then(Less),
            (Atom(a), Atom(b)) => a.as_str().cmp(&b.as_str()),
            (Str(a), Str(b)) => a.cmp(b),
            (Compound(f1, a1), Compound(f2, a2)) => a1
                .len()
                .cmp(&a2.len())
                .then_with(|| f1.as_str().cmp(&f2.as_str()))
                .then_with(|| {
                    for (x, y) in a1.iter().zip(a2.iter()) {
                        let o = x.order(y);
                        if o != Equal {
                            return o;
                        }
                    }
                    Equal
                }),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "_{}", v.0),
            Term::Atom(s) => write!(f, "{s}"),
            Term::Int(i) => write!(f, "{i}"),
            Term::Float(x) => {
                let v = x.get();
                if v == v.trunc() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Term::Str(s) => write!(f, "{s:?}"),
            Term::Compound(functor, args) => {
                if *functor == symbols::cons() && args.len() == 2 {
                    // Render proper lists as [a, b, c] and improper tails
                    // as [a | T].
                    write!(f, "[")?;
                    let mut head = &args[0];
                    let mut tail = &args[1];
                    loop {
                        write!(f, "{head}")?;
                        match tail {
                            Term::Atom(s) if *s == symbols::nil() => break,
                            Term::Compound(c, rest) if *c == symbols::cons() && rest.len() == 2 => {
                                write!(f, ", ")?;
                                head = &rest[0];
                                tail = &rest[1];
                            }
                            other => {
                                write!(f, " | {other}")?;
                                break;
                            }
                        }
                    }
                    write!(f, "]")
                } else {
                    write!(f, "{functor}(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pred_with_no_args_is_atom() {
        assert_eq!(Term::pred("now", vec![]), Term::atom("now"));
    }

    #[test]
    fn list_display() {
        let l = Term::list(vec![Term::int(1), Term::int(2), Term::int(3)]);
        assert_eq!(l.to_string(), "[1, 2, 3]");
        assert_eq!(Term::nil().to_string(), "[]");
    }

    #[test]
    fn improper_list_display() {
        let l = Term::cons(Term::int(1), Term::var(0));
        assert_eq!(l.to_string(), "[1 | _0]");
    }

    #[test]
    fn conj_of_empty_is_true() {
        assert_eq!(Term::conj(vec![]), Term::atom("true"));
    }

    #[test]
    fn conj_nests_right() {
        let g = Term::conj(vec![Term::atom("a"), Term::atom("b"), Term::atom("c")]);
        assert_eq!(g.to_string(), ",(a, ,(b, c))");
    }

    #[test]
    fn offset_vars_renames_only_vars() {
        let t = Term::pred("f", vec![Term::var(0), Term::atom("x"), Term::var(2)]);
        let shifted = t.offset_vars(10);
        assert_eq!(
            shifted,
            Term::pred("f", vec![Term::var(10), Term::atom("x"), Term::var(12)])
        );
    }

    #[test]
    fn ground_and_max_var() {
        let t = Term::pred("f", vec![Term::var(3), Term::int(1)]);
        assert!(!t.is_ground());
        assert_eq!(t.max_var(), Some(3));
        assert!(Term::pred("f", vec![Term::int(1)]).is_ground());
    }

    #[test]
    fn variables_in_first_occurrence_order() {
        let t = Term::pred(
            "f",
            vec![
                Term::var(2),
                Term::pred("g", vec![Term::var(0), Term::var(2)]),
            ],
        );
        assert_eq!(t.variables(), vec![Var(2), Var(0)]);
    }

    #[test]
    fn f64_rejects_nan() {
        assert!(F64::try_new(f64::NAN).is_none());
        assert!(F64::try_new(1.5).is_some());
    }

    #[test]
    fn term_order_is_total_on_samples() {
        use std::cmp::Ordering::*;
        assert_eq!(Term::var(0).order(&Term::int(1)), Less);
        assert_eq!(Term::int(1).order(&Term::atom("a")), Less);
        assert_eq!(Term::atom("a").order(&Term::atom("b")), Less);
        assert_eq!(
            Term::pred("f", vec![Term::int(1)]).order(&Term::pred("f", vec![Term::int(2)])),
            Less
        );
        // Arity dominates functor name.
        assert_eq!(
            Term::pred("z", vec![Term::int(1)])
                .order(&Term::pred("a", vec![Term::int(1), Term::int(2)])),
            Less
        );
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(t: &Term) -> u64 {
            let mut s = DefaultHasher::new();
            t.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&Term::float(0.0)), h(&Term::float(-0.0)));
        assert_eq!(Term::float(0.0), Term::float(-0.0));
    }
}
