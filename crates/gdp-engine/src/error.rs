//! Engine errors.
//!
//! The solver never panics on bad queries: type errors, instantiation
//! errors, and exhausted resource budgets are all reported as values so that
//! a requirements-specification session (an interactive, exploratory
//! activity in the paper's setting) survives a malformed rule.

use std::fmt;

use crate::symbol::Sym;
use crate::term::Term;

/// `Result` specialized to [`EngineError`].
pub type EngineResult<T> = Result<T, EngineError>;

/// Everything that can go wrong while solving a goal.
///
/// Marked `#[non_exhaustive]`: fault-tolerance work keeps adding ways a
/// goal can stop (deadlines, cancellation, panic capture), and downstream
/// matches must not break each time. Classify errors with
/// [`EngineError::is_resource_limit`] / [`EngineError::is_recoverable`]
/// rather than enumerating variants.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// The step budget was exhausted; the query may be non-terminating.
    StepLimit {
        /// The configured limit that was reached.
        limit: u64,
    },
    /// The budget's wall-clock deadline passed (or was force-expired by
    /// the fault-injection harness).
    DeadlineExceeded {
        /// The configured deadline in milliseconds (0 when the expiry was
        /// injected without a configured deadline).
        limit_ms: u64,
    },
    /// The query was cancelled cooperatively through a
    /// [`crate::CancelToken`] (Ctrl-C in the REPL, a supervising audit,
    /// the fault-injection harness).
    Cancelled,
    /// The goal's evaluation panicked (a buggy native predicate, or an
    /// injected fault) and the panic was contained at the per-goal
    /// isolation boundary instead of unwinding across the API.
    GoalPanicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The depth budget (nested sub-solver calls: `not`, `forall`,
    /// aggregation) was exhausted.
    DepthLimit {
        /// The configured limit that was reached.
        limit: u32,
    },
    /// An arithmetic builtin received a non-numeric, insufficiently
    /// instantiated, or otherwise invalid argument.
    TypeError {
        /// The builtin that rejected the argument.
        context: &'static str,
        /// What was expected, e.g. "number" or "list".
        expected: &'static str,
        /// The offending (resolved) term.
        found: Term,
    },
    /// A builtin required a bound argument but found an unbound variable.
    Instantiation {
        /// The builtin that required instantiation.
        context: &'static str,
    },
    /// Integer division or modulus by zero.
    DivisionByZero,
    /// Integer overflow in arithmetic evaluation.
    IntOverflow {
        /// The operator that overflowed.
        op: &'static str,
    },
    /// A goal term is not callable (e.g. a bare integer in goal position).
    NotCallable {
        /// The offending (resolved) term.
        goal: Term,
    },
    /// A predicate was called that has no clauses and is not a builtin, and
    /// the knowledge base is in strict mode. (In the default open-world mode
    /// unknown predicates simply fail — "any fact that is not provable is
    /// said to be undefined", §III.A.)
    UnknownPredicate {
        /// Functor of the unknown predicate.
        name: Sym,
        /// Arity of the unknown predicate.
        arity: usize,
    },
    /// A goal's argument count exceeds the engine's maximum predicate
    /// arity (`u16::MAX`). Reported instead of silently truncating the
    /// arity, which would make two predicates whose arities differ by
    /// 65536 collide in dispatch.
    ArityOverflow {
        /// Functor of the oversized goal.
        name: Sym,
        /// The actual argument count.
        arity: usize,
    },
    /// A clause was asserted whose head is not a callable term (a
    /// variable, number, or string in head position). Reported by
    /// [`crate::KnowledgeBase::try_assert_clause_in`] so loaders can turn
    /// a bad clause into a diagnostic instead of a process abort.
    UncallableHead {
        /// The offending head term.
        head: Term,
    },
    /// An aggregation goal produced a value set the aggregate is undefined
    /// on (e.g. `avg` over zero solutions).
    EmptyAggregate {
        /// The aggregate operator, e.g. "avg".
        op: &'static str,
    },
    /// `not(G)` (or the negation inside a desugared `forall`) was reached
    /// while `G` still contained unbound variables. Closed-world evaluation
    /// of a non-ground negation is unsound (§III.A: "any fact that is not
    /// provable is said to be undefined", not false-for-every-instance), so
    /// the engine reports the floundering instead of silently answering.
    /// Bind the variables first, or use `absent(G)` when the existential
    /// closed-world reading ("no instance of G is derivable") is intended.
    NonGroundNegation {
        /// The (resolved) negated goal, still containing variables.
        goal: Term,
    },
}

impl EngineError {
    /// Did the goal stop because a configured resource bound — steps,
    /// depth, or wall-clock deadline — ran out? These are properties of
    /// the *budget*, not of the goal: the same goal may well succeed under
    /// a larger one.
    pub fn is_resource_limit(&self) -> bool {
        matches!(
            self,
            EngineError::StepLimit { .. }
                | EngineError::DepthLimit { .. }
                | EngineError::DeadlineExceeded { .. }
        )
    }

    /// Would re-running the goal with an escalated step/depth budget
    /// plausibly succeed? True exactly for [`EngineError::StepLimit`] and
    /// [`EngineError::DepthLimit`] — a deadline or cancellation is an
    /// externally imposed stop (retrying inside the same deadline is
    /// futile), and a panic or semantic error is a bug in the goal, which
    /// no budget fixes. This is the predicate a retry policy keys on.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            EngineError::StepLimit { .. } | EngineError::DepthLimit { .. }
        )
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::StepLimit { limit } => {
                write!(f, "inference step limit exhausted ({limit} steps)")
            }
            EngineError::DeadlineExceeded { limit_ms: 0 } => {
                write!(f, "wall-clock deadline exceeded")
            }
            EngineError::DeadlineExceeded { limit_ms } => {
                write!(f, "wall-clock deadline exceeded ({limit_ms} ms)")
            }
            EngineError::Cancelled => write!(f, "query cancelled"),
            EngineError::GoalPanicked { message } => {
                write!(f, "goal evaluation panicked: {message}")
            }
            EngineError::DepthLimit { limit } => {
                write!(f, "sub-solver depth limit exhausted ({limit} levels)")
            }
            EngineError::TypeError {
                context,
                expected,
                found,
            } => write!(f, "{context}: expected {expected}, found `{found}`"),
            EngineError::Instantiation { context } => {
                write!(f, "{context}: argument insufficiently instantiated")
            }
            EngineError::DivisionByZero => write!(f, "division by zero"),
            EngineError::IntOverflow { op } => write!(f, "integer overflow in `{op}`"),
            EngineError::NotCallable { goal } => {
                write!(f, "goal is not callable: `{goal}`")
            }
            EngineError::UnknownPredicate { name, arity } => {
                write!(f, "unknown predicate {name}/{arity} (strict mode)")
            }
            EngineError::ArityOverflow { name, arity } => {
                write!(
                    f,
                    "predicate {name} called with {arity} arguments, \
                     exceeding the engine maximum of {}",
                    u16::MAX
                )
            }
            EngineError::UncallableHead { head } => {
                write!(f, "clause head is not callable: `{head}`")
            }
            EngineError::EmptyAggregate { op } => {
                write!(f, "aggregate `{op}` undefined on an empty solution set")
            }
            EngineError::NonGroundNegation { goal } => {
                write!(
                    f,
                    "non-ground goal under negation: `{goal}` (bind its variables \
                     before `not`, or use `absent/1` for the existential reading)"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::TypeError {
            context: "is/2",
            expected: "number",
            found: Term::atom("green"),
        };
        let msg = e.to_string();
        assert!(msg.contains("is/2"));
        assert!(msg.contains("green"));
    }

    #[test]
    fn classification_helpers() {
        assert!(EngineError::StepLimit { limit: 1 }.is_resource_limit());
        assert!(EngineError::StepLimit { limit: 1 }.is_recoverable());
        assert!(EngineError::DepthLimit { limit: 1 }.is_recoverable());
        assert!(EngineError::DeadlineExceeded { limit_ms: 10 }.is_resource_limit());
        assert!(!EngineError::DeadlineExceeded { limit_ms: 10 }.is_recoverable());
        assert!(!EngineError::Cancelled.is_resource_limit());
        assert!(!EngineError::Cancelled.is_recoverable());
        let panicked = EngineError::GoalPanicked {
            message: "boom".into(),
        };
        assert!(!panicked.is_resource_limit());
        assert!(!panicked.is_recoverable());
        assert!(!EngineError::DivisionByZero.is_resource_limit());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(EngineError::DivisionByZero, EngineError::DivisionByZero);
        assert_ne!(
            EngineError::StepLimit { limit: 1 },
            EngineError::StepLimit { limit: 2 }
        );
    }
}
