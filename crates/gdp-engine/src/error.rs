//! Engine errors.
//!
//! The solver never panics on bad queries: type errors, instantiation
//! errors, and exhausted resource budgets are all reported as values so that
//! a requirements-specification session (an interactive, exploratory
//! activity in the paper's setting) survives a malformed rule.

use std::fmt;

use crate::symbol::Sym;
use crate::term::Term;

/// `Result` specialized to [`EngineError`].
pub type EngineResult<T> = Result<T, EngineError>;

/// Everything that can go wrong while solving a goal.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// The step budget was exhausted; the query may be non-terminating.
    StepLimit {
        /// The configured limit that was reached.
        limit: u64,
    },
    /// The depth budget (nested sub-solver calls: `not`, `forall`,
    /// aggregation) was exhausted.
    DepthLimit {
        /// The configured limit that was reached.
        limit: u32,
    },
    /// An arithmetic builtin received a non-numeric, insufficiently
    /// instantiated, or otherwise invalid argument.
    TypeError {
        /// The builtin that rejected the argument.
        context: &'static str,
        /// What was expected, e.g. "number" or "list".
        expected: &'static str,
        /// The offending (resolved) term.
        found: Term,
    },
    /// A builtin required a bound argument but found an unbound variable.
    Instantiation {
        /// The builtin that required instantiation.
        context: &'static str,
    },
    /// Integer division or modulus by zero.
    DivisionByZero,
    /// Integer overflow in arithmetic evaluation.
    IntOverflow {
        /// The operator that overflowed.
        op: &'static str,
    },
    /// A goal term is not callable (e.g. a bare integer in goal position).
    NotCallable {
        /// The offending (resolved) term.
        goal: Term,
    },
    /// A predicate was called that has no clauses and is not a builtin, and
    /// the knowledge base is in strict mode. (In the default open-world mode
    /// unknown predicates simply fail — "any fact that is not provable is
    /// said to be undefined", §III.A.)
    UnknownPredicate {
        /// Functor of the unknown predicate.
        name: Sym,
        /// Arity of the unknown predicate.
        arity: usize,
    },
    /// A goal's argument count exceeds the engine's maximum predicate
    /// arity (`u16::MAX`). Reported instead of silently truncating the
    /// arity, which would make two predicates whose arities differ by
    /// 65536 collide in dispatch.
    ArityOverflow {
        /// Functor of the oversized goal.
        name: Sym,
        /// The actual argument count.
        arity: usize,
    },
    /// An aggregation goal produced a value set the aggregate is undefined
    /// on (e.g. `avg` over zero solutions).
    EmptyAggregate {
        /// The aggregate operator, e.g. "avg".
        op: &'static str,
    },
    /// `not(G)` (or the negation inside a desugared `forall`) was reached
    /// while `G` still contained unbound variables. Closed-world evaluation
    /// of a non-ground negation is unsound (§III.A: "any fact that is not
    /// provable is said to be undefined", not false-for-every-instance), so
    /// the engine reports the floundering instead of silently answering.
    /// Bind the variables first, or use `absent(G)` when the existential
    /// closed-world reading ("no instance of G is derivable") is intended.
    NonGroundNegation {
        /// The (resolved) negated goal, still containing variables.
        goal: Term,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::StepLimit { limit } => {
                write!(f, "inference step limit exhausted ({limit} steps)")
            }
            EngineError::DepthLimit { limit } => {
                write!(f, "sub-solver depth limit exhausted ({limit} levels)")
            }
            EngineError::TypeError {
                context,
                expected,
                found,
            } => write!(f, "{context}: expected {expected}, found `{found}`"),
            EngineError::Instantiation { context } => {
                write!(f, "{context}: argument insufficiently instantiated")
            }
            EngineError::DivisionByZero => write!(f, "division by zero"),
            EngineError::IntOverflow { op } => write!(f, "integer overflow in `{op}`"),
            EngineError::NotCallable { goal } => {
                write!(f, "goal is not callable: `{goal}`")
            }
            EngineError::UnknownPredicate { name, arity } => {
                write!(f, "unknown predicate {name}/{arity} (strict mode)")
            }
            EngineError::ArityOverflow { name, arity } => {
                write!(
                    f,
                    "predicate {name} called with {arity} arguments, \
                     exceeding the engine maximum of {}",
                    u16::MAX
                )
            }
            EngineError::EmptyAggregate { op } => {
                write!(f, "aggregate `{op}` undefined on an empty solution set")
            }
            EngineError::NonGroundNegation { goal } => {
                write!(
                    f,
                    "non-ground goal under negation: `{goal}` (bind its variables \
                     before `not`, or use `absent/1` for the existential reading)"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::TypeError {
            context: "is/2",
            expected: "number",
            found: Term::atom("green"),
        };
        let msg = e.to_string();
        assert!(msg.contains("is/2"));
        assert!(msg.contains("green"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(EngineError::DivisionByZero, EngineError::DivisionByZero);
        assert_ne!(
            EngineError::StepLimit { limit: 1 },
            EngineError::StepLimit { limit: 2 }
        );
    }
}
