//! # gdp-engine — logic-programming substrate for the GDP formalism
//!
//! Roman's formalism ("Formal Specification of Geographic Data Processing
//! Requirements", ICDE 1986) deliberately restricts its formula language to
//! "a subset of logic compatible with the inference mechanisms available in
//! Prolog" (§I). This crate is that inference mechanism, built from scratch:
//!
//! * interned symbols and a compact [`Term`] representation,
//! * sound unification with an optional occurs check,
//! * a clause store ([`KnowledgeBase`]) with predicate and first-argument
//!   indexing plus named clause *groups* (the mechanism by which meta-models
//!   are activated and deactivated on demand),
//! * an iterative, trail-based SLD [`Solver`] with negation-as-failure,
//!   bounded universal quantification, arithmetic and structural builtins,
//!   and the aggregation primitives the paper requires (`card` — §VII.B's
//!   cardinality primitive — `findall`, `avg`, `sum`, `min`, `max`),
//! * explicit resource [`Budget`]s so runaway queries return an error value
//!   instead of looping or overflowing the host stack.
//!
//! The engine knows nothing about geography: objects, models, spatial and
//! temporal operators, and accuracy are encoded on top of it by `gdp-core`
//! and its sibling crates.
//!
//! ## Quick example
//!
//! ```
//! use gdp_engine::{KnowledgeBase, Term, Solver, Budget};
//!
//! let mut kb = KnowledgeBase::new();
//! kb.assert_fact(Term::pred("road", vec![Term::atom("s1")]));
//! kb.assert_fact(Term::pred("road", vec![Term::atom("s2")]));
//! let goal = Term::pred("road", vec![Term::var(0)]);
//! let solutions = Solver::new(&kb, Budget::default())
//!     .solve_all(goal)
//!     .unwrap();
//! assert_eq!(solutions.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod budget;
mod builtins;
pub mod chaos;
pub mod checkpoint;
pub mod delta;
pub mod deps;
mod error;
mod hash;
mod kb;
mod list;
mod parallel;
mod solver;
mod symbol;
pub mod table;
mod term;
pub mod trace;
mod unify;
pub mod wal;

pub mod arith;

pub use budget::{Budget, CancelToken, DepthGuard, CHECK_INTERVAL};
pub use chaos::{ChaosConfig, ChaosFile, ChaosSink, FaultKind, IoFaultConfig, IoFaultKind};
pub use checkpoint::{fingerprint, CheckpointImage};
pub use delta::{CommitRecord, Delta, DeltaOp};
pub use deps::{ArgSpec, Closure, DepGraph};
pub use error::{EngineError, EngineResult};
pub use hash::{FxHashMap, FxHashSet};
pub use kb::{
    ArgPath, BoundSet, Candidates, Clause, GroupId, IndexReport, KnowledgeBase, NativeFn,
    NativeOutcome, NumRange, PosList, PredKey, RangeSpec,
};
pub use list::{list_from_iter, list_to_vec, ListIter};
pub use parallel::ParallelSolver;
pub use solver::{Solution, SolutionIter, Solver, SolverStats};
pub use symbol::{symbols, Sym};
pub use table::{AnswerTable, CachedAnswer, CyclePolicy, TableStats, TableValidity};
pub use term::{Term, Var, F64};
pub use trace::{
    NullSink, ObserverSink, Port, PredProfile, PrintSink, Profiler, RingTrace, TraceEvent,
    TraceSink,
};
pub use unify::{resolve_deep, resolve_shallow, BindStore};
pub use wal::{replay, Wal, WalHeader, WalRecord};
