//! Static predicate dependency analysis for incremental invalidation.
//!
//! An update-heavy GDP system (survey readings and map revisions arriving
//! continuously, §III's constraints re-checked after every revision) cannot
//! afford to treat each mutation as "everything may have changed". This
//! module computes, from the stored clauses alone, which predicates a call
//! can possibly reach — so the table layer can invalidate only entries
//! whose dependency cone actually moved, and the audit layer can re-solve
//! only world-view members whose goals depend on dirtied predicates.
//!
//! The analysis is *static*: it reads clause heads and bodies, never
//! runtime bindings. Static closure is sound here, including under
//! negation-as-failure, because it over-approximates — every predicate an
//! execution could consult (positively or under `not`/`absent`/`forall`)
//! is reachable through some body literal, and the walk follows all of
//! them. Two refinements keep the over-approximation useful:
//!
//! * **First-argument specialization.** The reified representation funnels
//!   everything through `h(Model, …)`/`visible(Model, …)`, so a closure at
//!   bare predicate granularity would make every model depend on every
//!   other model's facts. A dependency node is therefore a
//!   `(PredKey, ArgSpec)` pair: when a call's first argument is a known
//!   atom and a clause head's first argument is a variable, the atom is
//!   propagated into body literals that reuse that head variable — which
//!   is exactly the kernel's `visible(M, …) :- active_model(M), h(M, …)`
//!   shape.
//! * **Dynamic-call detection.** A body goal that is a variable (or a
//!   `call`/`once` of one) can reach anything; closures containing one are
//!   flagged [`Closure::dynamic`] and treated as depending on the whole
//!   knowledge base.

use std::sync::Arc;

use crate::hash::{FxHashMap, FxHashSet};
use crate::kb::{Clause, KnowledgeBase, PredKey};
use crate::symbol::{symbols, Sym};
use crate::term::Term;

/// First-argument specialization of a dependency node: either any call to
/// the predicate, or only calls whose first argument is a specific atom.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArgSpec {
    /// Any first argument (or the predicate has no arguments).
    Any,
    /// First argument is this atom (in the reified encoding: the model).
    Atom(Sym),
}

impl ArgSpec {
    /// The specialization a term contributes when it appears in first-
    /// argument position: atoms specialize, everything else does not.
    pub fn of_first_arg(t: Option<&Term>) -> ArgSpec {
        match t {
            Some(Term::Atom(a)) => ArgSpec::Atom(*a),
            _ => ArgSpec::Any,
        }
    }

    /// The dirty node a mutated clause head contributes.
    pub fn of_head(head: &Term) -> ArgSpec {
        ArgSpec::of_first_arg(head.args().first())
    }
}

/// How a clause head constrains (and names) its first argument.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum HeadFirst {
    /// Head's first argument is this atom: the clause only matches calls
    /// whose spec is `Any` or this atom.
    Atom(Sym),
    /// Head's first argument is variable `v`: the clause matches any call,
    /// and a call-site atom flows into body literals reusing `v`.
    Var(u32),
    /// No first argument, or one that neither filters nor propagates.
    Other,
}

/// The first-argument shape of one body call site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EdgeSpec {
    /// Call's first argument carries no static information.
    Any,
    /// Call's first argument is this atom.
    Atom(Sym),
    /// Call's first argument is the same variable as the clause head's
    /// first argument — the call-site specialization propagates through.
    HeadVar,
}

/// One predicate call occurring in a clause body.
#[derive(Clone, Copy, Debug)]
struct CallEdge {
    key: PredKey,
    spec: EdgeSpec,
    /// The call sits under `not`/`absent`/`forall`: a *negative*
    /// dependency. Tracked separately for diagnostics; invalidation treats
    /// both polarities alike (a change under negation flips answers just
    /// as surely as one above it).
    negative: bool,
}

/// Analysis of one stored clause.
#[derive(Clone, Debug, Default)]
struct ClauseInfo {
    head_first: Option<HeadFirst>,
    calls: Vec<CallEdge>,
    /// Body contains a goal whose predicate cannot be determined
    /// statically (a variable in call position).
    dynamic: bool,
}

/// The static dependency graph of a [`KnowledgeBase`]: per predicate, the
/// analyzed call sites of each of its clauses. Build once per epoch (the
/// KB caches it) and query closures from it.
#[derive(Debug, Default)]
pub struct DepGraph {
    clauses: FxHashMap<PredKey, Vec<ClauseInfo>>,
}

/// The transitive dependency closure of a call or goal: every
/// `(predicate, specialization)` node an execution could consult.
#[derive(Clone, Debug, Default)]
pub struct Closure {
    nodes: FxHashSet<(PredKey, ArgSpec)>,
    preds: FxHashSet<PredKey>,
    neg_preds: FxHashSet<PredKey>,
    dynamic: bool,
}

impl Closure {
    /// Every distinct predicate in the closure (at any specialization).
    pub fn preds(&self) -> impl Iterator<Item = PredKey> + '_ {
        self.preds.iter().copied()
    }

    /// Is this predicate (at any specialization) in the closure?
    pub fn contains_pred(&self, key: PredKey) -> bool {
        self.preds.contains(&key)
    }

    /// Predicates reached through at least one `not`/`absent`/`forall`.
    pub fn negative_preds(&self) -> impl Iterator<Item = PredKey> + '_ {
        self.neg_preds.iter().copied()
    }

    /// The closure contains a statically unresolvable call (a variable in
    /// goal position): it must be treated as depending on everything.
    pub fn dynamic(&self) -> bool {
        self.dynamic
    }

    /// Number of `(predicate, specialization)` nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the closure empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Does this closure depend on any of the dirty nodes? A closure node
    /// `(p, Any)` is touched by any change to `p`; `(p, Atom(a))` only by
    /// changes whose head first-argument is `a` (or is not an atom). A
    /// dynamic closure depends on any non-empty dirty set.
    pub fn depends_on<'a>(&self, dirty: impl IntoIterator<Item = &'a (PredKey, ArgSpec)>) -> bool {
        for (key, spec) in dirty {
            if self.dynamic {
                return true;
            }
            let hit = match spec {
                ArgSpec::Any => self.preds.contains(key),
                ArgSpec::Atom(_) => {
                    self.nodes.contains(&(*key, *spec))
                        || self.nodes.contains(&(*key, ArgSpec::Any))
                }
            };
            if hit {
                return true;
            }
        }
        false
    }
}

impl DepGraph {
    /// Analyze every stored clause of `kb`. Native predicates are leaves
    /// (they consult no clauses); builtins and control constructs do not
    /// appear as nodes at all.
    pub fn build(kb: &KnowledgeBase) -> DepGraph {
        let mut clauses: FxHashMap<PredKey, Vec<ClauseInfo>> = FxHashMap::default();
        for (key, clause) in kb.iter_clauses() {
            clauses.entry(key).or_default().push(analyze(clause));
        }
        DepGraph { clauses }
    }

    /// The dependency closure of calling `key` with first-argument
    /// specialization `spec`.
    pub fn closure(&self, key: PredKey, spec: ArgSpec) -> Closure {
        let mut out = Closure::default();
        self.expand(vec![(key, spec, false)], &mut out);
        out
    }

    /// The dependency closure of an arbitrary goal term (a constraint or
    /// audit goal): the goal's own literals seed the walk.
    pub fn goal_closure(&self, goal: &Term) -> Closure {
        let mut info = ClauseInfo::default();
        collect_calls(goal, false, None, &mut info);
        let mut out = Closure::default();
        out.dynamic |= info.dynamic;
        let seeds = info
            .calls
            .iter()
            .map(|edge| {
                let spec = match edge.spec {
                    EdgeSpec::Atom(a) => ArgSpec::Atom(a),
                    // A goal has no head to propagate from.
                    EdgeSpec::Any | EdgeSpec::HeadVar => ArgSpec::Any,
                };
                (edge.key, spec, edge.negative)
            })
            .collect();
        self.expand(seeds, &mut out);
        out
    }

    /// Worklist expansion shared by [`Self::closure`] and
    /// [`Self::goal_closure`].
    fn expand(&self, seeds: Vec<(PredKey, ArgSpec, bool)>, out: &mut Closure) {
        let mut work = seeds;
        while let Some((key, spec, negative)) = work.pop() {
            // `(p, Any)` subsumes `(p, Atom(_))`: the Any node matches a
            // superset of clauses and propagates Any everywhere the atom
            // would propagate itself.
            if matches!(spec, ArgSpec::Atom(_)) && out.nodes.contains(&(key, ArgSpec::Any)) {
                if negative {
                    out.neg_preds.insert(key);
                }
                out.preds.insert(key);
                continue;
            }
            if !out.nodes.insert((key, spec)) {
                if negative && out.neg_preds.insert(key) {
                    // Revisit below so negative polarity reaches callees.
                } else {
                    continue;
                }
            }
            out.preds.insert(key);
            if negative {
                out.neg_preds.insert(key);
            }
            let Some(infos) = self.clauses.get(&key) else {
                continue;
            };
            for info in infos {
                let bound = match (info.head_first, spec) {
                    // Clause head names a different atom: cannot match.
                    (Some(HeadFirst::Atom(a)), ArgSpec::Atom(b)) if a != b => continue,
                    // Call atom flows into the head variable.
                    (Some(HeadFirst::Var(_)), ArgSpec::Atom(a)) => Some(a),
                    _ => None,
                };
                out.dynamic |= info.dynamic;
                for edge in &info.calls {
                    let child = match edge.spec {
                        EdgeSpec::Atom(a) => ArgSpec::Atom(a),
                        EdgeSpec::HeadVar => bound.map_or(ArgSpec::Any, ArgSpec::Atom),
                        EdgeSpec::Any => ArgSpec::Any,
                    };
                    work.push((edge.key, child, negative || edge.negative));
                }
            }
        }
    }

    /// The joint dependency closure of several calls, all at
    /// [`ArgSpec::Any`] — used for predicates that share a recursive
    /// strongly-connected component: their table entries must invalidate
    /// together, so they share one snapshot built over the whole
    /// component's reachability.
    pub fn closure_of_all(&self, keys: &[PredKey]) -> Closure {
        let mut out = Closure::default();
        let seeds = keys.iter().map(|k| (*k, ArgSpec::Any, false)).collect();
        self.expand(seeds, &mut out);
        out
    }

    /// The *recursive* strongly-connected components of the predicate call
    /// graph: every component with two or more mutually-reaching
    /// predicates, plus singletons that call themselves. Components and
    /// their members are sorted by name/arity, so the partition is
    /// deterministic. Predicates not listed are not recursive at all.
    ///
    /// Specializations are ignored here — cycle membership at predicate
    /// granularity is what completion scheduling and shared invalidation
    /// need, and it over-approximates the specialized graph soundly.
    pub fn sccs(&self) -> Vec<Vec<PredKey>> {
        // Deterministic adjacency: nodes and edge lists sorted.
        let mut nodes: Vec<PredKey> = self.clauses.keys().copied().collect();
        nodes.sort_by_key(|k| (k.name.as_str(), k.arity));
        let mut self_loop: FxHashSet<PredKey> = FxHashSet::default();
        let adjacent = |key: PredKey| -> Vec<PredKey> {
            let Some(infos) = self.clauses.get(&key) else {
                return Vec::new();
            };
            let mut out: Vec<PredKey> = infos
                .iter()
                .flat_map(|info| info.calls.iter().map(|e| e.key))
                .filter(|k| self.clauses.contains_key(k))
                .collect();
            out.sort_by_key(|k| (k.name.as_str(), k.arity));
            out.dedup();
            out
        };
        // Iterative Tarjan: the explicit frame stack holds (node, edges,
        // next-edge cursor); low links fold into the parent when a frame
        // retires.
        let mut index: FxHashMap<PredKey, usize> = FxHashMap::default();
        let mut low: FxHashMap<PredKey, usize> = FxHashMap::default();
        let mut on_stack: FxHashSet<PredKey> = FxHashSet::default();
        let mut stack: Vec<PredKey> = Vec::new();
        let mut next_index = 0usize;
        let mut components: Vec<Vec<PredKey>> = Vec::new();
        for &root in &nodes {
            if index.contains_key(&root) {
                continue;
            }
            let mut frames: Vec<(PredKey, Vec<PredKey>, usize)> = vec![(root, adjacent(root), 0)];
            index.insert(root, next_index);
            low.insert(root, next_index);
            next_index += 1;
            stack.push(root);
            on_stack.insert(root);
            while let Some((v, edges, cursor)) = frames.last_mut() {
                let v = *v;
                if let Some(&w) = edges.get(*cursor) {
                    *cursor += 1;
                    if w == v {
                        self_loop.insert(v);
                    }
                    if let Some(&wi) = index.get(&w) {
                        if on_stack.contains(&w) {
                            let lv = low.get_mut(&v).expect("visited");
                            *lv = (*lv).min(wi);
                        }
                    } else {
                        index.insert(w, next_index);
                        low.insert(w, next_index);
                        next_index += 1;
                        stack.push(w);
                        on_stack.insert(w);
                        frames.push((w, adjacent(w), 0));
                    }
                    continue;
                }
                frames.pop();
                let vlow = low[&v];
                if let Some((parent, _, _)) = frames.last() {
                    let pl = low.get_mut(parent).expect("visited");
                    *pl = (*pl).min(vlow);
                }
                if vlow == index[&v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc root still on stack");
                        on_stack.remove(&w);
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if component.len() > 1 || self_loop.contains(&v) {
                        component.sort_by_key(|k| (k.name.as_str(), k.arity));
                        components.push(component);
                    }
                }
            }
        }
        components.sort_by_key(|c| (c[0].name.as_str(), c[0].arity));
        components
    }

    /// Does `key` participate in a recursive cycle (self-recursion or
    /// mutual recursion through other predicates)? Derived from
    /// [`DepGraph::sccs`]; callers doing repeated lookups should compute
    /// the partition once instead.
    pub fn in_cycle(&self, key: PredKey) -> bool {
        self.sccs().iter().any(|c| c.contains(&key))
    }
}

/// Analyze one clause: head first-argument shape plus body call sites.
fn analyze(clause: &Arc<Clause>) -> ClauseInfo {
    let head_first = clause.head.args().first().map(|t| match t {
        Term::Atom(a) => HeadFirst::Atom(*a),
        Term::Var(v) => HeadFirst::Var(v.0),
        _ => HeadFirst::Other,
    });
    let head_var = match head_first {
        Some(HeadFirst::Var(v)) => Some(v),
        _ => None,
    };
    let mut info = ClauseInfo {
        head_first,
        ..ClauseInfo::default()
    };
    collect_calls(&clause.body, false, head_var, &mut info);
    info
}

/// Walk a body term, recording call edges. `negative` marks literals under
/// `not`/`absent`/`forall`; `head_var` is the clause head's first-argument
/// variable, if any, for specialization propagation.
fn collect_calls(goal: &Term, negative: bool, head_var: Option<u32>, info: &mut ClauseInfo) {
    match goal {
        Term::Var(_) => info.dynamic = true,
        Term::Atom(a)
            if *a != symbols::true_() && *a != symbols::fail() && *a != Sym::new("false") =>
        {
            info.calls.push(CallEdge {
                key: PredKey { name: *a, arity: 0 },
                spec: EdgeSpec::Any,
                negative,
            });
        }
        Term::Compound(f, args) => {
            let f = *f;
            if (f == symbols::and() || f == symbols::or()) && args.len() == 2 {
                collect_calls(&args[0], negative, head_var, info);
                collect_calls(&args[1], negative, head_var, info);
            } else if (f == symbols::not() || f == symbols::absent()) && args.len() == 1 {
                collect_calls(&args[0], true, head_var, info);
            } else if f == symbols::forall() && args.len() == 2 {
                collect_calls(&args[0], true, head_var, info);
                collect_calls(&args[1], true, head_var, info);
            } else if (f == symbols::once() || f == symbols::call()) && args.len() == 1 {
                collect_calls(&args[0], negative, head_var, info);
            } else if f == symbols::findall() && args.len() == 3 {
                collect_calls(&args[1], negative, head_var, info);
            } else if f == symbols::card() && args.len() == 2 {
                collect_calls(&args[0], negative, head_var, info);
            } else if f == symbols::aggregate() && args.len() == 4 {
                collect_calls(&args[2], negative, head_var, info);
            } else if f == symbols::between() && args.len() == 3 {
                // Pure arithmetic enumeration: no dependencies.
            } else if f == Sym::new("range_call") && args.len() == 2 {
                // Bound-pushdown wrapper: depends on exactly what the
                // wrapped goal depends on (the constraint list is data).
                collect_calls(&args[0], negative, head_var, info);
            } else if f == Sym::new("$range_chk") && args.len() == 2 {
                // Solver-internal verification marker: no dependencies.
            } else {
                // A plain predicate call (builtins land here too; they have
                // no clauses, so their nodes are inert leaves).
                match PredKey::of_term(goal) {
                    Some(key) => {
                        let spec = match args.first() {
                            Some(Term::Atom(a)) => EdgeSpec::Atom(*a),
                            Some(Term::Var(v)) if head_var == Some(v.0) => EdgeSpec::HeadVar,
                            _ => EdgeSpec::Any,
                        };
                        info.calls.push(CallEdge {
                            key,
                            spec,
                            negative,
                        });
                    }
                    // Oversized arity: the call errors at runtime; treat it
                    // as unanalyzable rather than mis-keyed.
                    None => info.dynamic = true,
                }
            }
        }
        // Integers, floats, strings in goal position error at runtime and
        // depend on nothing.
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::KnowledgeBase;

    fn pk(name: &str, arity: usize) -> PredKey {
        PredKey::new(name, arity)
    }

    /// The kernel shape: visible(M, X) :- active_model(M), h(M, X).
    fn kernel_kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.assert_clause(
            Term::pred("visible", vec![Term::var(0), Term::var(1)]),
            Term::and(
                Term::pred("active_model", vec![Term::var(0)]),
                Term::pred("h", vec![Term::var(0), Term::var(1)]),
            ),
        );
        for m in ["m1", "m2"] {
            kb.assert_fact(Term::pred("h", vec![Term::atom(m), Term::atom("payload")]));
        }
        kb
    }

    #[test]
    fn direct_and_transitive_closure() {
        let mut kb = KnowledgeBase::new();
        kb.assert_clause(
            Term::pred("a", vec![Term::var(0)]),
            Term::pred("b", vec![Term::var(0)]),
        );
        kb.assert_clause(
            Term::pred("b", vec![Term::var(0)]),
            Term::pred("c", vec![Term::var(0)]),
        );
        kb.assert_fact(Term::pred("c", vec![Term::atom("x")]));
        kb.assert_fact(Term::pred("unrelated", vec![Term::atom("y")]));
        let g = DepGraph::build(&kb);
        let cl = g.closure(pk("a", 1), ArgSpec::Any);
        for p in ["a", "b", "c"] {
            assert!(cl.contains_pred(pk(p, 1)), "missing {p}");
        }
        assert!(!cl.contains_pred(pk("unrelated", 1)));
        assert!(!cl.dynamic());
    }

    #[test]
    fn negative_edges_are_tracked_and_still_dependencies() {
        let mut kb = KnowledgeBase::new();
        kb.assert_clause(
            Term::pred("safe", vec![Term::var(0)]),
            Term::and(
                Term::pred("road", vec![Term::var(0)]),
                Term::not(Term::pred("closed", vec![Term::var(0)])),
            ),
        );
        kb.assert_fact(Term::pred("closed", vec![Term::atom("r1")]));
        let g = DepGraph::build(&kb);
        let cl = g.closure(pk("safe", 1), ArgSpec::Any);
        assert!(cl.contains_pred(pk("closed", 1)));
        let neg: Vec<PredKey> = cl.negative_preds().collect();
        assert!(neg.contains(&pk("closed", 1)));
        assert!(!neg.contains(&pk("road", 1)));
        // A change to the negated predicate dirties the closure.
        assert!(cl.depends_on(&[(pk("closed", 1), ArgSpec::Atom(Sym::new("r1")))]));
    }

    #[test]
    fn first_arg_specialization_separates_models() {
        let kb = kernel_kb();
        let g = DepGraph::build(&kb);
        let goal = Term::pred("visible", vec![Term::atom("m1"), Term::var(0)]);
        let cl = g.goal_closure(&goal);
        assert!(cl.contains_pred(pk("h", 2)));
        // m1's audit goal depends on m1's facts...
        assert!(cl.depends_on(&[(pk("h", 2), ArgSpec::Atom(Sym::new("m1")))]));
        // ...but not on m2's (the head variable propagated the atom).
        assert!(!cl.depends_on(&[(pk("h", 2), ArgSpec::Atom(Sym::new("m2")))]));
        // A var-headed mutation to h touches every model.
        assert!(cl.depends_on(&[(pk("h", 2), ArgSpec::Any)]));
    }

    #[test]
    fn atom_headed_clauses_filter_by_call_spec() {
        let mut kb = KnowledgeBase::new();
        // p(m1) :- q(x).    p(m2) :- r(y).
        kb.assert_clause(
            Term::pred("p", vec![Term::atom("m1")]),
            Term::pred("q", vec![Term::atom("x")]),
        );
        kb.assert_clause(
            Term::pred("p", vec![Term::atom("m2")]),
            Term::pred("r", vec![Term::atom("y")]),
        );
        let g = DepGraph::build(&kb);
        let cl = g.closure(pk("p", 1), ArgSpec::Atom(Sym::new("m1")));
        assert!(cl.contains_pred(pk("q", 1)));
        assert!(!cl.contains_pred(pk("r", 1)));
        // Unspecialized call sees both branches.
        let any = g.closure(pk("p", 1), ArgSpec::Any);
        assert!(any.contains_pred(pk("q", 1)) && any.contains_pred(pk("r", 1)));
    }

    #[test]
    fn dynamic_goals_poison_the_closure() {
        let mut kb = KnowledgeBase::new();
        kb.assert_clause(
            Term::pred("apply", vec![Term::var(0)]),
            Term::pred("call", vec![Term::var(0)]),
        );
        let g = DepGraph::build(&kb);
        let cl = g.closure(pk("apply", 1), ArgSpec::Any);
        assert!(cl.dynamic());
        // Dynamic closures depend on any change at all.
        assert!(cl.depends_on(&[(pk("whatever", 3), ArgSpec::Any)]));
    }

    #[test]
    fn control_constructs_are_traversed_not_depended_on() {
        let mut kb = KnowledgeBase::new();
        kb.assert_clause(
            Term::pred("agg", vec![Term::var(0)]),
            Term::pred(
                "aggregate",
                vec![
                    Term::atom("avg"),
                    Term::var(1),
                    Term::pred("elev", vec![Term::var(2), Term::var(1)]),
                    Term::var(0),
                ],
            ),
        );
        kb.assert_clause(
            Term::pred("n", vec![Term::var(0)]),
            Term::pred(
                "findall",
                vec![
                    Term::var(1),
                    Term::pred("road", vec![Term::var(1)]),
                    Term::var(0),
                ],
            ),
        );
        let g = DepGraph::build(&kb);
        let agg = g.closure(pk("agg", 1), ArgSpec::Any);
        assert!(agg.contains_pred(pk("elev", 2)));
        assert!(!agg.contains_pred(pk("aggregate", 4)));
        // The op atom (`avg`) must not appear as a zero-arity dependency.
        assert!(!agg.contains_pred(pk("avg", 0)));
        let n = g.closure(pk("n", 1), ArgSpec::Any);
        assert!(n.contains_pred(pk("road", 1)));
        assert!(!n.contains_pred(pk("findall", 3)));
    }

    #[test]
    fn goal_closure_of_a_conjunction() {
        let kb = kernel_kb();
        let g = DepGraph::build(&kb);
        let goal = Term::and(
            Term::pred("visible", vec![Term::atom("m2"), Term::var(0)]),
            Term::not(Term::pred("h", vec![Term::atom("m1"), Term::var(1)])),
        );
        let cl = g.goal_closure(&goal);
        assert!(cl.depends_on(&[(pk("h", 2), ArgSpec::Atom(Sym::new("m1")))]));
        assert!(cl.depends_on(&[(pk("h", 2), ArgSpec::Atom(Sym::new("m2")))]));
        assert!(!cl.depends_on(&[(pk("h", 2), ArgSpec::Atom(Sym::new("m3")))]));
    }

    #[test]
    fn sccs_find_self_and_mutual_recursion() {
        let mut kb = KnowledgeBase::new();
        let (x, y, z) = (Term::var(0), Term::var(1), Term::var(2));
        // reach(X,Y) :- reach(X,Z), edge(Z,Y).   (self-recursive)
        kb.assert_clause(
            Term::pred("reach", vec![x.clone(), y.clone()]),
            Term::and(
                Term::pred("reach", vec![x.clone(), z.clone()]),
                Term::pred("edge", vec![z.clone(), y.clone()]),
            ),
        );
        // even(X) :- odd(X).   odd(X) :- even(X).   (mutual)
        kb.assert_clause(
            Term::pred("even", vec![x.clone()]),
            Term::pred("odd", vec![x.clone()]),
        );
        kb.assert_clause(
            Term::pred("odd", vec![x.clone()]),
            Term::pred("even", vec![x.clone()]),
        );
        // linear(X) :- edge(X, X).   (calls, but no cycle)
        kb.assert_clause(
            Term::pred("linear", vec![x.clone()]),
            Term::pred("edge", vec![x.clone(), x]),
        );
        kb.assert_fact(Term::pred("edge", vec![Term::atom("a"), Term::atom("b")]));
        let g = DepGraph::build(&kb);
        let sccs = g.sccs();
        assert_eq!(
            sccs,
            vec![vec![pk("even", 1), pk("odd", 1)], vec![pk("reach", 2)],]
        );
        assert!(g.in_cycle(pk("reach", 2)));
        assert!(g.in_cycle(pk("even", 1)));
        assert!(!g.in_cycle(pk("linear", 1)));
        assert!(!g.in_cycle(pk("edge", 2)));
    }

    #[test]
    fn scc_members_share_one_validity_snapshot() {
        let mut kb = KnowledgeBase::new();
        let x = Term::var(0);
        kb.assert_clause(
            Term::pred("even", vec![x.clone()]),
            Term::pred("odd", vec![x.clone()]),
        );
        kb.assert_clause(
            Term::pred("odd", vec![x.clone()]),
            Term::pred("even", vec![x]),
        );
        let even = kb.dep_snapshot(pk("even", 1));
        let odd = kb.dep_snapshot(pk("odd", 1));
        assert!(
            Arc::ptr_eq(&even, &odd),
            "mutually recursive predicates must share a snapshot"
        );
        assert!(kb.is_recursive_pred(pk("even", 1)));
        assert!(!kb.is_recursive_pred(pk("missing", 1)));
    }
}
