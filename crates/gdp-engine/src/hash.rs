//! A small, fast, non-cryptographic hasher (FxHash-style).
//!
//! The engine hashes short keys — interned symbol ids, `(Sym, arity)` pairs,
//! small integers — on every indexed clause lookup. SipHash (the standard
//! library default) is overkill for these internal, attacker-free keys; the
//! multiply-rotate scheme below (the same recipe rustc uses) is markedly
//! faster on short integer keys. Implemented locally to avoid an extra
//! dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher specialized for short keys.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn equal_keys_hash_equal() {
        fn h(bytes: &[u8]) -> u64 {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        }
        assert_eq!(h(b"elevation"), h(b"elevation"));
        assert_ne!(h(b"elevation"), h(b"vegetation"));
    }

    #[test]
    fn short_and_unaligned_inputs() {
        // Exercise the remainder path: inputs of every length 0..=16.
        let data = b"abcdefghijklmnop";
        let mut seen = FxHashSet::default();
        for len in 0..=data.len() {
            let mut hasher = FxHasher::default();
            hasher.write(&data[..len]);
            seen.insert(hasher.finish());
        }
        // All prefixes should hash distinctly (no accidental collisions for
        // this fixed input — a regression canary, not a universal property).
        assert_eq!(seen.len(), data.len() + 1);
    }
}
