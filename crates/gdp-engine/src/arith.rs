//! Arithmetic evaluation for `is/2` and the arithmetic comparison builtins.
//!
//! Semantic domains in the formalism are value spaces with operations
//! (§III.B); the numeric ones (temperature, elevation, population, accuracy,
//! coordinates) all bottom out in this evaluator.

use crate::error::{EngineError, EngineResult};
use crate::symbol::Sym;
use crate::term::Term;
use crate::unify::BindStore;

/// A number produced by arithmetic evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Num {
    /// Exact integer.
    Int(i64),
    /// IEEE double (never NaN).
    Float(f64),
}

impl Num {
    /// Widen to `f64`.
    pub fn as_f64(self) -> f64 {
        match self {
            Num::Int(i) => i as f64,
            Num::Float(f) => f,
        }
    }

    /// Convert back into a term (`Int` stays integral).
    pub fn into_term(self) -> Term {
        match self {
            Num::Int(i) => Term::Int(i),
            Num::Float(f) => Term::float(f),
        }
    }

    /// Numeric comparison with int/float coercion.
    pub fn compare(self, other: Num) -> std::cmp::Ordering {
        match (self, other) {
            (Num::Int(a), Num::Int(b)) => a.cmp(&b),
            (a, b) => a
                .as_f64()
                .partial_cmp(&b.as_f64())
                .expect("NaN excluded by construction"),
        }
    }
}

fn type_err(found: &Term) -> EngineError {
    EngineError::TypeError {
        context: "arithmetic",
        expected: "evaluable expression",
        found: found.clone(),
    }
}

fn checked_float(v: f64, op: &'static str) -> EngineResult<Num> {
    if v.is_nan() {
        Err(EngineError::TypeError {
            context: op,
            expected: "a defined real result",
            found: Term::atom("nan"),
        })
    } else {
        Ok(Num::Float(v))
    }
}

/// Convert an already-rounded float to `i64`, rejecting NaN and values
/// outside the representable range instead of letting `as` turn NaN into 0
/// and saturate everything else (the dual of [`checked_float`]).
///
/// The range test is exact in f64: `-2^63` is representable, and every
/// float `< 2^63` (the first unrepresentable bound — `i64::MAX` itself
/// rounds *up* to `2^63` as a float) fits after rounding.
pub(crate) fn checked_int(v: f64, op: &'static str) -> EngineResult<Num> {
    if v.is_nan() {
        Err(EngineError::TypeError {
            context: op,
            expected: "a defined real result",
            found: Term::atom("nan"),
        })
    } else {
        // `i64::MIN as f64` is -2^63 exactly; its negation 2^63 is the
        // first unrepresentable magnitude (`i64::MAX` itself rounds *up*
        // to 2^63 as a float), hence `>=` above and `<` below.
        let bound = -(i64::MIN as f64);
        if v >= bound || v < -bound {
            Err(EngineError::IntOverflow { op })
        } else {
            Ok(Num::Int(v as i64))
        }
    }
}

/// Convert a collection length to an integer term, rejecting lengths that
/// don't fit in `i64` instead of letting `as` wrap them negative (only
/// reachable on 64-bit-usize platforms with absurd collections, but the
/// solver's cardinality results must never be silently wrong).
pub(crate) fn checked_len(n: usize, op: &'static str) -> EngineResult<Term> {
    i64::try_from(n)
        .map(Term::Int)
        .map_err(|_| EngineError::IntOverflow { op })
}

macro_rules! int_checked {
    ($op:literal, $a:expr, $b:expr, $method:ident) => {
        $a.$method($b)
            .map(Num::Int)
            .ok_or(EngineError::IntOverflow { op: $op })
    };
}

/// Evaluate an arithmetic expression term under the current bindings.
///
/// Supported: numeric literals; `+ - * /` (with `/` producing a float unless
/// both operands are integers and divide exactly); `//` (integer division),
/// `mod`, unary `-`, `abs`, `min/2`, `max/2`, `sqrt`, `floor`, `ceiling`,
/// `truncate`, `float/1`, `pi`.
pub fn eval(store: &BindStore, t: &Term) -> EngineResult<Num> {
    let t = store.deref(t).clone();
    match &t {
        Term::Int(i) => Ok(Num::Int(*i)),
        Term::Float(f) => Ok(Num::Float(f.get())),
        Term::Var(_) => Err(EngineError::Instantiation {
            context: "arithmetic",
        }),
        Term::Atom(s) => eval_atom(*s, &t),
        Term::Compound(f, args) => eval_compound(store, *f, args, &t),
        Term::Str(_) => Err(type_err(&t)),
    }
}

fn eval_atom(s: Sym, orig: &Term) -> EngineResult<Num> {
    match s.as_str().as_str() {
        "pi" => Ok(Num::Float(std::f64::consts::PI)),
        "e" => Ok(Num::Float(std::f64::consts::E)),
        _ => Err(type_err(orig)),
    }
}

fn eval_compound(store: &BindStore, f: Sym, args: &[Term], orig: &Term) -> EngineResult<Num> {
    let name = f.as_str();
    match (name.as_str(), args.len()) {
        ("+", 2) => bin(store, args, |a, b| match (a, b) {
            (Num::Int(x), Num::Int(y)) => int_checked!("+", x, y, checked_add),
            (x, y) => checked_float(x.as_f64() + y.as_f64(), "+"),
        }),
        ("-", 2) => bin(store, args, |a, b| match (a, b) {
            (Num::Int(x), Num::Int(y)) => int_checked!("-", x, y, checked_sub),
            (x, y) => checked_float(x.as_f64() - y.as_f64(), "-"),
        }),
        ("*", 2) => bin(store, args, |a, b| match (a, b) {
            (Num::Int(x), Num::Int(y)) => int_checked!("*", x, y, checked_mul),
            (x, y) => checked_float(x.as_f64() * y.as_f64(), "*"),
        }),
        ("/", 2) => bin(store, args, |a, b| match (a, b) {
            (Num::Int(x), Num::Int(y)) => {
                if y == 0 {
                    Err(EngineError::DivisionByZero)
                } else if x % y == 0 {
                    Ok(Num::Int(x / y))
                } else {
                    Ok(Num::Float(x as f64 / y as f64))
                }
            }
            (x, y) => {
                if y.as_f64() == 0.0 {
                    Err(EngineError::DivisionByZero)
                } else {
                    checked_float(x.as_f64() / y.as_f64(), "/")
                }
            }
        }),
        ("//", 2) => bin(store, args, |a, b| match (a, b) {
            (Num::Int(x), Num::Int(y)) => {
                if y == 0 {
                    Err(EngineError::DivisionByZero)
                } else {
                    int_checked!("//", x, y, checked_div)
                }
            }
            (_, _) => Err(EngineError::TypeError {
                context: "//",
                expected: "integers",
                found: orig.clone(),
            }),
        }),
        ("mod", 2) => bin(store, args, |a, b| match (a, b) {
            (Num::Int(x), Num::Int(y)) => {
                if y == 0 {
                    Err(EngineError::DivisionByZero)
                } else {
                    Ok(Num::Int(x.rem_euclid(y)))
                }
            }
            (_, _) => Err(EngineError::TypeError {
                context: "mod",
                expected: "integers",
                found: orig.clone(),
            }),
        }),
        ("min", 2) => bin(store, args, |a, b| {
            Ok(if a.compare(b).is_le() { a } else { b })
        }),
        ("max", 2) => bin(store, args, |a, b| {
            Ok(if a.compare(b).is_ge() { a } else { b })
        }),
        ("-", 1) => un(store, args, |a| match a {
            Num::Int(x) => x
                .checked_neg()
                .map(Num::Int)
                .ok_or(EngineError::IntOverflow { op: "-" }),
            Num::Float(x) => Ok(Num::Float(-x)),
        }),
        ("abs", 1) => un(store, args, |a| match a {
            Num::Int(x) => x
                .checked_abs()
                .map(Num::Int)
                .ok_or(EngineError::IntOverflow { op: "abs" }),
            Num::Float(x) => Ok(Num::Float(x.abs())),
        }),
        ("sqrt", 1) => un(store, args, |a| {
            let v = a.as_f64();
            if v < 0.0 {
                Err(EngineError::TypeError {
                    context: "sqrt",
                    expected: "non-negative number",
                    found: orig.clone(),
                })
            } else {
                Ok(Num::Float(v.sqrt()))
            }
        }),
        ("floor", 1) => un(store, args, |a| match a {
            Num::Int(_) => Ok(a),
            Num::Float(x) => checked_int(x.floor(), "floor"),
        }),
        ("ceiling", 1) => un(store, args, |a| match a {
            Num::Int(_) => Ok(a),
            Num::Float(x) => checked_int(x.ceil(), "ceiling"),
        }),
        ("truncate", 1) => un(store, args, |a| match a {
            Num::Int(_) => Ok(a),
            Num::Float(x) => checked_int(x.trunc(), "truncate"),
        }),
        ("float", 1) => un(store, args, |a| Ok(Num::Float(a.as_f64()))),
        _ => Err(type_err(orig)),
    }
}

fn bin(
    store: &BindStore,
    args: &[Term],
    f: impl FnOnce(Num, Num) -> EngineResult<Num>,
) -> EngineResult<Num> {
    let a = eval(store, &args[0])?;
    let b = eval(store, &args[1])?;
    f(a, b)
}

fn un(
    store: &BindStore,
    args: &[Term],
    f: impl FnOnce(Num) -> EngineResult<Num>,
) -> EngineResult<Num> {
    let a = eval(store, &args[0])?;
    f(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: Term) -> EngineResult<Num> {
        eval(&BindStore::new(), &t)
    }

    fn op(name: &str, a: Term, b: Term) -> Term {
        Term::pred(name, vec![a, b])
    }

    #[test]
    fn integer_arithmetic() {
        assert_eq!(ev(op("+", Term::int(2), Term::int(3))), Ok(Num::Int(5)));
        assert_eq!(ev(op("*", Term::int(4), Term::int(5))), Ok(Num::Int(20)));
        assert_eq!(ev(op("-", Term::int(2), Term::int(7))), Ok(Num::Int(-5)));
    }

    #[test]
    fn division_semantics() {
        // Exact integer division stays integral; inexact promotes to float.
        assert_eq!(ev(op("/", Term::int(6), Term::int(3))), Ok(Num::Int(2)));
        assert_eq!(ev(op("/", Term::int(7), Term::int(2))), Ok(Num::Float(3.5)));
        assert_eq!(
            ev(op("/", Term::int(1), Term::int(0))),
            Err(EngineError::DivisionByZero)
        );
        assert_eq!(ev(op("//", Term::int(7), Term::int(2))), Ok(Num::Int(3)));
    }

    #[test]
    fn mod_is_euclidean() {
        assert_eq!(ev(op("mod", Term::int(-7), Term::int(3))), Ok(Num::Int(2)));
    }

    #[test]
    fn mixed_promotes_to_float() {
        assert_eq!(
            ev(op("+", Term::int(1), Term::float(0.5))),
            Ok(Num::Float(1.5))
        );
    }

    #[test]
    fn nested_expressions() {
        // (2 + 3) * 4
        let e = op("*", op("+", Term::int(2), Term::int(3)), Term::int(4));
        assert_eq!(ev(e), Ok(Num::Int(20)));
    }

    #[test]
    fn unary_and_functions() {
        assert_eq!(ev(Term::pred("-", vec![Term::int(5)])), Ok(Num::Int(-5)));
        assert_eq!(ev(Term::pred("abs", vec![Term::int(-5)])), Ok(Num::Int(5)));
        assert_eq!(
            ev(Term::pred("sqrt", vec![Term::float(9.0)])),
            Ok(Num::Float(3.0))
        );
        assert_eq!(
            ev(Term::pred("floor", vec![Term::float(3.7)])),
            Ok(Num::Int(3))
        );
        assert_eq!(
            ev(op("min", Term::int(3), Term::float(2.5))),
            Ok(Num::Float(2.5))
        );
        assert_eq!(ev(op("max", Term::int(3), Term::int(9))), Ok(Num::Int(9)));
    }

    #[test]
    fn unbound_var_is_instantiation_error() {
        assert_eq!(
            ev(Term::var(0)),
            Err(EngineError::Instantiation {
                context: "arithmetic"
            })
        );
    }

    #[test]
    fn non_evaluable_is_type_error() {
        assert!(matches!(
            ev(Term::atom("green")),
            Err(EngineError::TypeError { .. })
        ));
    }

    #[test]
    fn overflow_is_reported() {
        assert_eq!(
            ev(op("+", Term::int(i64::MAX), Term::int(1))),
            Err(EngineError::IntOverflow { op: "+" })
        );
    }

    #[test]
    fn float_to_int_conversions_are_range_checked() {
        // A value far beyond i64 must not saturate silently.
        assert_eq!(
            ev(Term::pred("floor", vec![Term::float(1.0e300)])),
            Err(EngineError::IntOverflow { op: "floor" })
        );
        assert_eq!(
            ev(Term::pred("ceiling", vec![Term::float(-1.0e300)])),
            Err(EngineError::IntOverflow { op: "ceiling" })
        );
        assert_eq!(
            ev(Term::pred("truncate", vec![Term::float(f64::INFINITY)])),
            Err(EngineError::IntOverflow { op: "truncate" })
        );
    }

    #[test]
    fn float_to_int_boundary_cases() {
        // i64::MIN is exactly representable as f64 and must convert.
        assert_eq!(
            ev(Term::pred("truncate", vec![Term::float(i64::MIN as f64)])),
            Ok(Num::Int(i64::MIN))
        );
        // 2^63 (what `i64::MAX as f64` rounds up to) is the first
        // unrepresentable magnitude; the old `as` cast saturated it.
        assert_eq!(
            ev(Term::pred("floor", vec![Term::float(i64::MAX as f64)])),
            Err(EngineError::IntOverflow { op: "floor" })
        );
        // The largest float strictly below 2^63 still fits.
        let below = 9.223372036854775e18_f64;
        assert!(below < -(i64::MIN as f64));
        assert!(matches!(
            ev(Term::pred("floor", vec![Term::float(below)])),
            Ok(Num::Int(_))
        ));
        // Integer arguments pass through untouched.
        assert_eq!(
            ev(Term::pred("floor", vec![Term::int(i64::MAX)])),
            Ok(Num::Int(i64::MAX))
        );
    }

    #[test]
    fn nan_conversion_is_type_error() {
        // NaN cannot enter through `Term::float` (the F64 wrapper rejects
        // it), so exercise the checked conversion directly: the old `as`
        // cast turned NaN into 0.
        assert_eq!(
            checked_int(f64::NAN, "truncate"),
            Err(EngineError::TypeError {
                context: "truncate",
                expected: "a defined real result",
                found: Term::atom("nan"),
            })
        );
    }

    #[test]
    fn bindings_are_followed() {
        let mut s = BindStore::new();
        s.ensure(0);
        assert!(s.unify(&Term::var(0), &Term::int(21)));
        let e = op("*", Term::var(0), Term::int(2));
        assert_eq!(eval(&s, &e), Ok(Num::Int(42)));
    }

    #[test]
    fn constants() {
        assert_eq!(ev(Term::atom("pi")), Ok(Num::Float(std::f64::consts::PI)));
    }
}
