//! Transactions and deltas: recorded, reversible knowledge-base updates.
//!
//! Roman's GDP setting is update-heavy — "map data revision" is one of the
//! paper's three driving activities (§I) — and §III's constraints must
//! hold after every revision. A [`Delta`] is the engine-level record of
//! one batch of revisions: each assert/retract performed while the
//! knowledge base is recording (see [`crate::KnowledgeBase::begin_delta`])
//! is logged with enough information to *invert* it (clause positions are
//! observable through solution order, so inverses restore positions, not
//! just membership). On top of the log the knowledge base offers:
//!
//! * **rollback** ([`crate::KnowledgeBase::rollback_to`]) — undo the
//!   recorded operations in reverse, restoring the exact prior clause
//!   store (the transactional `:rollback`);
//! * **dirty-set extraction** ([`Delta::dirty_nodes`]) — the
//!   `(predicate, first-argument)` nodes the batch touched, which is what
//!   the incremental audit intersects with per-member dependency closures
//!   to decide what must be re-solved.
//!
//! Native-predicate registration is deliberately *not* recorded: natives
//! are installation-time wiring, not data, and rolling one back would
//! leave dangling semantics.

use std::sync::Arc;

use crate::deps::ArgSpec;
use crate::hash::FxHashSet;
use crate::kb::{Clause, GroupId, PredKey};

/// One recorded (invertible) knowledge-base mutation.
#[derive(Clone, Debug)]
pub enum DeltaOp {
    /// A clause was appended to `key`'s clause list.
    Assert {
        /// The predicate the clause was asserted under.
        key: PredKey,
        /// The stored clause (shared with the clause store).
        clause: Arc<Clause>,
    },
    /// The fact at position `pos` of `key`'s clause list was removed.
    RetractFact {
        /// The predicate the fact belonged to.
        key: PredKey,
        /// Its position in the predicate's clause list at removal time.
        pos: usize,
        /// The removed clause, for reinsertion on rollback.
        clause: Arc<Clause>,
    },
    /// Every clause of a group was removed (meta-model deactivation).
    RetractGroup {
        /// The retracted group.
        group: GroupId,
        /// Each removed clause with its predicate and original position
        /// (positions ascend per predicate, so reinsertion in recorded
        /// order restores the original interleaving).
        removed: Vec<(PredKey, usize, Arc<Clause>)>,
    },
    /// Every clause of one predicate was removed.
    RetractPredicate {
        /// The retracted predicate.
        key: PredKey,
        /// Its full clause list, in order.
        clauses: Vec<Arc<Clause>>,
    },
}

impl DeltaOp {
    /// The dirty nodes this operation contributes: the head predicate of
    /// every asserted or retracted clause, specialized by the head's first
    /// argument when it is an atom (the model, in the reified encoding).
    fn dirty_into(&self, out: &mut FxHashSet<(PredKey, ArgSpec)>) {
        match self {
            DeltaOp::Assert { key, clause } | DeltaOp::RetractFact { key, clause, .. } => {
                out.insert((*key, ArgSpec::of_head(&clause.head)));
            }
            DeltaOp::RetractGroup { removed, .. } => {
                for (key, _, clause) in removed {
                    out.insert((*key, ArgSpec::of_head(&clause.head)));
                }
            }
            DeltaOp::RetractPredicate { key, clauses } => {
                for clause in clauses {
                    out.insert((*key, ArgSpec::of_head(&clause.head)));
                }
                // An emptied predicate also changes "is it defined at all"
                // (strict mode, closures that reached it before it had
                // clauses), so dirty the unspecialized node too.
                out.insert((*key, ArgSpec::Any));
            }
        }
    }
}

/// A recorded batch of knowledge-base mutations. Obtained from
/// [`crate::KnowledgeBase::end_delta`] (or the `Specification` transaction
/// API built on it) and consumed by the incremental audit.
#[derive(Clone, Debug, Default)]
pub struct Delta {
    ops: Vec<DeltaOp>,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Delta {
        Delta::default()
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The recorded operations, oldest first.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Append another delta's operations after this one's (accumulating
    /// several commits into one pending batch).
    pub fn merge(&mut self, other: Delta) {
        self.ops.extend(other.ops);
    }

    /// The set of `(predicate, first-argument)` nodes this delta dirtied —
    /// what the incremental audit intersects with per-member dependency
    /// closures.
    pub fn dirty_nodes(&self) -> FxHashSet<(PredKey, ArgSpec)> {
        let mut out = FxHashSet::default();
        for op in &self.ops {
            op.dirty_into(&mut out);
        }
        out
    }

    /// The distinct predicates this delta touched.
    pub fn dirty_preds(&self) -> FxHashSet<PredKey> {
        self.dirty_nodes().into_iter().map(|(k, _)| k).collect()
    }

    pub(crate) fn push(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }

    pub(crate) fn pop(&mut self) -> Option<DeltaOp> {
        self.ops.pop()
    }

    pub(crate) fn tail_from(&self, mark: usize) -> Delta {
        Delta {
            ops: self
                .ops
                .get(mark.min(self.ops.len())..)
                .unwrap_or(&[])
                .to_vec(),
        }
    }

    pub(crate) fn drain_ops(&mut self) -> Delta {
        Delta {
            ops: std::mem::take(&mut self.ops),
        }
    }
}

/// One committed transaction, as retained by a serving layer for MVCC
/// snapshot reconstruction and appended to the write-ahead log.
///
/// A snapshot pinned at sequence number `S` is materialized by sharing the
/// head knowledge base and *un*-applying the delta of every record with
/// `seq > S`, newest first — the record carries the pre-commit generation
/// counters (restricted to the predicates the delta touched) and the
/// pre-commit epoch so the reconstructed KB validates cached answers
/// exactly as the live KB did at that point.
#[derive(Clone, Debug)]
pub struct CommitRecord {
    /// Commit sequence number (1 for the first commit after the base).
    pub seq: u64,
    /// The KB epoch immediately before this commit applied.
    pub epoch_before: u64,
    /// Generation counters of the touched predicates immediately before
    /// this commit applied (untouched predicates keep their head values).
    pub gens_before: Vec<(PredKey, u64)>,
    /// The committed operations, oldest first.
    pub delta: Delta,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Sym;
    use crate::term::Term;

    fn clause(head: Term) -> Arc<Clause> {
        Arc::new(Clause::new(head, Term::atom("true"), GroupId::root()))
    }

    #[test]
    fn dirty_nodes_specialize_by_head_atom() {
        let mut d = Delta::new();
        d.push(DeltaOp::Assert {
            key: PredKey::new("h", 2),
            clause: clause(Term::pred("h", vec![Term::atom("m1"), Term::int(1)])),
        });
        d.push(DeltaOp::RetractFact {
            key: PredKey::new("h", 2),
            pos: 0,
            clause: clause(Term::pred("h", vec![Term::var(0), Term::int(2)])),
        });
        let dirty = d.dirty_nodes();
        assert!(dirty.contains(&(PredKey::new("h", 2), ArgSpec::Atom(Sym::new("m1")))));
        assert!(dirty.contains(&(PredKey::new("h", 2), ArgSpec::Any)));
        assert_eq!(d.dirty_preds().len(), 1);
    }

    #[test]
    fn merge_and_tail() {
        let mut a = Delta::new();
        a.push(DeltaOp::Assert {
            key: PredKey::new("p", 1),
            clause: clause(Term::pred("p", vec![Term::atom("x")])),
        });
        let mut b = Delta::new();
        b.push(DeltaOp::Assert {
            key: PredKey::new("q", 1),
            clause: clause(Term::pred("q", vec![Term::atom("y")])),
        });
        a.merge(b);
        assert_eq!(a.len(), 2);
        let tail = a.tail_from(1);
        assert_eq!(tail.len(), 1);
        assert!(tail.dirty_preds().contains(&PredKey::new("q", 1)));
        assert!(a.tail_from(5).is_empty());
    }
}
