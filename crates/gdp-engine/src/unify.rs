//! Bindings, trail, and unification.
//!
//! The [`BindStore`] maps variable indices to optional terms and records
//! every binding on a trail so backtracking can undo exactly the bindings
//! made since a choice point. Unification is iterative (explicit work
//! stack) so adversarially deep terms cannot overflow the host stack.

use crate::term::{Term, Var};

/// Variable bindings plus the undo trail.
#[derive(Debug, Default)]
pub struct BindStore {
    slots: Vec<Option<Term>>,
    trail: Vec<Var>,
    /// When true, unification performs the occurs check, rejecting cyclic
    /// bindings like `X = f(X)`. Off by default (like Prolog) because the
    /// formalism's range-restricted rules never create cycles; switchable
    /// for property tests and debugging.
    pub occurs_check: bool,
}

/// A point on the trail to undo back to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrailMark(usize);

impl BindStore {
    /// Empty store.
    pub fn new() -> BindStore {
        BindStore::default()
    }

    /// Number of allocated variable slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no variable slot has been allocated.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Allocate `n` fresh unbound variables, returning the index of the
    /// first. Used to rename a stored clause (variables `0..n`) apart.
    pub fn alloc_block(&mut self, n: u32) -> u32 {
        let base = self.slots.len() as u32;
        self.slots
            .extend(std::iter::repeat_with(|| None).take(n as usize));
        base
    }

    /// Ensure slots exist for every variable index `<= max`.
    pub fn ensure(&mut self, max: u32) {
        if (max as usize) >= self.slots.len() {
            self.slots.resize((max + 1) as usize, None);
        }
    }

    /// Ensure at least `len` slots exist. Unlike [`BindStore::ensure`]
    /// this takes a slot *count*, not a maximum index, so it is safe to
    /// call with the length of another (possibly empty) store — no
    /// `len - 1` underflow.
    pub fn ensure_len(&mut self, len: usize) {
        if len > self.slots.len() {
            self.slots.resize(len, None);
        }
    }

    /// Current trail position.
    pub fn mark(&self) -> TrailMark {
        TrailMark(self.trail.len())
    }

    /// Undo all bindings made since `mark`.
    pub fn undo_to(&mut self, mark: TrailMark) {
        while self.trail.len() > mark.0 {
            let v = self.trail.pop().expect("trail underflow");
            self.slots[v.0 as usize] = None;
        }
    }

    /// Bind `v` (which must be unbound) to `t`, recording it on the trail.
    fn bind(&mut self, v: Var, t: Term) {
        debug_assert!(self.slots[v.0 as usize].is_none(), "rebinding bound var");
        self.slots[v.0 as usize] = Some(t);
        self.trail.push(v);
    }

    /// Follow the binding chain of `t` until an unbound variable or a
    /// non-variable term is reached. Does not descend into compounds.
    pub fn deref<'a>(&'a self, t: &'a Term) -> &'a Term {
        let mut cur = t;
        loop {
            match cur {
                Term::Var(v) => match &self.slots.get(v.0 as usize) {
                    Some(Some(next)) => cur = next,
                    _ => return cur,
                },
                _ => return cur,
            }
        }
    }

    /// Does `v` occur in (the dereferenced expansion of) `t`?
    fn occurs(&self, v: Var, t: &Term) -> bool {
        let mut stack = vec![t];
        while let Some(t) = stack.pop() {
            match self.deref(t) {
                Term::Var(w) if *w == v => {
                    return true;
                }
                Term::Compound(_, args) => stack.extend(args.iter()),
                _ => {}
            }
        }
        false
    }

    /// Unify `a` and `b` under the current bindings.
    ///
    /// On success the new bindings stay in place (trailed); on failure every
    /// binding made during the attempt is undone, so a failed head match
    /// leaves the store exactly as it was.
    pub fn unify(&mut self, a: &Term, b: &Term) -> bool {
        let mark = self.mark();
        if self.unify_inner(a, b) {
            true
        } else {
            self.undo_to(mark);
            false
        }
    }

    fn unify_inner(&mut self, a: &Term, b: &Term) -> bool {
        // Explicit work stack of pairs still to unify.
        let mut work: Vec<(Term, Term)> = vec![(a.clone(), b.clone())];
        while let Some((x, y)) = work.pop() {
            let x = self.deref(&x).clone();
            let y = self.deref(&y).clone();
            match (x, y) {
                (Term::Var(v), Term::Var(w)) if v == w => {}
                (Term::Var(v), t) | (t, Term::Var(v)) => {
                    if self.occurs_check && self.occurs(v, &t) {
                        return false;
                    }
                    self.ensure(v.0);
                    self.bind(v, t);
                }
                (Term::Atom(p), Term::Atom(q)) => {
                    if p != q {
                        return false;
                    }
                }
                (Term::Int(p), Term::Int(q)) => {
                    if p != q {
                        return false;
                    }
                }
                (Term::Float(p), Term::Float(q)) => {
                    if p != q {
                        return false;
                    }
                }
                (Term::Str(p), Term::Str(q)) => {
                    if p != q {
                        return false;
                    }
                }
                (Term::Compound(f, xs), Term::Compound(g, ys)) => {
                    if f != g || xs.len() != ys.len() {
                        return false;
                    }
                    for (xi, yi) in xs.iter().zip(ys.iter()) {
                        work.push((xi.clone(), yi.clone()));
                    }
                }
                _ => return false,
            }
        }
        true
    }
}

/// Resolve only the top level of `t`: follow variable chains but leave
/// compound arguments untouched.
pub fn resolve_shallow(store: &BindStore, t: &Term) -> Term {
    store.deref(t).clone()
}

/// Fully substitute current bindings into `t`, producing a term in which
/// every bound variable has been replaced by its (recursively resolved)
/// value. Unbound variables remain as variables.
///
/// With the occurs check off (the default), the store may hold cyclic
/// bindings like `X = f(X)`. Resolution terminates on those by leaving the
/// variable in place where its own expansion reaches it again, so the
/// cycle renders as `f(X)` instead of looping forever. Acyclic stores are
/// resolved exactly as before.
pub fn resolve_deep(store: &BindStore, t: &Term) -> Term {
    resolve_guarded(store, t, &mut Vec::new())
}

/// Recursive worker for [`resolve_deep`]. `chain` holds the variables
/// whose bindings are currently being expanded on the path from the root;
/// re-encountering one of them means the store is cyclic, and the cycle is
/// cut by returning the variable unexpanded.
fn resolve_guarded<'a>(store: &'a BindStore, t: &'a Term, chain: &mut Vec<Var>) -> Term {
    let base = chain.len();
    let mut cur = t;
    loop {
        match cur {
            Term::Var(v) => {
                if chain.contains(v) {
                    chain.truncate(base);
                    return Term::Var(*v);
                }
                match store.slots.get(v.0 as usize) {
                    Some(Some(next)) => {
                        chain.push(*v);
                        cur = next;
                    }
                    _ => {
                        chain.truncate(base);
                        return Term::Var(*v);
                    }
                }
            }
            Term::Compound(f, args) => {
                let resolved: Vec<Term> = args
                    .iter()
                    .map(|a| resolve_guarded(store, a, chain))
                    .collect();
                chain.truncate(base);
                return Term::Compound(*f, resolved.into());
            }
            other => {
                chain.truncate(base);
                return other.clone();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> BindStore {
        let mut s = BindStore::new();
        s.ensure(31);
        s
    }

    #[test]
    fn unify_atoms() {
        let mut s = store();
        assert!(s.unify(&Term::atom("a"), &Term::atom("a")));
        assert!(!s.unify(&Term::atom("a"), &Term::atom("b")));
    }

    #[test]
    fn unify_var_binds() {
        let mut s = store();
        assert!(s.unify(&Term::var(0), &Term::atom("st_louis")));
        assert_eq!(resolve_deep(&s, &Term::var(0)), Term::atom("st_louis"));
    }

    #[test]
    fn unify_compound_recurses() {
        let mut s = store();
        let a = Term::pred("cap", vec![Term::var(0), Term::atom("mo")]);
        let b = Term::pred("cap", vec![Term::atom("jc"), Term::var(1)]);
        assert!(s.unify(&a, &b));
        assert_eq!(resolve_deep(&s, &Term::var(0)), Term::atom("jc"));
        assert_eq!(resolve_deep(&s, &Term::var(1)), Term::atom("mo"));
    }

    #[test]
    fn failed_unify_undoes_partial_bindings() {
        let mut s = store();
        let a = Term::pred("f", vec![Term::var(0), Term::atom("x")]);
        let b = Term::pred("f", vec![Term::atom("v"), Term::atom("y")]);
        assert!(!s.unify(&a, &b));
        // Var 0 must have been unbound again.
        assert_eq!(resolve_deep(&s, &Term::var(0)), Term::var(0));
    }

    #[test]
    fn var_var_aliasing() {
        let mut s = store();
        assert!(s.unify(&Term::var(0), &Term::var(1)));
        assert!(s.unify(&Term::var(1), &Term::int(7)));
        assert_eq!(resolve_deep(&s, &Term::var(0)), Term::int(7));
    }

    #[test]
    fn trail_undo_restores() {
        let mut s = store();
        assert!(s.unify(&Term::var(0), &Term::atom("a")));
        let mark = s.mark();
        assert!(s.unify(&Term::var(1), &Term::atom("b")));
        s.undo_to(mark);
        assert_eq!(resolve_deep(&s, &Term::var(1)), Term::var(1));
        assert_eq!(resolve_deep(&s, &Term::var(0)), Term::atom("a"));
    }

    #[test]
    fn occurs_check_rejects_cycle() {
        let mut s = store();
        s.occurs_check = true;
        let fx = Term::pred("f", vec![Term::var(0)]);
        assert!(!s.unify(&Term::var(0), &fx));
        // Without occurs check the same unification is accepted (Prolog
        // behaviour).
        let mut s2 = store();
        assert!(s2.unify(&Term::var(0), &fx));
    }

    #[test]
    fn resolve_deep_terminates_on_cyclic_binding() {
        // With the occurs check off, `X = f(X)` is accepted; resolving and
        // printing X must terminate (cutting the cycle at the variable)
        // instead of looping forever.
        let mut s = store();
        assert!(s.unify(&Term::var(0), &Term::pred("f", vec![Term::var(0)])));
        let resolved = resolve_deep(&s, &Term::var(0));
        assert_eq!(resolved, Term::pred("f", vec![Term::var(0)]));
        assert_eq!(format!("X = {resolved}"), "X = f(_0)");
        // Mutual cycle through two variables: X = g(Y), Y = g(X).
        let mut s2 = store();
        assert!(s2.unify(&Term::var(0), &Term::pred("g", vec![Term::var(1)])));
        assert!(s2.unify(&Term::var(1), &Term::pred("g", vec![Term::var(0)])));
        let resolved = resolve_deep(&s2, &Term::var(0));
        assert_eq!(
            resolved,
            Term::pred("g", vec![Term::pred("g", vec![Term::var(0)])])
        );
    }

    #[test]
    fn resolve_deep_still_expands_repeated_acyclic_vars() {
        // The cycle guard must only trip on a variable inside its *own*
        // expansion, not on legitimate repeated occurrences.
        let mut s = store();
        assert!(s.unify(&Term::var(1), &Term::atom("a")));
        let t = Term::pred("p", vec![Term::var(1), Term::var(1)]);
        assert_eq!(
            resolve_deep(&s, &t),
            Term::pred("p", vec![Term::atom("a"), Term::atom("a")])
        );
    }

    #[test]
    fn ensure_len_is_safe_on_empty_store() {
        let mut s = BindStore::new();
        s.ensure_len(0); // the `ensure(len - 1)` form underflowed here
        assert_eq!(s.len(), 0);
        s.ensure_len(3);
        assert_eq!(s.len(), 3);
        s.ensure_len(2); // never shrinks
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn deep_terms_do_not_overflow() {
        // 100k-deep nesting; a recursive unifier would blow the stack.
        // Rust's *Drop* of such a term is also recursive, so give this
        // test (including the drop at the end) a generous stack — the
        // point here is that unification itself is iterative.
        std::thread::Builder::new()
            .stack_size(256 * 1024 * 1024)
            .spawn(|| {
                let mut deep1 = Term::atom("leaf");
                let mut deep2 = Term::atom("leaf");
                for _ in 0..100_000 {
                    deep1 = Term::pred("n", vec![deep1]);
                    deep2 = Term::pred("n", vec![deep2]);
                }
                let mut s = store();
                assert!(s.unify(&deep1, &deep2));
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn ints_and_floats_do_not_unify() {
        let mut s = store();
        assert!(!s.unify(&Term::int(1), &Term::float(1.0)));
    }
}
