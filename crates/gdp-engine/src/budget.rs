//! Resource budgets.
//!
//! Logic programs over recursive rules can diverge; a requirements
//! validation session must detect that and report it rather than hang. A
//! [`Budget`] is shared (via `Rc<Cell<_>>`) between a solver and all the
//! sub-solvers it spawns for `not`, `forall`, and aggregation goals, so a
//! query cannot dodge its limit by hiding work inside a negation.

use std::cell::Cell;
use std::rc::Rc;

use crate::error::{EngineError, EngineResult};

/// A shared step/depth budget for one top-level query.
///
/// Cloning a `Budget` yields a handle to the *same* counters.
#[derive(Clone, Debug)]
pub struct Budget {
    steps_left: Rc<Cell<u64>>,
    step_limit: u64,
    depth: Rc<Cell<u32>>,
    depth_limit: u32,
}

impl Default for Budget {
    /// A generous default: 10 million inference steps, 256 nested
    /// sub-solver levels. Ample for every experiment in the paper while
    /// still catching accidental non-termination in well under a second.
    fn default() -> Budget {
        Budget::new(10_000_000, 256)
    }
}

impl Budget {
    /// Create a budget with explicit limits.
    pub fn new(step_limit: u64, depth_limit: u32) -> Budget {
        Budget {
            steps_left: Rc::new(Cell::new(step_limit)),
            step_limit,
            depth: Rc::new(Cell::new(0)),
            depth_limit,
        }
    }

    /// Effectively unlimited; for benchmarks where the budget check itself
    /// should stay out of the measurement noise floor.
    pub fn unlimited() -> Budget {
        Budget::new(u64::MAX, u32::MAX)
    }

    /// The configured step limit.
    pub fn step_limit(&self) -> u64 {
        self.step_limit
    }

    /// The configured depth limit.
    pub fn depth_limit(&self) -> u32 {
        self.depth_limit
    }

    /// Consume one inference step.
    #[inline]
    pub fn step(&self) -> EngineResult<()> {
        let left = self.steps_left.get();
        if left == 0 {
            return Err(EngineError::StepLimit {
                limit: self.step_limit,
            });
        }
        self.steps_left.set(left - 1);
        Ok(())
    }

    /// Enter a nested sub-solver (negation, forall, aggregation).
    #[inline]
    pub fn enter(&self) -> EngineResult<DepthGuard> {
        let d = self.depth.get();
        if d >= self.depth_limit {
            return Err(EngineError::DepthLimit {
                limit: self.depth_limit,
            });
        }
        self.depth.set(d + 1);
        Ok(DepthGuard {
            depth: Rc::clone(&self.depth),
        })
    }

    /// Steps consumed so far by this budget's query tree.
    pub fn steps_used(&self) -> u64 {
        self.step_limit.saturating_sub(self.steps_left.get())
    }

    /// Current sub-solver nesting depth (0 at the top level). Trace events
    /// carry this so a rendered trace shows which nesting level emitted
    /// them.
    pub fn depth(&self) -> u32 {
        self.depth.get()
    }
}

/// RAII guard decrementing the nesting depth when a sub-solver finishes.
pub struct DepthGuard {
    depth: Rc<Cell<u32>>,
}

impl Drop for DepthGuard {
    fn drop(&mut self) {
        self.depth.set(self.depth.get().saturating_sub(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_run_out() {
        let b = Budget::new(3, 8);
        assert!(b.step().is_ok());
        assert!(b.step().is_ok());
        assert!(b.step().is_ok());
        assert_eq!(b.step(), Err(EngineError::StepLimit { limit: 3 }));
        assert_eq!(b.steps_used(), 3);
    }

    #[test]
    fn clones_share_counters() {
        let b = Budget::new(2, 8);
        let b2 = b.clone();
        b.step().unwrap();
        b2.step().unwrap();
        assert!(b.step().is_err());
    }

    #[test]
    fn depth_guard_restores_on_drop() {
        let b = Budget::new(100, 2);
        let g1 = b.enter().unwrap();
        let g2 = b.enter().unwrap();
        assert!(b.enter().is_err());
        drop(g2);
        let g3 = b.enter().unwrap();
        drop(g3);
        drop(g1);
        assert!(b.enter().is_ok());
    }
}
