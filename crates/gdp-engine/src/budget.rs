//! Resource budgets.
//!
//! Logic programs over recursive rules can diverge; a requirements
//! validation session must detect that and report it rather than hang. A
//! [`Budget`] is shared (via `Rc<Cell<_>>`) between a solver and all the
//! sub-solvers it spawns for `not`, `forall`, and aggregation goals, so a
//! query cannot dodge its limit by hiding work inside a negation.
//!
//! Beyond the step and depth counters, a budget can carry two *external*
//! bounds, both checked amortized (every [`CHECK_INTERVAL`] steps, so the
//! hot path stays a decrement-and-compare):
//!
//! * a wall-clock **deadline** ([`Budget::with_deadline`]) — steps bound
//!   work, but a step over a pathological index or a slow native has no
//!   fixed cost, so interactive sessions also want a bound in seconds;
//! * one or more [`CancelToken`]s ([`Budget::with_cancel`]) — a shared
//!   atomic flag a *different thread* (a Ctrl-C handler, a supervising
//!   audit, a fault-injection harness) can trip to stop the query
//!   cooperatively. The solver keeps its single-threaded `Rc` interior;
//!   only the token crosses threads.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{EngineError, EngineResult};

/// External bounds are polled every this many steps. A power of two: the
/// check is `left & (CHECK_INTERVAL - 1) == 0` on the already-loaded step
/// counter, so the common case adds one AND and one branch per step.
pub const CHECK_INTERVAL: u64 = 1024;

const FAULT_NONE: u8 = 0;
const FAULT_CANCELLED: u8 = 1;
const FAULT_EXPIRED: u8 = 2;

/// A shared cancellation flag.
///
/// Cloning yields a handle to the *same* flag; the token is `Send + Sync`
/// (an `Arc` over an atomic), so one side can hand a clone to another
/// thread — a signal handler, a watchdog — and keep solving on its own.
/// Solvers notice a tripped token at the next amortized budget check and
/// return [`EngineError::Cancelled`] (or [`EngineError::DeadlineExceeded`]
/// after [`CancelToken::expire`]) as an ordinary error value: cancellation
/// is cooperative, never a thread kill, so no lock, table, or knowledge
/// base is ever left mid-mutation.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicU8>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trip the token: every budget holding a handle reports
    /// [`EngineError::Cancelled`] at its next check.
    pub fn cancel(&self) {
        self.flag.store(FAULT_CANCELLED, Ordering::Relaxed);
    }

    /// Trip the token as a *deadline*: every budget holding a handle
    /// reports [`EngineError::DeadlineExceeded`] at its next check. Used
    /// by the fault-injection harness ([`crate::ChaosSink`]) to force
    /// deadline expiry deterministically, without depending on wall-clock
    /// timing.
    pub fn expire(&self) {
        self.flag.store(FAULT_EXPIRED, Ordering::Relaxed);
    }

    /// Has the token been tripped (by either [`cancel`](Self::cancel) or
    /// [`expire`](Self::expire))?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) != FAULT_NONE
    }

    /// Clear the token so the next query can reuse it (a REPL resets its
    /// Ctrl-C token before each statement).
    pub fn reset(&self) {
        self.flag.store(FAULT_NONE, Ordering::Relaxed);
    }

    fn check(&self, deadline_ms: u64) -> EngineResult<()> {
        match self.flag.load(Ordering::Relaxed) {
            FAULT_NONE => Ok(()),
            FAULT_EXPIRED => Err(EngineError::DeadlineExceeded {
                limit_ms: deadline_ms,
            }),
            _ => Err(EngineError::Cancelled),
        }
    }
}

/// A wall-clock deadline carried by a budget.
#[derive(Clone, Copy, Debug)]
struct Deadline {
    at: Instant,
    limit_ms: u64,
}

/// A shared step/depth budget for one top-level query.
///
/// Cloning a `Budget` yields a handle to the *same* counters.
#[derive(Clone, Debug)]
pub struct Budget {
    steps_left: Rc<Cell<u64>>,
    step_limit: u64,
    depth: Rc<Cell<u32>>,
    depth_limit: u32,
    deadline: Option<Deadline>,
    /// Usually zero or one token; an audit batch under fault injection
    /// carries two (the user's and the harness's).
    signals: Vec<CancelToken>,
}

impl Default for Budget {
    /// A generous default: 10 million inference steps, 256 nested
    /// sub-solver levels. Ample for every experiment in the paper while
    /// still catching accidental non-termination in well under a second.
    fn default() -> Budget {
        Budget::new(10_000_000, 256)
    }
}

impl Budget {
    /// Create a budget with explicit limits.
    pub fn new(step_limit: u64, depth_limit: u32) -> Budget {
        Budget {
            steps_left: Rc::new(Cell::new(step_limit)),
            step_limit,
            depth: Rc::new(Cell::new(0)),
            depth_limit,
            deadline: None,
            signals: Vec::new(),
        }
    }

    /// Effectively unlimited; for benchmarks where the budget check itself
    /// should stay out of the measurement noise floor.
    pub fn unlimited() -> Budget {
        Budget::new(u64::MAX, u32::MAX)
    }

    /// Attach a wall-clock deadline at an absolute instant. `limit_ms` is
    /// reported in the resulting [`EngineError::DeadlineExceeded`]; an
    /// audit batch passes the same instant to every worker so the whole
    /// batch shares one deadline.
    pub fn with_deadline(mut self, at: Instant, limit_ms: u64) -> Budget {
        self.deadline = Some(Deadline { at, limit_ms });
        self
    }

    /// Attach a wall-clock deadline `after` from now. A duration so large
    /// that the absolute instant overflows (`Duration::MAX` and friends)
    /// saturates to "no effective deadline": the budget is returned
    /// unchanged rather than panicking in `Instant + Duration`.
    pub fn with_deadline_in(self, after: Duration) -> Budget {
        let ms = after.as_millis().min(u128::from(u64::MAX)) as u64;
        match Instant::now().checked_add(after) {
            Some(at) => self.with_deadline(at, ms),
            None => self,
        }
    }

    /// Attach a cancellation token. May be called more than once; every
    /// attached token is polled at the amortized check.
    pub fn with_cancel(mut self, token: CancelToken) -> Budget {
        self.signals.push(token);
        self
    }

    /// The configured step limit.
    pub fn step_limit(&self) -> u64 {
        self.step_limit
    }

    /// The configured depth limit.
    pub fn depth_limit(&self) -> u32 {
        self.depth_limit
    }

    /// Consume one inference step.
    ///
    /// External bounds (deadline, cancellation) are polled first, every
    /// [`CHECK_INTERVAL`] steps — *before* the step is consumed, so a step
    /// the solver never attributes to a predicate is never counted. This
    /// keeps the profiler's ledger reconciling exactly with
    /// [`Self::steps_used`] on every exit path.
    #[inline]
    pub fn step(&self) -> EngineResult<()> {
        let left = self.steps_left.get();
        if left == 0 {
            return Err(EngineError::StepLimit {
                limit: self.step_limit,
            });
        }
        if left & (CHECK_INTERVAL - 1) == 0 {
            self.check_external()?;
        }
        self.steps_left.set(left - 1);
        Ok(())
    }

    /// Poll the external bounds. Out of line: the hot path pays only the
    /// interval test.
    #[cold]
    #[inline(never)]
    fn check_external(&self) -> EngineResult<()> {
        let deadline_ms = self.deadline.map_or(0, |d| d.limit_ms);
        for token in &self.signals {
            token.check(deadline_ms)?;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d.at {
                return Err(EngineError::DeadlineExceeded {
                    limit_ms: d.limit_ms,
                });
            }
        }
        Ok(())
    }

    /// Enter a nested sub-solver (negation, forall, aggregation).
    #[inline]
    pub fn enter(&self) -> EngineResult<DepthGuard> {
        let d = self.depth.get();
        if d >= self.depth_limit {
            return Err(EngineError::DepthLimit {
                limit: self.depth_limit,
            });
        }
        self.depth.set(d + 1);
        Ok(DepthGuard {
            depth: Rc::clone(&self.depth),
        })
    }

    /// Steps consumed so far by this budget's query tree.
    pub fn steps_used(&self) -> u64 {
        self.step_limit.saturating_sub(self.steps_left.get())
    }

    /// Current sub-solver nesting depth (0 at the top level). Trace events
    /// carry this so a rendered trace shows which nesting level emitted
    /// them.
    pub fn depth(&self) -> u32 {
        self.depth.get()
    }
}

/// RAII guard decrementing the nesting depth when a sub-solver finishes.
///
/// The decrement runs in `Drop`, so the depth counter is restored on
/// *every* exit path — early returns, `?` propagation, and panic unwinds
/// alike. That last case is what makes the parallel solver's per-goal
/// `catch_unwind` isolation sound: a panicking native inside a `not(...)`
/// leaves the shared depth counter exactly where it was.
pub struct DepthGuard {
    depth: Rc<Cell<u32>>,
}

impl Drop for DepthGuard {
    fn drop(&mut self) {
        self.depth.set(self.depth.get().saturating_sub(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_run_out() {
        let b = Budget::new(3, 8);
        assert!(b.step().is_ok());
        assert!(b.step().is_ok());
        assert!(b.step().is_ok());
        assert_eq!(b.step(), Err(EngineError::StepLimit { limit: 3 }));
        assert_eq!(b.steps_used(), 3);
    }

    #[test]
    fn clones_share_counters() {
        let b = Budget::new(2, 8);
        let b2 = b.clone();
        b.step().unwrap();
        b2.step().unwrap();
        assert!(b.step().is_err());
    }

    #[test]
    fn depth_guard_restores_on_drop() {
        let b = Budget::new(100, 2);
        let g1 = b.enter().unwrap();
        let g2 = b.enter().unwrap();
        assert!(b.enter().is_err());
        drop(g2);
        let g3 = b.enter().unwrap();
        drop(g3);
        drop(g1);
        assert!(b.enter().is_ok());
    }

    #[test]
    fn depth_guard_restores_across_unwind() {
        let b = Budget::new(100, 4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g1 = b.enter().unwrap();
            let _g2 = b.enter().unwrap();
            panic!("boom");
        }));
        assert!(result.is_err());
        // Both guards unwound: the depth is back to the top level and the
        // budget is as usable as before the panic.
        assert_eq!(b.depth(), 0);
        let g = b.enter().unwrap();
        assert_eq!(b.depth(), 1);
        drop(g);
    }

    #[test]
    fn cancel_token_trips_within_one_interval() {
        let token = CancelToken::new();
        let b = Budget::new(u64::MAX, 8).with_cancel(token.clone());
        token.cancel();
        let mut steps = 0u64;
        let err = loop {
            match b.step() {
                Ok(()) => steps += 1,
                Err(e) => break e,
            }
            assert!(steps <= CHECK_INTERVAL, "cancellation was not observed");
        };
        assert_eq!(err, EngineError::Cancelled);
        // And the token can be cleared for the next query.
        token.reset();
        assert!(!token.is_cancelled());
        assert!(b.step().is_ok());
    }

    #[test]
    fn expired_token_reports_deadline() {
        let token = CancelToken::new();
        let b = Budget::new(u64::MAX, 8).with_cancel(token.clone());
        token.expire();
        let err = loop {
            if let Err(e) = b.step() {
                break e;
            }
        };
        assert_eq!(err, EngineError::DeadlineExceeded { limit_ms: 0 });
    }

    #[test]
    fn huge_deadline_saturates_instead_of_panicking() {
        // `Instant::now() + Duration::MAX` would overflow-panic; the
        // saturating path must instead behave as "no effective deadline".
        let b = Budget::new(16, 8).with_deadline_in(Duration::MAX);
        for _ in 0..16 {
            assert!(b.step().is_ok());
        }
        assert_eq!(b.step(), Err(EngineError::StepLimit { limit: 16 }));
        // A representable huge-but-finite deadline still attaches normally.
        let b = Budget::new(u64::MAX, 8).with_deadline_in(Duration::from_secs(3600));
        assert!(b.step().is_ok());
    }

    #[test]
    fn past_deadline_trips() {
        let b = Budget::new(u64::MAX, 8).with_deadline(Instant::now(), 7);
        let err = loop {
            if let Err(e) = b.step() {
                break e;
            }
        };
        assert_eq!(err, EngineError::DeadlineExceeded { limit_ms: 7 });
    }

    #[test]
    fn external_failure_consumes_no_step() {
        let token = CancelToken::new();
        let b = Budget::new(CHECK_INTERVAL * 4, 8).with_cancel(token.clone());
        token.cancel();
        let used_before = b.steps_used();
        assert_eq!(b.step(), Err(EngineError::Cancelled));
        assert_eq!(b.steps_used(), used_before);
    }
}
