//! Port-model solver observability: tracing and per-predicate profiling.
//!
//! The solver can emit classic port-model events — [`Port::Call`],
//! [`Port::Exit`], [`Port::Redo`], [`Port::Fail`], plus the engine-specific
//! [`Port::TableHit`], [`Port::TableInsert`], and [`Port::NativeCall`] —
//! through a [`TraceSink`]. The sink is a *generic type parameter* of the
//! solver, not a trait object: the default [`NullSink`] has
//! `ENABLED == false`, every emission site is guarded by
//! `if S::ENABLED { … }`, and the whole observability layer monomorphizes
//! away to nothing on the untraced path (see DESIGN.md §6.9).
//!
//! Three sinks are provided:
//!
//! * [`Profiler`] — per-predicate counters (`calls`, `exits`, `redos`,
//!   `fails`, `steps`, `table_hits`) with a sorted hot-predicate report.
//!   Its step totals partition [`crate::SolverStats::steps`] exactly: every
//!   budget step the solver consumes is attributed to the predicate (or
//!   cached-answer replay) that consumed it.
//! * [`RingTrace`] — a bounded ring buffer keeping the last *N* events, for
//!   post-mortem inspection after a failure or budget exhaustion.
//! * [`PrintSink`] — a human-readable live trace printer over any
//!   [`std::io::Write`].
//!
//! [`ObserverSink`] composes an optional profiler and ring for the common
//! "both at once" configuration used by `gdp-core`'s `Specification`.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::hash::FxHashMap;
use crate::kb::PredKey;
use crate::term::Term;

/// Which port of the box model an event was emitted at.
///
/// The engine uses a *shallow* port model: `Call` fires when a goal is
/// dispatched, `Exit` when that dispatch succeeds (a clause head unified
/// and its body was scheduled, or a builtin/native/control construct
/// succeeded), `Fail` when it fails, and `Redo` when backtracking resumes
/// a choice point for the goal. Pure scheduling goals (`,/2`, `true/0`)
/// are not reported. See DESIGN.md §6.9 for the rationale.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Port {
    /// A goal is being dispatched for the first time.
    Call,
    /// The dispatch (or a resumed choice point) succeeded.
    Exit,
    /// Backtracking resumed a choice point for the goal.
    Redo,
    /// The dispatch (or a resumed choice point) ran out of alternatives.
    Fail,
    /// A tabled call was answered from a completed answer set.
    TableHit,
    /// A completed answer set was recorded for a tabled call.
    TableInsert,
    /// A native (Rust-implemented) predicate is being invoked.
    NativeCall,
    /// A stale table entry was dropped at lookup time because a predicate
    /// in its dependency closure changed generation (or its validity
    /// snapshot was epoch-only and the epoch moved).
    Invalidate,
    /// A transaction committed its recorded delta (emitted by the spec
    /// layer, once per commit, with the transaction's scope as the goal).
    DeltaCommit,
    /// An SLG consumer exhausted the current answers of an incomplete
    /// subgoal and suspended; the saturation scheduler will resume it
    /// after producers derive more.
    Suspend,
    /// The SLG scheduler re-ran a producer pass over a subgoal whose
    /// region had grown new answers (resuming its suspended consumers).
    Resume,
    /// A tabled subgoal's strongly-connected region was exhausted and the
    /// subgoal completed (emitted once per subgoal, just before its
    /// `TableInsert`).
    Complete,
    /// A tabled call degraded to plain SLD resolution — recursive
    /// re-entry from a negation/aggregation sub-machine, or a depth
    /// budget too tight for the evaluation machinery. Counted in
    /// `SolverStats::table_fallbacks`.
    TableFallback,
    /// A tabled call pinned to an MVCC snapshot was answered from the
    /// answer set the snapshot carried over from the live KB — the
    /// observable marker that a concurrent reader reused work instead of
    /// re-deriving it. Counted in `SolverStats::snapshot_hits` (in
    /// addition to the ordinary table-hit counter).
    SnapshotHit,
}

impl Port {
    /// Fixed-width label used by the trace renderers.
    pub fn label(self) -> &'static str {
        match self {
            Port::Call => "CALL",
            Port::Exit => "EXIT",
            Port::Redo => "REDO",
            Port::Fail => "FAIL",
            Port::TableHit => "T-HIT",
            Port::TableInsert => "T-INS",
            Port::NativeCall => "NATIVE",
            Port::Invalidate => "T-INV",
            Port::DeltaCommit => "D-CMT",
            Port::Suspend => "SUSP",
            Port::Resume => "RESUME",
            Port::Complete => "COMPL",
            Port::TableFallback => "T-FBK",
            Port::SnapshotHit => "S-HIT",
        }
    }
}

impl std::fmt::Display for Port {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One port-model event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// The port this event was emitted at.
    pub port: Port,
    /// Sub-solver nesting depth (0 = the top-level query; `not`, `forall`,
    /// and aggregation goals run one level deeper).
    pub depth: u32,
    /// The predicate the goal resolves to.
    pub key: PredKey,
    /// The goal as seen at the port (resolved against the store on `Exit`,
    /// so successful bindings are visible).
    pub goal: Term,
}

impl TraceEvent {
    /// One human-readable line, indented by nesting depth:
    /// `CALL   (0) road(_0)`.
    pub fn render(&self) -> String {
        let indent = "  ".repeat(self.depth as usize);
        format!(
            "{:<6} ({}) {}{}",
            self.port.label(),
            self.depth,
            indent,
            self.goal
        )
    }
}

/// Receiver for solver events. Implementations are *compiled into* the
/// solver: `Solver<'_, S>` is monomorphized per sink type, and every
/// emission site is guarded by `if S::ENABLED`, so a sink with
/// `ENABLED == false` (the default [`NullSink`]) costs nothing at all.
pub trait TraceSink {
    /// Whether this sink receives anything. Emission sites are statically
    /// guarded on this constant; leave it `true` for real sinks.
    const ENABLED: bool = true;

    /// A port-model event was emitted.
    fn event(&mut self, event: &TraceEvent);

    /// One budget step was consumed on behalf of `key` (goal dispatch,
    /// clause-candidate trial, or cached-answer replay). The default
    /// implementation ignores it; the [`Profiler`] accumulates it.
    fn step(&mut self, key: PredKey) {
        let _ = key;
    }
}

/// The do-nothing sink: `ENABLED == false`, so the solver's emission sites
/// compile away entirely. This is the solver's default sink type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    fn event(&mut self, _event: &TraceEvent) {}
}

/// Per-predicate counters accumulated by the [`Profiler`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredProfile {
    /// `Call` events (first dispatches of a goal).
    pub calls: u64,
    /// `Exit` events (successful dispatches and successful redos).
    pub exits: u64,
    /// `Redo` events (choice points resumed by backtracking).
    pub redos: u64,
    /// `Fail` events.
    pub fails: u64,
    /// Budget steps attributed to this predicate.
    pub steps: u64,
    /// Tabled calls answered from a completed answer set.
    pub table_hits: u64,
    /// Tabled calls that degraded to plain SLD resolution.
    pub fallbacks: u64,
}

impl PredProfile {
    fn absorb(&mut self, other: &PredProfile) {
        self.calls += other.calls;
        self.exits += other.exits;
        self.redos += other.redos;
        self.fails += other.fails;
        self.steps += other.steps;
        self.table_hits += other.table_hits;
        self.fallbacks += other.fallbacks;
    }
}

/// A [`TraceSink`] that aggregates events into per-predicate counters.
///
/// The step attribution is exact: the sum of `steps` over all rows equals
/// the `steps` field of the solver's [`crate::SolverStats`] (every
/// `Budget::step` the solver takes is attributed to exactly one key).
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    rows: FxHashMap<PredKey, PredProfile>,
    total_steps: u64,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() && self.total_steps == 0
    }

    /// Total budget steps attributed across all predicates; equals the
    /// solver's `SolverStats::steps` for the queries this profiler
    /// observed.
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// The counters for one predicate, if it was observed.
    pub fn profile_of(&self, key: PredKey) -> Option<PredProfile> {
        self.rows.get(&key).copied()
    }

    /// Merge another profiler's counters into this one (per-worker merge
    /// in parallel batches, mirroring [`crate::SolverStats::absorb`]).
    pub fn absorb(&mut self, other: &Profiler) {
        for (key, row) in &other.rows {
            self.rows.entry(*key).or_default().absorb(row);
        }
        self.total_steps += other.total_steps;
    }

    /// All `(predicate, counters)` rows, hottest first: sorted by steps,
    /// then calls, then name (descending activity, ascending name).
    pub fn rows(&self) -> Vec<(PredKey, PredProfile)> {
        let mut rows: Vec<(PredKey, PredProfile)> =
            self.rows.iter().map(|(k, v)| (*k, *v)).collect();
        rows.sort_by(|(ka, a), (kb, b)| {
            b.steps
                .cmp(&a.steps)
                .then(b.calls.cmp(&a.calls))
                .then_with(|| ka.name.as_str().cmp(&kb.name.as_str()))
                .then(ka.arity.cmp(&kb.arity))
        });
        rows
    }

    /// The hot-predicate table as text, hottest predicate first, with a
    /// totals line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<32} {:>9} {:>9} {:>9} {:>9} {:>10} {:>8} {:>8}",
            "predicate", "calls", "exits", "redos", "fails", "steps", "t-hits", "t-fbks"
        );
        for (key, row) in self.rows() {
            let name = format!("{}/{}", key.name, key.arity);
            let _ = writeln!(
                out,
                "{:<32} {:>9} {:>9} {:>9} {:>9} {:>10} {:>8} {:>8}",
                name,
                row.calls,
                row.exits,
                row.redos,
                row.fails,
                row.steps,
                row.table_hits,
                row.fallbacks
            );
        }
        let _ = writeln!(
            out,
            "{:<32} {:>9} {:>9} {:>9} {:>9} {:>10} {:>8}",
            "total", "", "", "", "", self.total_steps, ""
        );
        out
    }
}

impl TraceSink for Profiler {
    fn event(&mut self, event: &TraceEvent) {
        let row = self.rows.entry(event.key).or_default();
        match event.port {
            Port::Call => row.calls += 1,
            Port::Exit => row.exits += 1,
            Port::Redo => row.redos += 1,
            Port::Fail => row.fails += 1,
            // A snapshot hit is still a table hit for profiling purposes;
            // the snapshot-specific tally lives in `SolverStats`.
            Port::TableHit | Port::SnapshotHit => row.table_hits += 1,
            Port::TableFallback => row.fallbacks += 1,
            // Inserts, native invocations, invalidations, and commits are
            // visible in the trace but carry no counter of their own (the
            // surrounding Call/Exit pair — or, for invalidations,
            // `SolverStats::table_invalidations` — already counts the
            // activity).
            // Scheduler-internal SLG events (suspend/resume/complete)
            // likewise describe table lifecycle, not predicate work.
            Port::TableInsert
            | Port::NativeCall
            | Port::Invalidate
            | Port::DeltaCommit
            | Port::Suspend
            | Port::Resume
            | Port::Complete => {}
        }
    }

    fn step(&mut self, key: PredKey) {
        self.rows.entry(key).or_default().steps += 1;
        self.total_steps += 1;
    }
}

/// A bounded ring buffer of the most recent events — the post-mortem "what
/// were the last N things the solver did before it failed / exhausted its
/// budget" view.
#[derive(Clone, Debug)]
pub struct RingTrace {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingTrace {
    /// A ring keeping at most `capacity` events (older events are dropped,
    /// counted by [`RingTrace::dropped`]).
    pub fn new(capacity: usize) -> RingTrace {
        RingTrace {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many older events were evicted to respect the capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Render the retained events, oldest first, one line each; prefixed
    /// with an elision marker when older events were dropped.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} earlier events dropped ...", self.dropped);
        }
        for event in &self.buf {
            let _ = writeln!(out, "{}", event.render());
        }
        out
    }
}

impl TraceSink for RingTrace {
    fn event(&mut self, event: &TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event.clone());
    }
}

/// A live trace printer: writes one rendered line per event to the wrapped
/// writer. Write errors are ignored (tracing must never fail a query).
#[derive(Debug)]
pub struct PrintSink<W: std::io::Write> {
    out: W,
}

impl<W: std::io::Write> PrintSink<W> {
    /// A printer over any writer.
    pub fn new(out: W) -> PrintSink<W> {
        PrintSink { out }
    }

    /// Consume the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl PrintSink<std::io::Stderr> {
    /// A printer to standard error.
    pub fn stderr() -> PrintSink<std::io::Stderr> {
        PrintSink::new(std::io::stderr())
    }
}

impl<W: std::io::Write> TraceSink for PrintSink<W> {
    fn event(&mut self, event: &TraceEvent) {
        let _ = writeln!(self.out, "{}", event.render());
    }
}

/// The composite sink `Specification` attaches when tracing and/or
/// profiling is enabled: an optional [`Profiler`] and an optional
/// [`RingTrace`], fed by the same event stream.
#[derive(Clone, Debug, Default)]
pub struct ObserverSink {
    profiler: Option<Profiler>,
    ring: Option<RingTrace>,
}

impl ObserverSink {
    /// An observer with a profiler when `profile` is set and a ring of
    /// `ring_capacity` events when one is given.
    pub fn new(profile: bool, ring_capacity: Option<usize>) -> ObserverSink {
        ObserverSink {
            profiler: profile.then(Profiler::new),
            ring: ring_capacity.map(RingTrace::new),
        }
    }

    /// Split into the collected profiler and ring.
    pub fn into_parts(self) -> (Option<Profiler>, Option<RingTrace>) {
        (self.profiler, self.ring)
    }

    /// The profiler collected so far, if profiling is on.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// The ring collected so far, if tracing is on.
    pub fn ring(&self) -> Option<&RingTrace> {
        self.ring.as_ref()
    }
}

impl TraceSink for ObserverSink {
    fn event(&mut self, event: &TraceEvent) {
        if let Some(p) = &mut self.profiler {
            p.event(event);
        }
        if let Some(r) = &mut self.ring {
            r.event(event);
        }
    }

    fn step(&mut self, key: PredKey) {
        if let Some(p) = &mut self.profiler {
            p.step(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(port: Port, depth: u32, name: &str, arity: usize) -> TraceEvent {
        TraceEvent {
            port,
            depth,
            key: PredKey::new(name, arity),
            goal: Term::atom(name),
        }
    }

    #[test]
    fn null_sink_is_statically_disabled() {
        // Read through a generic context so the flag values are exercised
        // the way solver emission guards see them (clippy rejects asserting
        // the consts directly as constant assertions).
        fn enabled<S: TraceSink>() -> bool {
            S::ENABLED
        }
        assert!(!enabled::<NullSink>());
        assert!(enabled::<Profiler>());
        assert!(enabled::<RingTrace>());
        assert!(enabled::<ObserverSink>());
    }

    #[test]
    fn profiler_counts_ports_and_steps() {
        let mut p = Profiler::new();
        let key = PredKey::new("road", 1);
        p.event(&ev(Port::Call, 0, "road", 1));
        p.event(&ev(Port::Exit, 0, "road", 1));
        p.event(&ev(Port::Redo, 0, "road", 1));
        p.event(&ev(Port::Fail, 0, "road", 1));
        p.event(&ev(Port::TableHit, 0, "road", 1));
        p.step(key);
        p.step(key);
        let row = p.profile_of(key).unwrap();
        assert_eq!(
            (
                row.calls,
                row.exits,
                row.redos,
                row.fails,
                row.table_hits,
                row.steps
            ),
            (1, 1, 1, 1, 1, 2)
        );
        assert_eq!(p.total_steps(), 2);
    }

    #[test]
    fn profiler_absorb_merges_rows() {
        let mut a = Profiler::new();
        let mut b = Profiler::new();
        a.step(PredKey::new("p", 1));
        b.step(PredKey::new("p", 1));
        b.step(PredKey::new("q", 2));
        a.absorb(&b);
        assert_eq!(a.total_steps(), 3);
        assert_eq!(a.profile_of(PredKey::new("p", 1)).unwrap().steps, 2);
        assert_eq!(a.profile_of(PredKey::new("q", 2)).unwrap().steps, 1);
    }

    #[test]
    fn profiler_rows_sorted_hottest_first() {
        let mut p = Profiler::new();
        for _ in 0..3 {
            p.step(PredKey::new("hot", 1));
        }
        p.step(PredKey::new("cold", 1));
        let rows = p.rows();
        assert_eq!(rows[0].0, PredKey::new("hot", 1));
        assert_eq!(rows[1].0, PredKey::new("cold", 1));
        let rendered = p.render();
        assert!(rendered.contains("hot/1"));
        assert!(rendered.contains("total"));
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut r = RingTrace::new(2);
        for i in 0..5u32 {
            r.event(&ev(Port::Call, i, "p", 0));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        let depths: Vec<u32> = r.events().map(|e| e.depth).collect();
        assert_eq!(depths, vec![3, 4]);
        assert!(r.render().starts_with("... 3 earlier events dropped ..."));
    }

    #[test]
    fn zero_capacity_ring_keeps_nothing() {
        let mut r = RingTrace::new(0);
        r.event(&ev(Port::Call, 0, "p", 0));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn print_sink_writes_rendered_lines() {
        let mut sink = PrintSink::new(Vec::new());
        sink.event(&ev(Port::Call, 1, "road", 1));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text, "CALL   (1)   road\n");
    }

    #[test]
    fn observer_feeds_both_components() {
        let mut o = ObserverSink::new(true, Some(8));
        o.event(&ev(Port::Call, 0, "p", 1));
        o.step(PredKey::new("p", 1));
        let (profiler, ring) = o.into_parts();
        assert_eq!(profiler.unwrap().total_steps(), 1);
        assert_eq!(ring.unwrap().len(), 1);
    }

    #[test]
    fn event_render_is_stable() {
        let e = ev(Port::TableHit, 2, "h", 5);
        assert_eq!(e.render(), "T-HIT  (2)     h");
    }
}
