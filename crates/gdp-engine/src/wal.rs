//! Durable write-ahead log of committed [`DeltaOp`] batches.
//!
//! The paper's "map data revision" workload makes the knowledge base a
//! *living* store; a serving layer that accepts revisions over a socket
//! must not lose an acknowledged commit to a crash. The WAL is the
//! standard answer: before a commit is acknowledged, its delta is appended
//! to an append-only log and the file is synced; recovery replays the log
//! over the same base state to reproduce the live knowledge base exactly
//! (clause order, incremental indexes, generation counters — see
//! [`KnowledgeBase::apply_op`]).
//!
//! ## Record format
//!
//! Every committed transaction is one record:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes]
//! payload = seq: u64 LE, op_count: u32 LE, op*
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the payload. Operations serialize the
//! [`DeltaOp`] variants with a one-byte tag; terms serialize structurally
//! (atoms and functors by name — the log is portable across processes with
//! different symbol-interning orders). Clause `n_vars` is recomputed on
//! decode, so a log can never smuggle in an inconsistent variable count.
//!
//! ## Header
//!
//! Since format version 2 every log opens with a fixed 28-byte header:
//!
//! ```text
//! [magic "GDPW"] [version: u32 LE] [fingerprint: u64 LE]
//! [start_seq: u64 LE] [crc32: u32 LE over the first 24 bytes]
//! ```
//!
//! `fingerprint` is a canonical hash of the *base image* the log's
//! records replay over (see [`crate::checkpoint::fingerprint`]): recovery
//! refuses to replay a log whose base was built differently — a changed
//! `--load` file becomes a hard error instead of silent divergence.
//! `start_seq` is the sequence number of the log's first record; a log
//! rotated at a checkpoint starts where the checkpoint ends, so disk and
//! recovery time stay proportional to the checkpoint interval, not to
//! total history.
//!
//! ## Torn-tail policy
//!
//! A crash mid-append leaves a torn record at the tail: a length running
//! past end-of-file, a checksum mismatch, or a sequence number that does
//! not continue the chain. [`Wal::open`] treats the first such record as
//! the end of the log — everything before it is returned as the recovered
//! prefix, and the file is truncated back to that point so the next append
//! continues from a clean boundary. Torn tails are *expected*, not fatal:
//! the commit they belonged to was never acknowledged. A torn *header* on
//! a non-empty file is different: the header is synced before the first
//! append, so it can only mean out-of-band corruption, and it is reported
//! as an error rather than silently starting a fresh chain.

use std::fs::OpenOptions;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use crate::chaos::{ChaosFile, IoFaultConfig};
use crate::delta::{Delta, DeltaOp};
use crate::kb::{Clause, GroupId, KnowledgeBase, PredKey};
use crate::symbol::Sym;
use crate::term::{Term, Var, F64};

const MAGIC: &[u8; 4] = b"GDPW";
const VERSION: u32 = 2;
const HEADER_LEN: usize = 28;

/// IEEE CRC-32 (reflected polynomial 0xEDB88320), bit-serial — WAL
/// payloads are small and dominated by the fsync, not the checksum.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ----- payload encoding -----------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_term(out: &mut Vec<u8>, t: &Term) {
    match t {
        Term::Var(Var(v)) => {
            out.push(0);
            put_u32(out, *v);
        }
        Term::Atom(s) => {
            out.push(1);
            put_str(out, &s.as_str());
        }
        Term::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Term::Float(f) => {
            out.push(3);
            out.extend_from_slice(&f.get().to_le_bytes());
        }
        Term::Str(s) => {
            out.push(4);
            put_str(out, s);
        }
        Term::Compound(f, args) => {
            out.push(5);
            put_str(out, &f.as_str());
            put_u32(out, args.len() as u32);
            for arg in args.iter() {
                put_term(out, arg);
            }
        }
    }
}

pub(crate) fn put_clause(out: &mut Vec<u8>, clause: &Clause) {
    put_str(out, &clause.group.name().as_str());
    put_term(out, &clause.head);
    put_term(out, &clause.body);
}

pub(crate) fn put_key(out: &mut Vec<u8>, key: PredKey) {
    put_str(out, &key.name.as_str());
    put_u32(out, u32::from(key.arity));
}

pub(crate) fn put_op(out: &mut Vec<u8>, op: &DeltaOp) {
    match op {
        DeltaOp::Assert { key, clause } => {
            out.push(0);
            put_key(out, *key);
            put_clause(out, clause);
        }
        DeltaOp::RetractFact { key, pos, clause } => {
            out.push(1);
            put_key(out, *key);
            put_u64(out, *pos as u64);
            put_clause(out, clause);
        }
        DeltaOp::RetractGroup { group, removed } => {
            out.push(2);
            put_str(out, &group.name().as_str());
            put_u32(out, removed.len() as u32);
            for (key, pos, clause) in removed {
                put_key(out, *key);
                put_u64(out, *pos as u64);
                put_clause(out, clause);
            }
        }
        DeltaOp::RetractPredicate { key, clauses } => {
            out.push(3);
            put_key(out, *key);
            put_u32(out, clauses.len() as u32);
            for clause in clauses {
                put_clause(out, clause);
            }
        }
    }
}

// ----- payload decoding -----------------------------------------------------

/// Decoder over one payload slice. Every read is bounds-checked; `None`
/// means the payload is malformed (which [`Wal::open`] treats exactly like
/// a checksum failure: end of the recoverable prefix).
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|s| i64::from_le_bytes(s.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Option<f64> {
        self.take(8)
            .map(|s| f64::from_le_bytes(s.try_into().unwrap()))
    }

    pub(crate) fn str(&mut self) -> Option<&'a str> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).ok()
    }

    pub(crate) fn term(&mut self) -> Option<Term> {
        Some(match self.u8()? {
            0 => Term::Var(Var(self.u32()?)),
            1 => Term::Atom(Sym::new(self.str()?)),
            2 => Term::Int(self.i64()?),
            3 => Term::Float(F64::try_new(self.f64()?)?),
            4 => Term::Str(Arc::from(self.str()?)),
            5 => {
                let functor = Sym::new(self.str()?);
                let n = self.u32()? as usize;
                // A compound needs at least one byte per argument; anything
                // larger than the remaining payload is corruption, not a
                // request to allocate.
                if n > self.buf.len() - self.pos {
                    return None;
                }
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    args.push(self.term()?);
                }
                Term::compound(functor, args)
            }
            _ => return None,
        })
    }

    pub(crate) fn clause(&mut self) -> Option<Arc<Clause>> {
        let group = GroupId::named(self.str()?);
        let head = self.term()?;
        let body = self.term()?;
        Some(Arc::new(Clause::new(head, body, group)))
    }

    pub(crate) fn key(&mut self) -> Option<PredKey> {
        let name = self.str()?.to_owned();
        let arity = self.u32()? as usize;
        PredKey::try_new(&name, arity)
    }

    pub(crate) fn op(&mut self) -> Option<DeltaOp> {
        Some(match self.u8()? {
            0 => DeltaOp::Assert {
                key: self.key()?,
                clause: self.clause()?,
            },
            1 => DeltaOp::RetractFact {
                key: self.key()?,
                pos: usize::try_from(self.u64()?).ok()?,
                clause: self.clause()?,
            },
            2 => {
                let group = GroupId::named(self.str()?);
                let n = self.u32()? as usize;
                if n > self.buf.len() - self.pos {
                    return None;
                }
                let mut removed = Vec::with_capacity(n);
                for _ in 0..n {
                    let key = self.key()?;
                    let pos = usize::try_from(self.u64()?).ok()?;
                    removed.push((key, pos, self.clause()?));
                }
                DeltaOp::RetractGroup { group, removed }
            }
            3 => {
                let key = self.key()?;
                let n = self.u32()? as usize;
                if n > self.buf.len() - self.pos {
                    return None;
                }
                let mut clauses = Vec::with_capacity(n);
                for _ in 0..n {
                    clauses.push(self.clause()?);
                }
                DeltaOp::RetractPredicate { key, clauses }
            }
            _ => return None,
        })
    }

    pub(crate) fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// One recovered commit: its sequence number and the committed delta.
#[derive(Clone, Debug)]
pub struct WalRecord {
    /// Commit sequence number (1-based, strictly consecutive in a log).
    pub seq: u64,
    /// The committed operations, oldest first.
    pub delta: Delta,
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut cur = Cursor::new(payload);
    let seq = cur.u64()?;
    let n = cur.u32()? as usize;
    if n > payload.len() {
        return None;
    }
    let mut delta = Delta::new();
    for _ in 0..n {
        delta.push(cur.op()?);
    }
    if !cur.finished() {
        return None;
    }
    Some(WalRecord { seq, delta })
}

/// The self-describing header every log starts with: the canonical
/// fingerprint of the base image its records replay over, and the
/// sequence number of its first record (1 for a fresh log; a rotated
/// segment starts just past the checkpoint it was rotated at).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalHeader {
    /// Canonical hash of the base image (see
    /// [`crate::checkpoint::fingerprint`]).
    pub fingerprint: u64,
    /// Sequence number of the first record in this log.
    pub start_seq: u64,
}

impl WalHeader {
    /// A header for a fresh (unrotated) log over `fingerprint`'s base.
    pub fn new(fingerprint: u64, start_seq: u64) -> WalHeader {
        WalHeader {
            fingerprint,
            start_seq,
        }
    }

    fn encode(&self) -> [u8; HEADER_LEN] {
        let mut bytes = [0u8; HEADER_LEN];
        bytes[0..4].copy_from_slice(MAGIC);
        bytes[4..8].copy_from_slice(&VERSION.to_le_bytes());
        bytes[8..16].copy_from_slice(&self.fingerprint.to_le_bytes());
        bytes[16..24].copy_from_slice(&self.start_seq.to_le_bytes());
        let crc = crc32(&bytes[0..24]);
        bytes[24..28].copy_from_slice(&crc.to_le_bytes());
        bytes
    }

    fn decode(bytes: &[u8]) -> Option<WalHeader> {
        let bytes: &[u8; HEADER_LEN] = bytes.get(0..HEADER_LEN)?.try_into().ok()?;
        if &bytes[0..4] != MAGIC {
            return None;
        }
        if u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != VERSION {
            return None;
        }
        let crc = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
        if crc32(&bytes[0..24]) != crc {
            return None;
        }
        Some(WalHeader {
            fingerprint: u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
            start_seq: u64::from_le_bytes(bytes[16..24].try_into().unwrap()),
        })
    }
}

/// Parse the longest valid record prefix of `buf` past the header,
/// starting at `start_seq`. Returns the records and the byte offset of
/// the first torn/invalid position (the clean append point).
fn parse_records(buf: &[u8], start_seq: u64) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut good = HEADER_LEN;
    let mut next_seq = start_seq;
    while let Some(header) = buf.get(good..good + 8) {
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let Some(payload) = buf.get(good + 8..good + 8 + len) else {
            break; // torn payload
        };
        if crc32(payload) != crc {
            break; // torn or corrupted record
        }
        let Some(record) = decode_payload(payload) else {
            break; // checksum ok but structure malformed: stop here too
        };
        if record.seq != next_seq {
            break; // sequence discontinuity: do not replay past it
        }
        next_seq += 1;
        records.push(record);
        good += 8 + len;
    }
    (records, good)
}

fn corrupt_header_error(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!(
            "write-ahead log {} has a corrupt header (not a GDP WAL, \
             or damaged out of band)",
            path.display()
        ),
    )
}

/// Is this non-empty image a *torn create* — a crash mid-way through
/// writing the initial header? The header is written and synced before
/// any record, so an invalid header on a file no longer than the header
/// itself cannot cover committed data and is safe to treat as an empty
/// log. An invalid header on a *longer* file means out-of-band
/// corruption of a segment that may hold records — that one is fatal.
fn is_torn_create(buf: &[u8]) -> bool {
    buf.len() <= HEADER_LEN && WalHeader::decode(buf).is_none()
}

/// An open write-ahead log, positioned for appending.
///
/// Appends are length-prefixed, checksummed, and synced to disk
/// (`sync_data`) before [`Wal::append`] returns — the commit boundary
/// *is* the fsync. All writes go through a [`ChaosFile`], so the
/// `GDP_CHAOS` disk-fault grammar can tear any byte of any record. See
/// the module docs for the format and the torn-tail policy.
#[derive(Debug)]
pub struct Wal {
    file: ChaosFile,
    header: WalHeader,
    next_seq: u64,
}

impl Wal {
    /// Create a fresh, empty log at `path`, truncating anything there.
    /// The header is written and synced immediately: an empty log is
    /// already self-describing.
    pub fn create(path: &Path, header: WalHeader) -> io::Result<Wal> {
        Wal::create_with_faults(path, header, None)
    }

    /// [`Wal::create`] with a disk-fault injection point under every
    /// subsequent write (the failpoint harness entry).
    pub fn create_with_faults(
        path: &Path,
        header: WalHeader,
        faults: Option<IoFaultConfig>,
    ) -> io::Result<Wal> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut file = ChaosFile::new(file, faults);
        file.write_all(&header.encode())?;
        file.sync_data()?;
        Ok(Wal {
            file,
            next_seq: header.start_seq,
            header,
        })
    }

    /// Open an existing log (creating an empty one with `default_header`
    /// if absent or empty): read the longest valid record prefix,
    /// truncate any torn tail, and return the recovered records together
    /// with a log positioned to append the next commit.
    ///
    /// The caller is responsible for checking the returned header's
    /// fingerprint against its base image — the log reports what it was
    /// created over; only the caller knows what it is replaying onto.
    pub fn open(path: &Path, default_header: WalHeader) -> io::Result<(Wal, Vec<WalRecord>)> {
        Wal::open_with_faults(path, default_header, None)
    }

    /// [`Wal::open`] with a disk-fault injection point under every
    /// subsequent write. Reads (recovery itself) are never faulted.
    pub fn open_with_faults(
        path: &Path,
        default_header: WalHeader,
        faults: Option<IoFaultConfig>,
    ) -> io::Result<(Wal, Vec<WalRecord>)> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut file = ChaosFile::new(file, faults);
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        if buf.is_empty() || is_torn_create(&buf) {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&default_header.encode())?;
            file.sync_data()?;
            return Ok((
                Wal {
                    file,
                    next_seq: default_header.start_seq,
                    header: default_header,
                },
                Vec::new(),
            ));
        }
        let Some(header) = WalHeader::decode(&buf) else {
            return Err(corrupt_header_error(path));
        };
        let (records, good) = parse_records(&buf, header.start_seq);
        if good < buf.len() {
            file.set_len(good as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(good as u64))?;
        let next_seq = header.start_seq + records.len() as u64;
        Ok((
            Wal {
                file,
                next_seq,
                header,
            },
            records,
        ))
    }

    /// Read a log without touching it: the header and the longest valid
    /// record prefix. `Ok(None)` when the file does not exist; a corrupt
    /// header on a non-empty file is an error (see the module docs).
    /// Recovery uses this to harvest records from rotated-out segments
    /// it will never append to.
    pub fn scan(path: &Path) -> io::Result<Option<(WalHeader, Vec<WalRecord>)>> {
        let buf = match std::fs::read(path) {
            Ok(buf) => buf,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        if buf.is_empty() || is_torn_create(&buf) {
            return Ok(None);
        }
        let Some(header) = WalHeader::decode(&buf) else {
            return Err(corrupt_header_error(path));
        };
        let (records, _good) = parse_records(&buf, header.start_seq);
        Ok(Some((header, records)))
    }

    /// The header this log was created with.
    pub fn header(&self) -> WalHeader {
        self.header
    }

    /// The sequence number the next [`Wal::append`] will write.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Append one committed delta and sync the file. The record is only
    /// durable — and the commit only acknowledgeable — once this returns.
    ///
    /// Oversized deltas (more than `u32::MAX` operations, or a payload
    /// past `u32::MAX` bytes) are rejected with an error instead of
    /// silently truncating the on-disk op count.
    pub fn append(&mut self, delta: &Delta) -> io::Result<u64> {
        let seq = self.next_seq;
        let ops: u32 = delta.len().try_into().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "delta of {} operations overflows the WAL op-count field",
                    delta.len()
                ),
            )
        })?;
        let mut payload = Vec::new();
        put_u64(&mut payload, seq);
        put_u32(&mut payload, ops);
        for op in delta.ops() {
            put_op(&mut payload, op);
        }
        let len: u32 = payload.len().try_into().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "delta payload of {} bytes overflows the WAL length field",
                    payload.len()
                ),
            )
        })?;
        let mut record = Vec::with_capacity(8 + payload.len());
        put_u32(&mut record, len);
        put_u32(&mut record, crc32(&payload));
        record.extend_from_slice(&payload);
        self.file.write_all(&record)?;
        self.file.sync_data()?;
        self.next_seq = seq + 1;
        Ok(seq)
    }
}

/// Replay recovered records into `kb`, oldest first. `kb` must be in the
/// same state the live KB was in when the log was created (the serving
/// layer opens its WAL right after base setup); replay then reproduces the
/// live store exactly — clause order, incremental indexes, generation
/// counters and epoch included (see [`KnowledgeBase::apply_op`]).
pub fn replay(records: &[WalRecord], kb: &mut KnowledgeBase) {
    for record in records {
        for op in record.delta.ops() {
            kb.apply_op(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(name: &str, arg: &str) -> Term {
        Term::pred(name, vec![Term::atom(arg)])
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gdp-wal-test-{tag}-{}", std::process::id()));
        p
    }

    fn committed_ops(kb: &mut KnowledgeBase, f: impl FnOnce(&mut KnowledgeBase)) -> Delta {
        kb.begin_delta();
        let mark = kb.delta_len();
        f(kb);
        let delta = kb.delta_since(mark);
        kb.end_delta();
        delta
    }

    /// A fresh-log header for tests that don't exercise fingerprints.
    fn hdr() -> WalHeader {
        WalHeader::new(0xFEED, 1)
    }

    #[test]
    fn roundtrip_all_op_kinds() {
        let path = temp_path("roundtrip");
        let mut live = KnowledgeBase::new();
        let mut wal = Wal::create(&path, hdr()).unwrap();
        let d1 = committed_ops(&mut live, |kb| {
            kb.assert_fact(fact("road", "s1"));
            kb.assert_fact(fact("road", "s2"));
            kb.assert_clause_in(
                GroupId::named("m1"),
                Term::pred("soil", vec![Term::var(0), Term::float(0.5)]),
                Term::pred("road", vec![Term::var(0)]),
            );
            kb.assert_fact(Term::pred("label", vec![Term::str("x-17"), Term::int(17)]));
        });
        wal.append(&d1).unwrap();
        let d2 = committed_ops(&mut live, |kb| {
            assert!(kb.retract_fact(&fact("road", "s1")));
            kb.retract_group(GroupId::named("m1"));
            kb.retract_predicate(PredKey::new("label", 2));
        });
        wal.append(&d2).unwrap();
        drop(wal);

        let (wal, records) = Wal::open(&path, hdr()).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(wal.next_seq(), 3);
        let mut recovered = KnowledgeBase::new();
        replay(&records, &mut recovered);
        assert!(recovered.content_eq(&live), "recover(log) != live KB");
        recovered.check_index_integrity().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = temp_path("torn");
        let mut live = KnowledgeBase::new();
        let mut wal = Wal::create(&path, hdr()).unwrap();
        let d1 = committed_ops(&mut live, |kb| kb.assert_fact(fact("p", "a")));
        wal.append(&d1).unwrap();
        let good_len = std::fs::metadata(&path).unwrap().len();
        let d2 = committed_ops(&mut live, |kb| kb.assert_fact(fact("p", "b")));
        wal.append(&d2).unwrap();
        drop(wal);
        // Crash mid-append of the second record: cut three bytes off.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();

        let (mut wal, records) = Wal::open(&path, hdr()).unwrap();
        assert_eq!(records.len(), 1, "only the intact prefix is recovered");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);
        // The log stays appendable from the clean boundary.
        assert_eq!(wal.append(&d2).unwrap(), 2);
        let (_, records) = Wal::open(&path, hdr()).unwrap();
        assert_eq!(records.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let path = temp_path("crc");
        let mut live = KnowledgeBase::new();
        let mut wal = Wal::create(&path, hdr()).unwrap();
        let d1 = committed_ops(&mut live, |kb| kb.assert_fact(fact("p", "a")));
        wal.append(&d1).unwrap();
        let d2 = committed_ops(&mut live, |kb| kb.assert_fact(fact("p", "b")));
        wal.append(&d2).unwrap();
        drop(wal);
        // Flip one payload byte of the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, records) = Wal::open(&path, hdr()).unwrap();
        assert_eq!(records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_and_missing_logs_open_clean() {
        let path = temp_path("empty");
        std::fs::remove_file(&path).ok();
        let (wal, records) = Wal::open(&path, hdr()).unwrap();
        assert!(records.is_empty());
        assert_eq!(wal.next_seq(), 1);
        std::fs::remove_file(&path).ok();
    }
}
