//! Durable write-ahead log of committed [`DeltaOp`] batches.
//!
//! The paper's "map data revision" workload makes the knowledge base a
//! *living* store; a serving layer that accepts revisions over a socket
//! must not lose an acknowledged commit to a crash. The WAL is the
//! standard answer: before a commit is acknowledged, its delta is appended
//! to an append-only log and the file is synced; recovery replays the log
//! over the same base state to reproduce the live knowledge base exactly
//! (clause order, incremental indexes, generation counters — see
//! [`KnowledgeBase::apply_op`]).
//!
//! ## Record format
//!
//! Every committed transaction is one record:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes]
//! payload = seq: u64 LE, op_count: u32 LE, op*
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the payload. Operations serialize the
//! [`DeltaOp`] variants with a one-byte tag; terms serialize structurally
//! (atoms and functors by name — the log is portable across processes with
//! different symbol-interning orders). Clause `n_vars` is recomputed on
//! decode, so a log can never smuggle in an inconsistent variable count.
//!
//! ## Torn-tail policy
//!
//! A crash mid-append leaves a torn record at the tail: a length running
//! past end-of-file, a checksum mismatch, or a sequence number that does
//! not continue the chain. [`Wal::open`] treats the first such record as
//! the end of the log — everything before it is returned as the recovered
//! prefix, and the file is truncated back to that point so the next append
//! continues from a clean boundary. Torn tails are *expected*, not fatal:
//! the commit they belonged to was never acknowledged.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use crate::delta::{Delta, DeltaOp};
use crate::kb::{Clause, GroupId, KnowledgeBase, PredKey};
use crate::symbol::Sym;
use crate::term::{Term, Var, F64};

/// IEEE CRC-32 (reflected polynomial 0xEDB88320), bit-serial — WAL
/// payloads are small and dominated by the fsync, not the checksum.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ----- payload encoding -----------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_term(out: &mut Vec<u8>, t: &Term) {
    match t {
        Term::Var(Var(v)) => {
            out.push(0);
            put_u32(out, *v);
        }
        Term::Atom(s) => {
            out.push(1);
            put_str(out, &s.as_str());
        }
        Term::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Term::Float(f) => {
            out.push(3);
            out.extend_from_slice(&f.get().to_le_bytes());
        }
        Term::Str(s) => {
            out.push(4);
            put_str(out, s);
        }
        Term::Compound(f, args) => {
            out.push(5);
            put_str(out, &f.as_str());
            put_u32(out, args.len() as u32);
            for arg in args.iter() {
                put_term(out, arg);
            }
        }
    }
}

fn put_clause(out: &mut Vec<u8>, clause: &Clause) {
    put_str(out, &clause.group.name().as_str());
    put_term(out, &clause.head);
    put_term(out, &clause.body);
}

fn put_key(out: &mut Vec<u8>, key: PredKey) {
    put_str(out, &key.name.as_str());
    put_u32(out, u32::from(key.arity));
}

fn put_op(out: &mut Vec<u8>, op: &DeltaOp) {
    match op {
        DeltaOp::Assert { key, clause } => {
            out.push(0);
            put_key(out, *key);
            put_clause(out, clause);
        }
        DeltaOp::RetractFact { key, pos, clause } => {
            out.push(1);
            put_key(out, *key);
            put_u64(out, *pos as u64);
            put_clause(out, clause);
        }
        DeltaOp::RetractGroup { group, removed } => {
            out.push(2);
            put_str(out, &group.name().as_str());
            put_u32(out, removed.len() as u32);
            for (key, pos, clause) in removed {
                put_key(out, *key);
                put_u64(out, *pos as u64);
                put_clause(out, clause);
            }
        }
        DeltaOp::RetractPredicate { key, clauses } => {
            out.push(3);
            put_key(out, *key);
            put_u32(out, clauses.len() as u32);
            for clause in clauses {
                put_clause(out, clause);
            }
        }
    }
}

// ----- payload decoding -----------------------------------------------------

/// Decoder over one payload slice. Every read is bounds-checked; `None`
/// means the payload is malformed (which [`Wal::open`] treats exactly like
/// a checksum failure: end of the recoverable prefix).
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|s| i64::from_le_bytes(s.try_into().unwrap()))
    }

    fn f64(&mut self) -> Option<f64> {
        self.take(8)
            .map(|s| f64::from_le_bytes(s.try_into().unwrap()))
    }

    fn str(&mut self) -> Option<&'a str> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).ok()
    }

    fn term(&mut self) -> Option<Term> {
        Some(match self.u8()? {
            0 => Term::Var(Var(self.u32()?)),
            1 => Term::Atom(Sym::new(self.str()?)),
            2 => Term::Int(self.i64()?),
            3 => Term::Float(F64::try_new(self.f64()?)?),
            4 => Term::Str(Arc::from(self.str()?)),
            5 => {
                let functor = Sym::new(self.str()?);
                let n = self.u32()? as usize;
                // A compound needs at least one byte per argument; anything
                // larger than the remaining payload is corruption, not a
                // request to allocate.
                if n > self.buf.len() - self.pos {
                    return None;
                }
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    args.push(self.term()?);
                }
                Term::compound(functor, args)
            }
            _ => return None,
        })
    }

    fn clause(&mut self) -> Option<Arc<Clause>> {
        let group = GroupId::named(self.str()?);
        let head = self.term()?;
        let body = self.term()?;
        Some(Arc::new(Clause::new(head, body, group)))
    }

    fn key(&mut self) -> Option<PredKey> {
        let name = self.str()?.to_owned();
        let arity = self.u32()? as usize;
        PredKey::try_new(&name, arity)
    }

    fn op(&mut self) -> Option<DeltaOp> {
        Some(match self.u8()? {
            0 => DeltaOp::Assert {
                key: self.key()?,
                clause: self.clause()?,
            },
            1 => DeltaOp::RetractFact {
                key: self.key()?,
                pos: usize::try_from(self.u64()?).ok()?,
                clause: self.clause()?,
            },
            2 => {
                let group = GroupId::named(self.str()?);
                let n = self.u32()? as usize;
                if n > self.buf.len() - self.pos {
                    return None;
                }
                let mut removed = Vec::with_capacity(n);
                for _ in 0..n {
                    let key = self.key()?;
                    let pos = usize::try_from(self.u64()?).ok()?;
                    removed.push((key, pos, self.clause()?));
                }
                DeltaOp::RetractGroup { group, removed }
            }
            3 => {
                let key = self.key()?;
                let n = self.u32()? as usize;
                if n > self.buf.len() - self.pos {
                    return None;
                }
                let mut clauses = Vec::with_capacity(n);
                for _ in 0..n {
                    clauses.push(self.clause()?);
                }
                DeltaOp::RetractPredicate { key, clauses }
            }
            _ => return None,
        })
    }

    fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// One recovered commit: its sequence number and the committed delta.
#[derive(Clone, Debug)]
pub struct WalRecord {
    /// Commit sequence number (1-based, strictly consecutive in a log).
    pub seq: u64,
    /// The committed operations, oldest first.
    pub delta: Delta,
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut cur = Cursor::new(payload);
    let seq = cur.u64()?;
    let n = cur.u32()? as usize;
    if n > payload.len() {
        return None;
    }
    let mut delta = Delta::new();
    for _ in 0..n {
        delta.push(cur.op()?);
    }
    if !cur.finished() {
        return None;
    }
    Some(WalRecord { seq, delta })
}

/// An open write-ahead log, positioned for appending.
///
/// Appends are length-prefixed, checksummed, and synced to disk
/// ([`File::sync_data`]) before [`Wal::append`] returns — the commit
/// boundary *is* the fsync. See the module docs for the format and the
/// torn-tail policy.
#[derive(Debug)]
pub struct Wal {
    file: File,
    next_seq: u64,
}

impl Wal {
    /// Create a fresh, empty log at `path`, truncating anything there.
    pub fn create(path: &Path) -> io::Result<Wal> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Wal { file, next_seq: 1 })
    }

    /// Open an existing log (creating an empty one if absent): read the
    /// longest valid record prefix, truncate any torn tail, and return the
    /// recovered records together with a log positioned to append the next
    /// commit.
    pub fn open(path: &Path) -> io::Result<(Wal, Vec<WalRecord>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let mut records = Vec::new();
        let mut good = 0usize;
        let mut next_seq = 1u64;
        // Stops at a clean end or the first torn header.
        while let Some(header) = buf.get(good..good + 8) {
            let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
            let Some(payload) = buf.get(good + 8..good + 8 + len) else {
                break; // torn payload
            };
            if crc32(payload) != crc {
                break; // torn or corrupted record
            }
            let Some(record) = decode_payload(payload) else {
                break; // checksum ok but structure malformed: stop here too
            };
            if record.seq != next_seq {
                break; // sequence discontinuity: do not replay past it
            }
            next_seq += 1;
            records.push(record);
            good += 8 + len;
        }
        if good < buf.len() {
            file.set_len(good as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(good as u64))?;
        Ok((Wal { file, next_seq }, records))
    }

    /// The sequence number the next [`Wal::append`] will write.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Append one committed delta and sync the file. The record is only
    /// durable — and the commit only acknowledgeable — once this returns.
    pub fn append(&mut self, delta: &Delta) -> io::Result<u64> {
        let seq = self.next_seq;
        let mut payload = Vec::new();
        put_u64(&mut payload, seq);
        put_u32(&mut payload, delta.len() as u32);
        for op in delta.ops() {
            put_op(&mut payload, op);
        }
        let mut record = Vec::with_capacity(8 + payload.len());
        put_u32(&mut record, payload.len() as u32);
        put_u32(&mut record, crc32(&payload));
        record.extend_from_slice(&payload);
        self.file.write_all(&record)?;
        self.file.sync_data()?;
        self.next_seq = seq + 1;
        Ok(seq)
    }
}

/// Replay recovered records into `kb`, oldest first. `kb` must be in the
/// same state the live KB was in when the log was created (the serving
/// layer opens its WAL right after base setup); replay then reproduces the
/// live store exactly — clause order, incremental indexes, generation
/// counters and epoch included (see [`KnowledgeBase::apply_op`]).
pub fn replay(records: &[WalRecord], kb: &mut KnowledgeBase) {
    for record in records {
        for op in record.delta.ops() {
            kb.apply_op(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(name: &str, arg: &str) -> Term {
        Term::pred(name, vec![Term::atom(arg)])
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gdp-wal-test-{tag}-{}", std::process::id()));
        p
    }

    fn committed_ops(kb: &mut KnowledgeBase, f: impl FnOnce(&mut KnowledgeBase)) -> Delta {
        kb.begin_delta();
        let mark = kb.delta_len();
        f(kb);
        let delta = kb.delta_since(mark);
        kb.end_delta();
        delta
    }

    #[test]
    fn roundtrip_all_op_kinds() {
        let path = temp_path("roundtrip");
        let mut live = KnowledgeBase::new();
        let mut wal = Wal::create(&path).unwrap();
        let d1 = committed_ops(&mut live, |kb| {
            kb.assert_fact(fact("road", "s1"));
            kb.assert_fact(fact("road", "s2"));
            kb.assert_clause_in(
                GroupId::named("m1"),
                Term::pred("soil", vec![Term::var(0), Term::float(0.5)]),
                Term::pred("road", vec![Term::var(0)]),
            );
            kb.assert_fact(Term::pred("label", vec![Term::str("x-17"), Term::int(17)]));
        });
        wal.append(&d1).unwrap();
        let d2 = committed_ops(&mut live, |kb| {
            assert!(kb.retract_fact(&fact("road", "s1")));
            kb.retract_group(GroupId::named("m1"));
            kb.retract_predicate(PredKey::new("label", 2));
        });
        wal.append(&d2).unwrap();
        drop(wal);

        let (wal, records) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(wal.next_seq(), 3);
        let mut recovered = KnowledgeBase::new();
        replay(&records, &mut recovered);
        assert!(recovered.content_eq(&live), "recover(log) != live KB");
        recovered.check_index_integrity().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = temp_path("torn");
        let mut live = KnowledgeBase::new();
        let mut wal = Wal::create(&path).unwrap();
        let d1 = committed_ops(&mut live, |kb| kb.assert_fact(fact("p", "a")));
        wal.append(&d1).unwrap();
        let good_len = std::fs::metadata(&path).unwrap().len();
        let d2 = committed_ops(&mut live, |kb| kb.assert_fact(fact("p", "b")));
        wal.append(&d2).unwrap();
        drop(wal);
        // Crash mid-append of the second record: cut three bytes off.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();

        let (mut wal, records) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 1, "only the intact prefix is recovered");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);
        // The log stays appendable from the clean boundary.
        assert_eq!(wal.append(&d2).unwrap(), 2);
        let (_, records) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let path = temp_path("crc");
        let mut live = KnowledgeBase::new();
        let mut wal = Wal::create(&path).unwrap();
        let d1 = committed_ops(&mut live, |kb| kb.assert_fact(fact("p", "a")));
        wal.append(&d1).unwrap();
        let d2 = committed_ops(&mut live, |kb| kb.assert_fact(fact("p", "b")));
        wal.append(&d2).unwrap();
        drop(wal);
        // Flip one payload byte of the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, records) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_and_missing_logs_open_clean() {
        let path = temp_path("empty");
        std::fs::remove_file(&path).ok();
        let (wal, records) = Wal::open(&path).unwrap();
        assert!(records.is_empty());
        assert_eq!(wal.next_seq(), 1);
        std::fs::remove_file(&path).ok();
    }
}
