//! Tabled resolution: a memoized answer cache for the SLD solver.
//!
//! The paper accepts "Prolog's computational inefficiency" as the price of
//! flexibility (§I); this module removes the recomputation part of that
//! price without touching the semantics. An [`AnswerTable`] maps
//! *canonicalized call patterns* — goals with their variables renamed in
//! first-occurrence order, so `p(X, Y)` and `p(A, B)` share one entry — to
//! the **complete** answer set the solver found for that pattern. The
//! solver consults the table before clause resolution for predicates
//! marked tabled (see [`crate::KnowledgeBase::mark_tabled`]) and replays
//! the cached answers instead of re-deriving them.
//!
//! Three rules keep this sound:
//!
//! * **Only completed enumerations are stored.** An entry is inserted only
//!   after the sub-enumeration exhausted every alternative within budget.
//!   Negation-as-failure and bounded `forall` therefore never observe a
//!   partial answer set: a hit *is* a completed table.
//! * **Dependency-aware invalidation.** Entries record a
//!   [`TableValidity`] snapshot: the global epoch they were built at plus
//!   the per-predicate generation counters of the call's static dependency
//!   closure (see [`crate::deps::DepGraph`]). At lookup time an entry
//!   survives if either the epoch is unchanged (nothing at all happened)
//!   or every predicate the call can actually reach still has the
//!   generation it was built against — so asserting a `soil/2` fact no
//!   longer flushes cached `road/1` answers. Entries whose closure
//!   contains a dynamic call (`call/1` through a variable) fall back to
//!   whole-epoch validity, as do entries built against a different
//!   structural configuration (indexing/strict mode), which can change
//!   solution *order* even where the answer set is fixed.
//! * **SLG evaluation for recursive patterns.** While a call pattern is
//!   being enumerated, a recursive call to the same pattern does *not*
//!   fall back to SLD: the solver keeps a per-query [`Forest`] of
//!   in-flight subgoals, recursive consumers read the producer's answer
//!   list as it grows, and a pattern only publishes to this table when
//!   its whole strongly-connected region of mutually recursive subgoals
//!   has been saturated to a fixpoint (so a hit here is still always a
//!   *completed* table — the NAF rule above is preserved). Cycles are
//!   resolved by the KB's [`CyclePolicy`]: inductive (the default) takes
//!   the least fixpoint — a derivation that only supports itself fails —
//!   while a coinductive predicate treats a cycle as success.
//!
//! The table lives inside the knowledge base behind a `parking_lot` lock
//! because [`crate::Solver::solve`] takes `&self`: queries only hold a
//! shared borrow of the KB, and the mutating operations all take `&mut`,
//! which is what makes "the epoch cannot move during a solve" a
//! compile-time guarantee.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::hash::{FxHashMap, FxHashSet};
use crate::kb::PredKey;
use crate::term::{Term, Var};

/// Validity snapshot a table entry is built against. Produced by
/// [`crate::KnowledgeBase::dep_snapshot`] from the predicate's static
/// dependency closure and compared on lookup; see the module docs for the
/// exact survival rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableValidity {
    /// Global modification epoch at snapshot time. Equality here is
    /// sufficient on its own: an unchanged epoch means *nothing* changed.
    pub epoch: u64,
    /// Structural-configuration generation (indexing/index layout/strict
    /// mode). These settings can change solution order or error behavior
    /// without touching any clause, so they gate dependency-based
    /// survival.
    pub structural: u64,
    /// The closure contains a dynamic call (`call/1` through a variable or
    /// an uninspectable goal), so its real dependency set is unknown and
    /// only exact epoch equality keeps the entry alive.
    pub dynamic: bool,
    /// `(predicate, generation)` for every predicate in the call's static
    /// dependency closure, in a canonical order so snapshots compare by
    /// simple `Vec` equality.
    pub deps: Arc<Vec<(PredKey, u64)>>,
}

impl TableValidity {
    /// A snapshot that is valid only at exactly this epoch — the
    /// conservative fallback when no dependency information is available.
    pub fn epoch_only(epoch: u64) -> TableValidity {
        TableValidity {
            epoch,
            structural: 0,
            dynamic: true,
            deps: Arc::new(Vec::new()),
        }
    }

    /// Is an entry built at `self` still usable under `current`?
    fn survives(&self, current: &TableValidity) -> bool {
        self.epoch == current.epoch
            || (!self.dynamic
                && !current.dynamic
                && self.structural == current.structural
                && self.deps == current.deps)
    }
}

/// One cached answer: the canonicalized solved instance of the call
/// pattern, with `n_vars` residual unbound variables numbered `0..n_vars`.
/// Replay allocates a fresh block of that many variables, offsets the
/// term into it, and unifies with the caller's goal — the same renaming-
/// apart discipline clause activation uses.
#[derive(Clone, Debug)]
pub struct CachedAnswer {
    /// Canonicalized answer instance.
    pub term: Term,
    /// Number of distinct residual variables in `term`.
    pub n_vars: u32,
}

/// Cumulative counters for table activity (monotonic over the table's
/// lifetime; snapshot via [`AnswerTable::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Lookups answered from a completed table.
    pub hits: u64,
    /// Lookups that found no usable entry.
    pub misses: u64,
    /// Completed answer sets recorded.
    pub inserts: u64,
    /// Entries dropped because their epoch no longer matched.
    pub invalidations: u64,
    /// Tabled calls resolved by plain SLD because they re-entered an
    /// active pattern from a context that cannot suspend (negation,
    /// aggregation, quantifier sub-machines).
    pub fallbacks: u64,
    /// Hits served from a *snapshot* table — answers carried over from the
    /// live KB into an MVCC snapshot and reused by a pinned reader. Always
    /// counted in addition to [`TableStats::hits`]; this is what makes
    /// snapshot reuse observable (the serving layer's analogue of a cache
    /// hit ratio).
    pub snapshot_hits: u64,
}

/// Outcome of [`AnswerTable::lookup`].
pub enum Lookup {
    /// A completed answer set whose validity snapshot still holds.
    Hit(Arc<Vec<CachedAnswer>>),
    /// No usable entry; `invalidated` reports whether a stale entry was
    /// dropped on the way.
    Miss {
        /// A stale entry was dropped by this lookup.
        invalidated: bool,
    },
}

#[derive(Clone, Debug)]
struct TableEntry {
    validity: TableValidity,
    answers: Arc<Vec<CachedAnswer>>,
}

#[derive(Clone, Default)]
struct TableInner {
    entries: FxHashMap<Term, TableEntry>,
    stats: TableStats,
}

/// The memoized answer cache. See the module docs.
#[derive(Default)]
pub struct AnswerTable {
    inner: Mutex<TableInner>,
    /// This table belongs to an MVCC snapshot ([`AnswerTable::snapshot_clone`]):
    /// hits are additionally counted as [`TableStats::snapshot_hits`] and
    /// the solver reports them under their own trace port.
    snapshot: bool,
}

impl std::fmt::Debug for AnswerTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("AnswerTable")
            .field("entries", &inner.entries.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl AnswerTable {
    /// Empty table.
    pub fn new() -> AnswerTable {
        AnswerTable::default()
    }

    /// Look up a canonicalized call pattern. An entry whose validity
    /// snapshot no longer survives under `current` is dropped (counted as
    /// an invalidation) and reported as a miss.
    pub fn lookup(&self, pattern: &Term, current: &TableValidity) -> Lookup {
        let mut inner = self.inner.lock();
        match inner.entries.get(pattern) {
            Some(entry) if entry.validity.survives(current) => {
                let answers = Arc::clone(&entry.answers);
                inner.stats.hits += 1;
                if self.snapshot {
                    inner.stats.snapshot_hits += 1;
                }
                Lookup::Hit(answers)
            }
            Some(_) => {
                inner.entries.remove(pattern);
                inner.stats.invalidations += 1;
                inner.stats.misses += 1;
                Lookup::Miss { invalidated: true }
            }
            None => {
                inner.stats.misses += 1;
                Lookup::Miss { invalidated: false }
            }
        }
    }

    /// Record the complete answer set for a call pattern, together with
    /// the validity snapshot it was built against.
    pub fn insert(&self, pattern: Term, validity: TableValidity, answers: Arc<Vec<CachedAnswer>>) {
        let mut inner = self.inner.lock();
        inner
            .entries
            .insert(pattern, TableEntry { validity, answers });
        inner.stats.inserts += 1;
    }

    /// Drop every entry (stats are kept).
    pub fn clear(&self) {
        self.inner.lock().entries.clear();
    }

    /// Number of cached call patterns.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record an SLD fallback on an active pattern (see
    /// [`TableStats::fallbacks`]).
    pub(crate) fn note_fallback(&self) {
        self.inner.lock().stats.fallbacks += 1;
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> TableStats {
        self.inner.lock().stats
    }

    /// A copy of this table for an MVCC snapshot: same entries (the answer
    /// vectors are shared behind `Arc`), counters carried over, and the
    /// snapshot flag set so reuse is observable through
    /// [`TableStats::snapshot_hits`] and the solver's snapshot-hit port.
    /// Entries recorded *after* the pinned commit carry newer dependency
    /// generations and simply fail validation against the snapshot's
    /// restored counters — no entry filtering is needed here.
    pub fn snapshot_clone(&self) -> AnswerTable {
        AnswerTable {
            inner: Mutex::new(self.inner.lock().clone()),
            snapshot: true,
        }
    }

    /// Does this table belong to an MVCC snapshot?
    pub fn is_snapshot(&self) -> bool {
        self.snapshot
    }
}

/// Renumber variables in first-occurrence order, returning the canonical
/// term and the number of distinct variables. Alpha-equivalent terms map
/// to the same canonical term, which is what lets `p(X, Y)` and `p(A, B)`
/// share a table entry.
pub fn canonicalize(t: &Term) -> (Term, u32) {
    fn walk(t: &Term, map: &mut FxHashMap<Var, u32>) -> Term {
        match t {
            Term::Var(v) => {
                let next = map.len() as u32;
                Term::Var(Var(*map.entry(*v).or_insert(next)))
            }
            Term::Compound(f, args) => {
                let new_args: Vec<Term> = args.iter().map(|a| walk(a, map)).collect();
                Term::Compound(*f, new_args.into())
            }
            other => other.clone(),
        }
    }
    let mut map = FxHashMap::default();
    let canon = walk(t, &mut map);
    (canon, map.len() as u32)
}

/// Renumber variables in first-occurrence order (canonical term only).
pub fn canonicalize_vars(t: &Term) -> Term {
    canonicalize(t).0
}

/// How a *positive* recursive cycle through tabled subgoals is resolved.
///
/// Inductive reading (the default, and the standard SLG/well-founded
/// choice): an answer must be grounded in a finite derivation, so a
/// subgoal whose only support is itself derives nothing — `loop :- loop`
/// fails cleanly instead of exhausting the step budget. Coinductive
/// reading (co-SLD, as in mir-formality's cosld stack search): a cycle is
/// self-supporting evidence and the re-entered goal succeeds immediately —
/// the greatest-fixpoint semantics rational/stream definitions want.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CyclePolicy {
    /// Least fixpoint: a recursive re-entry contributes only the answers
    /// already derived; a pure cycle fails.
    #[default]
    Inductive,
    /// Greatest fixpoint: a recursive re-entry succeeds outright.
    Coinductive,
}

impl std::fmt::Display for CyclePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CyclePolicy::Inductive => "inductive",
            CyclePolicy::Coinductive => "coinductive",
        })
    }
}

/// One in-flight tabled subgoal on the [`Forest`] stack.
///
/// Its position in the stack doubles as its Tarjan depth-first number:
/// frames are pushed in evaluation order and only ever popped from the
/// top, in whole strongly-connected regions, so `link <= position` is the
/// classic low-link invariant.
#[derive(Debug)]
pub(crate) struct SubgoalFrame {
    /// Predicate of the call pattern (ports and the persistent insert).
    pub(crate) key: PredKey,
    /// Canonicalized call pattern (variables numbered `0..n_vars`).
    pub(crate) pattern: Term,
    /// Dependency snapshot taken when evaluation started; the completed
    /// answer set publishes against it.
    pub(crate) validity: Arc<TableValidity>,
    /// Answers derived so far, in derivation order. Until the subgoal is
    /// observed to be recursive this list preserves duplicates exactly
    /// like the plain enumerating path did; see [`Forest::flip_from`].
    pub(crate) answers: Vec<CachedAnswer>,
    /// Canonical answer terms already present — allocated lazily on the
    /// first sign of recursion, when the evaluation switches to set
    /// semantics so fixpoint re-passes cannot multiply duplicates.
    seen: Option<FxHashSet<Term>>,
    /// Lowest stack position this subgoal's evaluation reached back into
    /// (its own position while no cycle has been observed).
    pub(crate) link: usize,
    /// A consumer re-entered this pattern, or it joined a region with one:
    /// the evaluation needs fixpoint passes and deduplicated answers.
    pub(crate) recursive: bool,
}

/// The per-query answer forest: the stack of in-flight tabled subgoals the
/// SLG evaluation is saturating, indexed by call pattern.
///
/// Shared (`Rc<RefCell<_>>`) by the top-level solver machine and every
/// sub-machine it spawns, the way the budget is — a recursive call in a
/// nested producer must find the frame its ancestor pushed. Completed
/// regions leave the forest and land in the KB's persistent
/// [`AnswerTable`]; the forest is empty between top-level goals.
#[derive(Debug, Default)]
pub(crate) struct Forest {
    /// Pattern → stack position of its active frame.
    index: FxHashMap<Term, usize>,
    frames: Vec<SubgoalFrame>,
    /// Monotone counter bumped by every answer insertion; saturation
    /// passes compare it before/after to detect a fixpoint.
    stamp: u64,
}

impl Forest {
    pub(crate) fn new() -> Forest {
        Forest::default()
    }

    /// Stack position of the active frame for `pattern`, if one exists.
    pub(crate) fn active_pos(&self, pattern: &Term) -> Option<usize> {
        self.index.get(pattern).copied()
    }

    /// Push a new subgoal frame; returns its stack position.
    pub(crate) fn push(
        &mut self,
        key: PredKey,
        pattern: Term,
        validity: Arc<TableValidity>,
    ) -> usize {
        let pos = self.frames.len();
        self.index.insert(pattern.clone(), pos);
        self.frames.push(SubgoalFrame {
            key,
            pattern,
            validity,
            answers: Vec::new(),
            seen: None,
            link: pos,
            recursive: false,
        });
        pos
    }

    pub(crate) fn len(&self) -> usize {
        self.frames.len()
    }

    pub(crate) fn stamp(&self) -> u64 {
        self.stamp
    }

    pub(crate) fn link(&self, pos: usize) -> usize {
        self.frames[pos].link
    }

    pub(crate) fn is_recursive(&self, pos: usize) -> bool {
        self.frames[pos].recursive
    }

    pub(crate) fn key(&self, pos: usize) -> PredKey {
        self.frames[pos].key
    }

    pub(crate) fn pattern(&self, pos: usize) -> Term {
        self.frames[pos].pattern.clone()
    }

    pub(crate) fn answers_len(&self, pos: usize) -> usize {
        self.frames[pos].answers.len()
    }

    pub(crate) fn answer(&self, pos: usize, i: usize) -> CachedAnswer {
        self.frames[pos].answers[i].clone()
    }

    /// A consumer at frame `from` re-entered the pattern of frame `to`:
    /// record the edge in `from`'s low link and flip every frame in the
    /// affected region to recursive/set semantics. `to` is usually below
    /// `from` (a back edge), but a cross edge to a leftover uncompleted
    /// sibling *above* the consumer is possible too — either way the
    /// frames between them saturate together.
    pub(crate) fn record_link(&mut self, from: usize, to: usize) {
        let frame = &mut self.frames[from];
        frame.link = frame.link.min(to);
        self.flip_from(from.min(to));
    }

    /// Fold a finished-but-incomplete child evaluation's low link into its
    /// enclosing frame. An uncompleted child always forces fixpoint
    /// re-passes over the parent, so the affected region flips to set
    /// semantics regardless of edge direction.
    pub(crate) fn propagate(&mut self, parent: usize, child_link: usize) {
        let frame = &mut self.frames[parent];
        frame.link = frame.link.min(child_link);
        self.flip_from(parent.min(child_link));
    }

    /// Switch every frame at or above `pos` to recursive evaluation:
    /// deduplicate the answers accumulated so far (keeping first
    /// occurrences, so replay order is the derivation order) and install
    /// the seen-set that makes further insertion idempotent. Consumers
    /// only come into existence at or after the flip of their target, so
    /// no live answer cursor can observe the compaction.
    fn flip_from(&mut self, pos: usize) {
        for frame in &mut self.frames[pos..] {
            if frame.recursive {
                continue;
            }
            frame.recursive = true;
            let mut seen = FxHashSet::default();
            frame.answers.retain(|a| seen.insert(a.term.clone()));
            frame.seen = Some(seen);
        }
    }

    /// Record a derived answer for the frame at `pos`. Returns whether the
    /// answer was fresh (pre-recursion frames keep duplicates and always
    /// report fresh, exactly like the old enumerating path).
    pub(crate) fn insert_answer(&mut self, pos: usize, answer: CachedAnswer) -> bool {
        let frame = &mut self.frames[pos];
        if let Some(seen) = &mut frame.seen {
            if !seen.insert(answer.term.clone()) {
                return false;
            }
        }
        frame.answers.push(answer);
        self.stamp += 1;
        true
    }

    /// Pop the completed region `[pos..]` off the stack, returning its
    /// frames bottom-up (the leader first) for publication.
    pub(crate) fn complete_region(&mut self, pos: usize) -> Vec<SubgoalFrame> {
        debug_assert!(
            self.frames[pos..].iter().all(|f| f.link >= pos),
            "completing a region with links below its leader"
        );
        let frames: Vec<SubgoalFrame> = self.frames.drain(pos..).collect();
        for frame in &frames {
            self.index.remove(&frame.pattern);
        }
        frames
    }

    /// Error-path cleanup: drop the frames at `[pos..]` without
    /// publishing anything (only completed evaluations may publish).
    pub(crate) fn unwind_to(&mut self, pos: usize) {
        while self.frames.len() > pos {
            let frame = self.frames.pop().expect("len > pos");
            self.index.remove(&frame.pattern);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn goal(vars: &[u32]) -> Term {
        Term::pred("p", vars.iter().map(|&v| Term::var(v)).collect())
    }

    #[test]
    fn variants_share_a_pattern() {
        assert_eq!(canonicalize_vars(&goal(&[7, 9])), goal(&[0, 1]));
        assert_eq!(
            canonicalize_vars(&goal(&[3, 4])),
            canonicalize_vars(&goal(&[10, 2]))
        );
        // Repeated variables stay repeated; distinct stay distinct.
        assert_ne!(
            canonicalize_vars(&goal(&[5, 5])),
            canonicalize_vars(&goal(&[5, 6]))
        );
    }

    #[test]
    fn canonicalize_counts_vars() {
        let t = Term::pred(
            "f",
            vec![Term::var(8), Term::atom("a"), Term::var(8), Term::var(2)],
        );
        let (canon, n) = canonicalize(&t);
        assert_eq!(n, 2);
        assert_eq!(
            canon,
            Term::pred(
                "f",
                vec![Term::var(0), Term::atom("a"), Term::var(0), Term::var(1)],
            )
        );
    }

    #[test]
    fn lookup_hit_miss_and_epoch_invalidation() {
        let table = AnswerTable::new();
        let pat = canonicalize_vars(&goal(&[1]));
        assert!(matches!(
            table.lookup(&pat, &TableValidity::epoch_only(0)),
            Lookup::Miss { invalidated: false }
        ));
        table.insert(
            pat.clone(),
            TableValidity::epoch_only(0),
            Arc::new(vec![CachedAnswer {
                term: Term::pred("p", vec![Term::atom("a")]),
                n_vars: 0,
            }]),
        );
        let Lookup::Hit(answers) = table.lookup(&pat, &TableValidity::epoch_only(0)) else {
            panic!("expected hit");
        };
        assert_eq!(answers.len(), 1);
        // Same pattern at a newer epoch: stale entry dropped (epoch-only
        // snapshots are dynamic, so no dependency survival applies).
        assert!(matches!(
            table.lookup(&pat, &TableValidity::epoch_only(1)),
            Lookup::Miss { invalidated: true }
        ));
        assert!(table.is_empty());
        let stats = table.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.invalidations, 1);
    }

    #[test]
    fn dependency_snapshot_survives_unrelated_epoch_bump() {
        let table = AnswerTable::new();
        let pat = canonicalize_vars(&goal(&[1]));
        let deps = Arc::new(vec![(PredKey::new("p", 1), 3)]);
        let built = TableValidity {
            epoch: 5,
            structural: 0,
            dynamic: false,
            deps: Arc::clone(&deps),
        };
        table.insert(pat.clone(), built.clone(), Arc::new(Vec::new()));
        // Epoch moved (something unrelated changed) but p/1's generation
        // didn't: the entry survives.
        let current = TableValidity {
            epoch: 9,
            ..built.clone()
        };
        assert!(matches!(table.lookup(&pat, &current), Lookup::Hit(_)));
        // p/1's generation moved: dropped.
        let current = TableValidity {
            epoch: 10,
            deps: Arc::new(vec![(PredKey::new("p", 1), 4)]),
            ..built.clone()
        };
        assert!(matches!(
            table.lookup(&pat, &current),
            Lookup::Miss { invalidated: true }
        ));
        // Structural config moved with generations intact: also dropped.
        table.insert(pat.clone(), built.clone(), Arc::new(Vec::new()));
        let current = TableValidity {
            epoch: 11,
            structural: 1,
            ..built
        };
        assert!(matches!(
            table.lookup(&pat, &current),
            Lookup::Miss { invalidated: true }
        ));
    }

    #[test]
    fn clear_keeps_stats() {
        let table = AnswerTable::new();
        table.insert(
            Term::atom("q"),
            TableValidity::epoch_only(0),
            Arc::new(Vec::new()),
        );
        assert_eq!(table.len(), 1);
        table.clear();
        assert!(table.is_empty());
        assert_eq!(table.stats().inserts, 1);
    }
}
