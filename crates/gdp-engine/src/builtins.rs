//! Deterministic builtin predicates.
//!
//! These are the "operations over semantic-domain values returning Boolean
//! values" the paper allows inside virtual-fact and constraint definitions
//! (§III.B): unification, structural and arithmetic comparison, type tests,
//! and term construction/inspection. Control constructs (`,`, `;`, `not`,
//! `forall`, aggregation) live in the solver because they need choice points
//! or sub-machines.

use crate::arith;
use crate::error::{EngineError, EngineResult};
use crate::kb::PredKey;
use crate::list::list_to_vec;
use crate::symbol::{symbols, Sym};
use crate::term::Term;
use crate::unify::{resolve_deep, BindStore};

/// Result of attempting to dispatch a goal as a builtin.
pub enum BuiltinOutcome {
    /// The builtin ran and succeeded (bindings retained).
    Succeeded,
    /// The builtin ran and failed.
    Failed,
    /// The key names no builtin; the solver should try natives and clauses.
    NotABuiltin,
}

impl From<bool> for BuiltinOutcome {
    fn from(b: bool) -> BuiltinOutcome {
        if b {
            BuiltinOutcome::Succeeded
        } else {
            BuiltinOutcome::Failed
        }
    }
}

/// Try to run `key(args…)` as a builtin.
pub fn dispatch(
    store: &mut BindStore,
    key: PredKey,
    args: &[Term],
) -> EngineResult<BuiltinOutcome> {
    let name = key.name;
    let out: bool = if name == symbols::unify() && args.len() == 2 {
        store.unify(&args[0], &args[1])
    } else if name == symbols::not_unify() && args.len() == 2 {
        // a \= b: succeeds iff unification fails; never leaves bindings.
        let mark = store.mark();
        let unified = store.unify(&args[0], &args[1]);
        store.undo_to(mark);
        !unified
    } else if name == symbols::struct_eq() && args.len() == 2 {
        resolve_deep(store, &args[0]) == resolve_deep(store, &args[1])
    } else if name == symbols::struct_ne() && args.len() == 2 {
        resolve_deep(store, &args[0]) != resolve_deep(store, &args[1])
    } else if name == symbols::is() && args.len() == 2 {
        let v = arith::eval(store, &args[1])?;
        store.unify(&args[0], &v.into_term())
    } else if args.len() == 2 && is_arith_cmp(name) {
        let a = arith::eval(store, &args[0])?;
        let b = arith::eval(store, &args[1])?;
        let ord = a.compare(b);
        arith_cmp_holds(name, ord)
    } else if name == symbols::var_test() && args.len() == 1 {
        matches!(store.deref(&args[0]), Term::Var(_))
    } else if name == symbols::nonvar() && args.len() == 1 {
        !matches!(store.deref(&args[0]), Term::Var(_))
    } else if name == symbols::atom_test() && args.len() == 1 {
        matches!(store.deref(&args[0]), Term::Atom(_))
    } else if name == symbols::number() && args.len() == 1 {
        matches!(store.deref(&args[0]), Term::Int(_) | Term::Float(_))
    } else if name == symbols::ground() && args.len() == 1 {
        resolve_deep(store, &args[0]).is_ground()
    } else if name == symbols::functor() && args.len() == 3 {
        return functor3(store, args).map(BuiltinOutcome::from);
    } else if name == symbols::arg() && args.len() == 3 {
        return arg3(store, args).map(BuiltinOutcome::from);
    } else if name == symbols::univ() && args.len() == 2 {
        return univ2(store, args).map(BuiltinOutcome::from);
    } else if name == symbols::length() && args.len() == 2 {
        let list = resolve_deep(store, &args[0]);
        match list_to_vec(&list) {
            Some(items) => store.unify(&args[1], &Term::Int(items.len() as i64)),
            None => false,
        }
    } else if (name == symbols::msort() || name == symbols::sort()) && args.len() == 2 {
        let list = resolve_deep(store, &args[0]);
        let Some(mut items) = list_to_vec(&list) else {
            return Ok(BuiltinOutcome::Failed);
        };
        items.sort_by(|a, b| a.order(b));
        if name == symbols::sort() {
            items.dedup();
        }
        store.unify(&args[1], &Term::list(items))
    } else if name == symbols::reverse() && args.len() == 2 {
        let list = resolve_deep(store, &args[0]);
        let Some(mut items) = list_to_vec(&list) else {
            return Ok(BuiltinOutcome::Failed);
        };
        items.reverse();
        store.unify(&args[1], &Term::list(items))
    } else if name == symbols::nth0() && args.len() == 3 {
        let idx = match store.deref(&args[0]) {
            Term::Int(n) => *n,
            _ => return Ok(BuiltinOutcome::Failed),
        };
        let list = resolve_deep(store, &args[1]);
        let Some(items) = list_to_vec(&list) else {
            return Ok(BuiltinOutcome::Failed);
        };
        match usize::try_from(idx).ok().and_then(|i| items.get(i)) {
            Some(item) => {
                let item = item.clone();
                store.unify(&args[2], &item)
            }
            None => false,
        }
    } else if name == symbols::sum_list() && args.len() == 2 {
        let list = resolve_deep(store, &args[0]);
        let Some(items) = list_to_vec(&list) else {
            return Ok(BuiltinOutcome::Failed);
        };
        let mut total = 0.0;
        for item in &items {
            match item.as_f64() {
                Some(v) => total += v,
                None => {
                    return Err(EngineError::TypeError {
                        context: "sum_list/2",
                        expected: "numeric list",
                        found: item.clone(),
                    })
                }
            }
        }
        store.unify(&args[1], &Term::float(total))
    } else if name == symbols::compare() && args.len() == 3 {
        let a = resolve_deep(store, &args[1]);
        let b = resolve_deep(store, &args[2]);
        let sym = match a.order(&b) {
            std::cmp::Ordering::Less => "<",
            std::cmp::Ordering::Equal => "=",
            std::cmp::Ordering::Greater => ">",
        };
        store.unify(&args[0], &Term::atom(sym))
    } else {
        return Ok(BuiltinOutcome::NotABuiltin);
    };
    Ok(out.into())
}

fn is_arith_cmp(name: Sym) -> bool {
    name == symbols::lt()
        || name == symbols::le()
        || name == symbols::gt()
        || name == symbols::ge()
        || name == symbols::arith_eq()
        || name == symbols::arith_ne()
}

fn arith_cmp_holds(name: Sym, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    if name == symbols::lt() {
        ord == Less
    } else if name == symbols::le() {
        ord != Greater
    } else if name == symbols::gt() {
        ord == Greater
    } else if name == symbols::ge() {
        ord != Less
    } else if name == symbols::arith_eq() {
        ord == Equal
    } else {
        ord != Equal
    }
}

/// `functor(Term, Name, Arity)` — analysis and synthesis directions.
fn functor3(store: &mut BindStore, args: &[Term]) -> EngineResult<bool> {
    let t = store.deref(&args[0]).clone();
    match &t {
        Term::Var(_) => {
            // Synthesis: Name and Arity must be bound.
            let name = store.deref(&args[1]).clone();
            let arity = store.deref(&args[2]).clone();
            let (name, arity) = match (&name, &arity) {
                (Term::Atom(s), Term::Int(n)) if *n >= 0 => (*s, *n as usize),
                (t @ (Term::Int(_) | Term::Float(_) | Term::Str(_)), Term::Int(0)) => {
                    return Ok(store.unify(&args[0], t));
                }
                (Term::Var(_), _) | (_, Term::Var(_)) => {
                    return Err(EngineError::Instantiation {
                        context: "functor/3",
                    })
                }
                _ => {
                    return Err(EngineError::TypeError {
                        context: "functor/3",
                        expected: "atom name and non-negative arity",
                        found: name.clone(),
                    })
                }
            };
            let fresh_base = store.alloc_block(arity as u32);
            let args_vec: Vec<Term> = (0..arity as u32)
                .map(|i| Term::var(fresh_base + i))
                .collect();
            Ok(store.unify(&args[0], &Term::compound(name, args_vec)))
        }
        Term::Atom(s) => {
            Ok(store.unify(&args[1], &Term::Atom(*s)) && store.unify(&args[2], &Term::Int(0)))
        }
        Term::Int(_) | Term::Float(_) | Term::Str(_) => {
            Ok(store.unify(&args[1], &t) && store.unify(&args[2], &Term::Int(0)))
        }
        Term::Compound(f, fargs) => Ok(store.unify(&args[1], &Term::Atom(*f))
            && store.unify(&args[2], &Term::Int(fargs.len() as i64))),
    }
}

/// `arg(N, Term, Arg)` — N-th argument (1-based) of a compound.
fn arg3(store: &mut BindStore, args: &[Term]) -> EngineResult<bool> {
    let n = match store.deref(&args[0]) {
        Term::Int(n) => *n,
        Term::Var(_) => return Err(EngineError::Instantiation { context: "arg/3" }),
        other => {
            return Err(EngineError::TypeError {
                context: "arg/3",
                expected: "integer index",
                found: other.clone(),
            })
        }
    };
    let t = store.deref(&args[1]).clone();
    match &t {
        Term::Compound(_, fargs) => {
            if n < 1 || n as usize > fargs.len() {
                return Ok(false);
            }
            let picked = fargs[(n - 1) as usize].clone();
            Ok(store.unify(&args[2], &picked))
        }
        Term::Var(_) => Err(EngineError::Instantiation { context: "arg/3" }),
        other => Err(EngineError::TypeError {
            context: "arg/3",
            expected: "compound term",
            found: other.clone(),
        }),
    }
}

/// `Term =.. List` — "univ": decompose/construct a term from a list.
fn univ2(store: &mut BindStore, args: &[Term]) -> EngineResult<bool> {
    let t = store.deref(&args[0]).clone();
    match &t {
        Term::Var(_) => {
            let list = resolve_deep(store, &args[1]);
            let items = list_to_vec(&list).ok_or(EngineError::TypeError {
                context: "=../2",
                expected: "proper list",
                found: list.clone(),
            })?;
            let Some((head, rest)) = items.split_first() else {
                return Err(EngineError::TypeError {
                    context: "=../2",
                    expected: "non-empty list",
                    found: list,
                });
            };
            let built = match head {
                Term::Atom(f) => Term::compound(*f, rest.to_vec()),
                t @ (Term::Int(_) | Term::Float(_) | Term::Str(_)) if rest.is_empty() => t.clone(),
                other => {
                    return Err(EngineError::TypeError {
                        context: "=../2",
                        expected: "atom functor",
                        found: other.clone(),
                    })
                }
            };
            Ok(store.unify(&args[0], &built))
        }
        Term::Atom(s) => Ok(store.unify(&args[1], &Term::list(vec![Term::Atom(*s)]))),
        Term::Int(_) | Term::Float(_) | Term::Str(_) => {
            Ok(store.unify(&args[1], &Term::list(vec![t.clone()])))
        }
        Term::Compound(f, fargs) => {
            let mut items = Vec::with_capacity(fargs.len() + 1);
            items.push(Term::Atom(*f));
            items.extend(fargs.iter().cloned());
            Ok(store.unify(&args[1], &Term::list(items)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::kb::KnowledgeBase;
    use crate::solver::Solver;
    use crate::term::Var;

    fn run(goal: Term) -> Vec<crate::solver::Solution> {
        let kb = KnowledgeBase::new();
        Solver::new(&kb, Budget::default()).solve_all(goal).unwrap()
    }

    fn holds(goal: Term) -> bool {
        let kb = KnowledgeBase::new();
        Solver::new(&kb, Budget::default()).prove(goal).unwrap()
    }

    #[test]
    fn is_evaluates() {
        let sols = run(Term::pred(
            "is",
            vec![
                Term::var(0),
                Term::pred("+", vec![Term::int(40), Term::int(2)]),
            ],
        ));
        assert_eq!(sols[0].get(Var(0)).unwrap(), &Term::Int(42));
    }

    #[test]
    fn comparisons() {
        assert!(holds(Term::pred("<", vec![Term::int(1), Term::int(2)])));
        assert!(!holds(Term::pred("<", vec![Term::int(2), Term::int(2)])));
        assert!(holds(Term::pred("=<", vec![Term::int(2), Term::int(2)])));
        assert!(holds(Term::pred(
            "=:=",
            vec![Term::int(2), Term::float(2.0)]
        )));
        assert!(holds(Term::pred(">", vec![Term::float(2.5), Term::int(2)])));
    }

    #[test]
    fn not_unify_leaves_no_bindings() {
        // X \= a, X = b must succeed: \= may not bind X.
        let goal = Term::and(
            Term::pred("\\=", vec![Term::var(0), Term::var(1)]),
            Term::atom("true"),
        );
        // X \= Y with both unbound: they *can* unify, so \= fails.
        assert!(run(goal).is_empty());
        assert!(holds(Term::pred(
            "\\=",
            vec![Term::atom("a"), Term::atom("b")]
        )));
    }

    #[test]
    fn structural_equality_distinguishes_unbound() {
        // == is identity, not unifiability.
        assert!(!holds(Term::pred(
            "==",
            vec![Term::var(0), Term::atom("a")]
        )));
        assert!(holds(Term::pred(
            "==",
            vec![Term::atom("a"), Term::atom("a")]
        )));
        assert!(holds(Term::pred("\\==", vec![Term::var(0), Term::var(1)])));
    }

    #[test]
    fn type_tests() {
        assert!(holds(Term::pred("var", vec![Term::var(0)])));
        assert!(holds(Term::pred("atom", vec![Term::atom("x")])));
        assert!(holds(Term::pred("number", vec![Term::float(1.5)])));
        assert!(holds(Term::pred(
            "ground",
            vec![Term::pred("f", vec![Term::int(1)])]
        )));
        assert!(!holds(Term::pred(
            "ground",
            vec![Term::pred("f", vec![Term::var(0)])]
        )));
    }

    #[test]
    fn functor_analysis() {
        let goal = Term::pred(
            "functor",
            vec![
                Term::pred("elev", vec![Term::int(1), Term::int(2)]),
                Term::var(0),
                Term::var(1),
            ],
        );
        let sols = run(goal);
        assert_eq!(sols[0].get(Var(0)).unwrap(), &Term::atom("elev"));
        assert_eq!(sols[0].get(Var(1)).unwrap(), &Term::Int(2));
    }

    #[test]
    fn functor_synthesis() {
        let goal = Term::pred(
            "functor",
            vec![Term::var(0), Term::atom("pt"), Term::int(2)],
        );
        let sols = run(goal);
        let t = sols[0].get(Var(0)).unwrap();
        assert_eq!(t.functor(), Some(Sym::new("pt")));
        assert_eq!(t.arity(), Some(2));
    }

    #[test]
    fn arg_picks() {
        let goal = Term::pred(
            "arg",
            vec![
                Term::int(2),
                Term::pred("pt", vec![Term::int(3), Term::int(4)]),
                Term::var(0),
            ],
        );
        let sols = run(goal);
        assert_eq!(sols[0].get(Var(0)).unwrap(), &Term::Int(4));
        // Out of range fails, not errors.
        assert!(!holds(Term::pred(
            "arg",
            vec![
                Term::int(5),
                Term::pred("pt", vec![Term::int(3)]),
                Term::var(0)
            ]
        )));
    }

    #[test]
    fn univ_both_directions() {
        let decompose = Term::pred(
            "=..",
            vec![
                Term::pred("pt", vec![Term::int(1), Term::int(2)]),
                Term::var(0),
            ],
        );
        let sols = run(decompose);
        assert_eq!(sols[0].get(Var(0)).unwrap().to_string(), "[pt, 1, 2]");

        let compose = Term::pred(
            "=..",
            vec![
                Term::var(0),
                Term::list(vec![Term::atom("pt"), Term::int(1), Term::int(2)]),
            ],
        );
        let sols = run(compose);
        assert_eq!(
            sols[0].get(Var(0)).unwrap(),
            &Term::pred("pt", vec![Term::int(1), Term::int(2)])
        );
    }

    #[test]
    fn compare_orders() {
        let goal = Term::pred("compare", vec![Term::var(0), Term::int(1), Term::int(2)]);
        let sols = run(goal);
        assert_eq!(sols[0].get(Var(0)).unwrap(), &Term::atom("<"));
    }

    #[test]
    fn comparison_on_atom_is_type_error() {
        let kb = KnowledgeBase::new();
        let r = Solver::new(&kb, Budget::default())
            .prove(Term::pred("<", vec![Term::atom("green"), Term::int(1)]));
        assert!(matches!(r, Err(EngineError::TypeError { .. })));
    }
}

#[cfg(test)]
mod list_builtin_tests {
    use super::*;
    use crate::budget::Budget;
    use crate::kb::KnowledgeBase;
    use crate::solver::Solver;
    use crate::term::Var;

    fn run(goal: Term) -> Vec<crate::solver::Solution> {
        let kb = KnowledgeBase::new();
        Solver::new(&kb, Budget::default()).solve_all(goal).unwrap()
    }

    fn nums(items: &[i64]) -> Term {
        Term::list(items.iter().map(|&v| Term::Int(v)).collect())
    }

    #[test]
    fn length_of_lists() {
        let sols = run(Term::pred("length", vec![nums(&[4, 5, 6]), Term::var(0)]));
        assert_eq!(sols[0].get(Var(0)).unwrap(), &Term::int(3));
        let sols = run(Term::pred("length", vec![Term::nil(), Term::var(0)]));
        assert_eq!(sols[0].get(Var(0)).unwrap(), &Term::int(0));
        // Improper list fails, not errors.
        assert!(run(Term::pred(
            "length",
            vec![Term::cons(Term::int(1), Term::int(2)), Term::var(0)]
        ))
        .is_empty());
    }

    #[test]
    fn msort_keeps_duplicates_sort_drops_them() {
        let input = nums(&[3, 1, 2, 1]);
        let sols = run(Term::pred("msort", vec![input.clone(), Term::var(0)]));
        assert_eq!(sols[0].get(Var(0)).unwrap().to_string(), "[1, 1, 2, 3]");
        let sols = run(Term::pred("sort", vec![input, Term::var(0)]));
        assert_eq!(sols[0].get(Var(0)).unwrap().to_string(), "[1, 2, 3]");
    }

    #[test]
    fn reverse_and_nth0() {
        let sols = run(Term::pred("reverse", vec![nums(&[1, 2, 3]), Term::var(0)]));
        assert_eq!(sols[0].get(Var(0)).unwrap().to_string(), "[3, 2, 1]");
        let sols = run(Term::pred(
            "nth0",
            vec![Term::int(1), nums(&[7, 8, 9]), Term::var(0)],
        ));
        assert_eq!(sols[0].get(Var(0)).unwrap(), &Term::int(8));
        // Out of range fails.
        assert!(run(Term::pred(
            "nth0",
            vec![Term::int(9), nums(&[7]), Term::var(0)]
        ))
        .is_empty());
    }

    #[test]
    fn sum_list_totals() {
        let sols = run(Term::pred("sum_list", vec![nums(&[1, 2, 3]), Term::var(0)]));
        assert_eq!(sols[0].get(Var(0)).unwrap().as_f64(), Some(6.0));
        let sols = run(Term::pred("sum_list", vec![Term::nil(), Term::var(0)]));
        assert_eq!(sols[0].get(Var(0)).unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn sum_list_type_error_on_non_numbers() {
        let kb = KnowledgeBase::new();
        let goal = Term::pred(
            "sum_list",
            vec![Term::list(vec![Term::atom("x")]), Term::var(0)],
        );
        assert!(matches!(
            Solver::new(&kb, Budget::default()).prove(goal),
            Err(EngineError::TypeError { .. })
        ));
    }
}
