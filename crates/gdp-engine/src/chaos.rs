//! Deterministic fault injection riding the trace-port stream.
//!
//! Robustness claims ("one bad goal degrades the audit, never destroys
//! it") are only as good as the faults they were tested against. This
//! module injects faults *deterministically*: a [`ChaosSink`] wraps any
//! other [`TraceSink`] and, at the K-th port event it observes, either
//!
//! * trips a [`CancelToken`] (→ [`crate::EngineError::Cancelled`]),
//! * force-expires the token as a deadline
//!   (→ [`crate::EngineError::DeadlineExceeded`]), or
//! * panics outright — exercising the per-goal `catch_unwind` isolation
//!   in [`crate::ParallelSolver`]
//!   (→ [`crate::EngineError::GoalPanicked`]).
//!
//! Port events are the natural injection clock: they are emitted at every
//! semantically meaningful solver transition (call, exit, redo, fail,
//! table traffic, native dispatch), their sequence is a pure function of
//! the knowledge base and goal, and the sink machinery already exists —
//! so "the K-th event" names a *reproducible* execution point without any
//! wall-clock or scheduler dependence, and the injection surface needs no
//! new hooks in the solver. See DESIGN.md §6.10.
//!
//! A [`ChaosConfig`] is derived from a single seed
//! ([`ChaosConfig::from_seed`]) or parsed from the `GDP_CHAOS`
//! environment variable ([`ChaosConfig::from_env`]), which `gdp-core`'s
//! `Specification` consults at construction so whole test suites can be
//! re-run under injected faults without code changes.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};

use crate::budget::CancelToken;
use crate::trace::{Port, TraceEvent, TraceSink};

/// Which fault a [`ChaosSink`] injects when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Trip the token as a cooperative cancellation.
    Cancel,
    /// Trip the token as a forced deadline expiry.
    Deadline,
    /// Panic at the event site (contained by the per-goal isolation
    /// boundary in the parallel solver).
    Panic,
}

/// A deterministic injection point: fire `kind` at the `at_event`-th
/// observed port event (1-based), optionally counting only events at one
/// specific [`Port`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosConfig {
    /// The fault to inject.
    pub kind: FaultKind,
    /// Fire at the K-th counted event, 1-based. Values beyond the run's
    /// event count simply never fire — a valid (empty) injection point.
    pub at_event: u64,
    /// When set, only events at this port advance the counter (e.g.
    /// `Port::TableInsert` to fault right at an answer-table insertion).
    pub port: Option<Port>,
}

impl ChaosConfig {
    /// Derive an injection point from a seed: the kind cycles through
    /// cancel/deadline/panic and the event index covers 1..=499, so a
    /// small seed matrix sweeps all three kinds at scattered depths.
    pub fn from_seed(seed: u64) -> ChaosConfig {
        let kind = match seed % 3 {
            0 => FaultKind::Cancel,
            1 => FaultKind::Deadline,
            _ => FaultKind::Panic,
        };
        ChaosConfig {
            kind,
            at_event: (seed / 3) % 499 + 1,
            port: None,
        }
    }

    /// Parse a `GDP_CHAOS` value: either a bare integer seed (see
    /// [`Self::from_seed`]) or an explicit `cancel:K` / `deadline:K` /
    /// `panic:K`. Returns `None` for anything else.
    pub fn parse(value: &str) -> Option<ChaosConfig> {
        let value = value.trim();
        if let Ok(seed) = value.parse::<u64>() {
            return Some(ChaosConfig::from_seed(seed));
        }
        let (kind, k) = value.split_once(':')?;
        let kind = match kind {
            "cancel" => FaultKind::Cancel,
            "deadline" => FaultKind::Deadline,
            "panic" => FaultKind::Panic,
            _ => return None,
        };
        let at_event = k.parse::<u64>().ok().filter(|k| *k >= 1)?;
        Some(ChaosConfig {
            kind,
            at_event,
            port: None,
        })
    }

    /// The injection point requested by the `GDP_CHAOS` environment
    /// variable, if any. `io:` values belong to the disk-fault layer
    /// ([`IoFaultConfig::from_env`]) and are not warned about here.
    pub fn from_env() -> Option<ChaosConfig> {
        std::env::var("GDP_CHAOS").ok().and_then(|v| {
            let cfg = ChaosConfig::parse(&v);
            if cfg.is_none() && !v.trim().is_empty() && !v.trim().starts_with("io:") {
                eprintln!("GDP_CHAOS={v}: expected a seed or kind:K; ignoring");
            }
            cfg
        })
    }
}

// ----- disk-fault injection -------------------------------------------------

/// Which disk fault a [`ChaosFile`] injects when its trigger is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFaultKind {
    /// The write crossing the trigger byte persists only the bytes up to
    /// it and reports partial success; the *next* write on the handle
    /// errors. Models a `write(2)` returning short at a full disk or
    /// quota boundary.
    ShortWrite,
    /// Writes succeed, but the K-th `sync_data` call on the handle fails
    /// and the handle is dead afterwards. Bytes written before the failed
    /// sync stay in the file — the harshest reading of fsync-failure
    /// semantics, where data may be visible yet was never acknowledged.
    FsyncFail,
    /// A crash at byte K: everything up to K persists, the faulting write
    /// errors, and every later operation on the handle errors. The caller
    /// is expected to abandon the handle and recover from disk, exactly
    /// as a restarted process would.
    Crash,
}

/// A deterministic disk-fault injection point for one [`ChaosFile`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoFaultConfig {
    /// The fault to inject.
    pub kind: IoFaultKind,
    /// The trigger: a 1-based byte offset for
    /// [`IoFaultKind::ShortWrite`] / [`IoFaultKind::Crash`] (the first
    /// byte that does *not* persist is `at`), or a 1-based `sync_data`
    /// call index for [`IoFaultKind::FsyncFail`].
    pub at: u64,
}

impl IoFaultConfig {
    /// Derive a disk-fault point from a seed: the kind cycles through
    /// short-write / fsync-fail / crash and the trigger covers a spread
    /// of offsets, so a small seed matrix sweeps all three kinds.
    pub fn from_seed(seed: u64) -> IoFaultConfig {
        let kind = match seed % 3 {
            0 => IoFaultKind::ShortWrite,
            1 => IoFaultKind::FsyncFail,
            _ => IoFaultKind::Crash,
        };
        let at = match kind {
            // Sync indexes are small (one per commit); byte offsets are
            // spread across typical record sizes.
            IoFaultKind::FsyncFail => (seed / 3) % 13 + 1,
            _ => (seed / 3) % 1021 + 1,
        };
        IoFaultConfig { kind, at }
    }

    /// Parse a `GDP_CHAOS` disk-fault value: `io:short:K`, `io:fsync:K`,
    /// `io:crash:K`, or `io:SEED` (see [`Self::from_seed`]). Anything
    /// else — including the port-fault grammar handled by
    /// [`ChaosConfig::parse`] — yields `None`.
    pub fn parse(value: &str) -> Option<IoFaultConfig> {
        let rest = value.trim().strip_prefix("io:")?;
        if let Ok(seed) = rest.parse::<u64>() {
            return Some(IoFaultConfig::from_seed(seed));
        }
        let (kind, k) = rest.split_once(':')?;
        let kind = match kind {
            "short" => IoFaultKind::ShortWrite,
            "fsync" => IoFaultKind::FsyncFail,
            "crash" => IoFaultKind::Crash,
            _ => return None,
        };
        let at = k.parse::<u64>().ok().filter(|k| *k >= 1)?;
        Some(IoFaultConfig { kind, at })
    }

    /// The disk-fault point requested by the `GDP_CHAOS` environment
    /// variable, if it carries an `io:` value.
    pub fn from_env() -> Option<IoFaultConfig> {
        std::env::var("GDP_CHAOS")
            .ok()
            .and_then(|v| IoFaultConfig::parse(&v))
    }
}

fn chaos_io_error(what: &str) -> io::Error {
    io::Error::other(format!("chaos: injected {what}"))
}

/// A [`File`] wrapper that injects at most one deterministic disk fault,
/// then keeps failing — the failpoint layer under the write-ahead log and
/// checkpoint writers.
///
/// Without a fault configured it is a transparent passthrough. With one,
/// it counts bytes written (short-write / crash triggers) and `sync_data`
/// calls (fsync-fail trigger) and fires exactly once; after the fault the
/// handle is *dead* and every operation errors, so a caller can never
/// silently keep "persisting" past a simulated crash. What is in the file
/// when the fault fires is exactly the byte prefix the semantics of the
/// fault kind allow — which is what recovery code must survive.
#[derive(Debug)]
pub struct ChaosFile {
    file: File,
    fault: Option<IoFaultConfig>,
    /// Bytes successfully persisted through this handle.
    written: u64,
    /// `sync_data` calls observed.
    syncs: u64,
    /// A short write fired; the next write reports the error.
    short_fired: bool,
    /// The fault fired terminally; every operation errors.
    dead: bool,
}

impl ChaosFile {
    /// Wrap `file`, injecting `fault` (or passing through when `None`).
    pub fn new(file: File, fault: Option<IoFaultConfig>) -> ChaosFile {
        ChaosFile {
            file,
            fault,
            written: 0,
            syncs: 0,
            short_fired: false,
            dead: false,
        }
    }

    /// The wrapped file (integrity checks in tests).
    pub fn file(&self) -> &File {
        &self.file
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.dead {
            return Err(chaos_io_error("dead file handle"));
        }
        Ok(())
    }

    /// Sync file data to disk, honoring an fsync-fail fault point.
    pub fn sync_data(&mut self) -> io::Result<()> {
        self.check_alive()?;
        if let Some(cfg) = self.fault {
            if cfg.kind == IoFaultKind::FsyncFail {
                self.syncs += 1;
                if self.syncs >= cfg.at {
                    self.dead = true;
                    return Err(chaos_io_error("fsync failure"));
                }
            }
        }
        self.file.sync_data()
    }

    /// Truncate or extend the file (used by torn-tail truncation, which
    /// happens during recovery — before any fault counting starts).
    pub fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.check_alive()?;
        self.file.set_len(len)
    }
}

impl Write for ChaosFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.check_alive()?;
        if self.short_fired {
            self.dead = true;
            return Err(chaos_io_error("write after short write"));
        }
        let allowed = match self.fault {
            Some(IoFaultConfig { kind, at })
                if kind != IoFaultKind::FsyncFail && self.written + buf.len() as u64 >= at =>
            {
                Some(((at - 1).saturating_sub(self.written).min(buf.len() as u64)) as usize)
            }
            _ => None,
        };
        match allowed {
            None => {
                let n = self.file.write(buf)?;
                self.written += n as u64;
                Ok(n)
            }
            Some(n) => {
                // The fault fires inside this write: persist the allowed
                // prefix, then report per the fault kind.
                if n > 0 {
                    self.file.write_all(&buf[..n])?;
                    self.written += n as u64;
                }
                match self.fault.map(|f| f.kind) {
                    Some(IoFaultKind::ShortWrite) if n > 0 => {
                        self.short_fired = true;
                        Ok(n)
                    }
                    Some(IoFaultKind::ShortWrite) => {
                        self.dead = true;
                        Err(chaos_io_error("short write"))
                    }
                    _ => {
                        self.dead = true;
                        Err(chaos_io_error("crash"))
                    }
                }
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.check_alive()?;
        self.file.flush()
    }
}

impl Read for ChaosFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.file.read(buf)
    }
}

impl Seek for ChaosFile {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.check_alive()?;
        self.file.seek(pos)
    }
}

/// A [`TraceSink`] that forwards everything to an inner sink and injects
/// one fault at a configured event index. Fires at most once per sink —
/// and sinks are per-worker, so in a parallel batch "the K-th event" is
/// counted within each worker's own deterministic event stream.
#[derive(Clone, Debug)]
pub struct ChaosSink<S: TraceSink = crate::trace::NullSink> {
    inner: S,
    cfg: ChaosConfig,
    token: CancelToken,
    seen: u64,
    fired: bool,
}

impl<S: TraceSink> ChaosSink<S> {
    /// A chaos sink wrapping `inner`. A tripped `token` is how the
    /// cancel/deadline kinds reach the budgets polling it.
    pub fn new(cfg: ChaosConfig, token: CancelToken, inner: S) -> ChaosSink<S> {
        ChaosSink {
            inner,
            cfg,
            token,
            seen: 0,
            fired: false,
        }
    }

    /// Recover the wrapped sink (for merging a worker's profiler at the
    /// batch join).
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Has the injection point been reached?
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Port events observed so far (after any port filter).
    pub fn events_seen(&self) -> u64 {
        self.seen
    }
}

impl<S: TraceSink> TraceSink for ChaosSink<S> {
    fn event(&mut self, event: &TraceEvent) {
        // Forward first so the triggering event itself is observable in a
        // ring-trace post-mortem.
        self.inner.event(event);
        if self.cfg.port.is_some_and(|p| p != event.port) {
            return;
        }
        self.seen += 1;
        if !self.fired && self.seen >= self.cfg.at_event {
            self.fired = true;
            match self.cfg.kind {
                FaultKind::Cancel => self.token.cancel(),
                FaultKind::Deadline => self.token.expire(),
                FaultKind::Panic => panic!(
                    "chaos: injected panic at port event {} ({})",
                    self.seen, event.port
                ),
            }
        }
    }

    fn step(&mut self, key: crate::kb::PredKey) {
        self.inner.step(key);
    }
}

/// In-crate test support: a process-global panic hook that swallows the
/// *expected* injected panics so intentionally-faulting tests don't spam
/// stderr, while leaving every other panic's report intact.
#[cfg(test)]
pub(crate) mod tests_support {
    use std::sync::Once;

    static QUIET: Once = Once::new();

    /// Run `f` with injected-fault panics silenced. Installed once and
    /// left in place (tests run concurrently; swapping hooks back and
    /// forth would race), delegating unrecognized panics to the previous
    /// hook.
    pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        QUIET.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let message = info
                    .payload()
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| info.payload().downcast_ref::<&str>().copied())
                    .unwrap_or("");
                if message.contains("chaos: injected") || message.contains("native exploded") {
                    return;
                }
                previous(info);
            }));
        });
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::PredKey;
    use crate::term::Term;
    use crate::trace::NullSink;

    fn event(port: Port) -> TraceEvent {
        TraceEvent {
            port,
            depth: 0,
            key: PredKey::new("p", 0),
            goal: Term::atom("p"),
        }
    }

    #[test]
    fn seed_derivation_is_total_and_deterministic() {
        for seed in 0..50 {
            let a = ChaosConfig::from_seed(seed);
            let b = ChaosConfig::from_seed(seed);
            assert_eq!(a, b);
            assert!(a.at_event >= 1);
        }
        // All three kinds are reachable.
        assert_eq!(ChaosConfig::from_seed(0).kind, FaultKind::Cancel);
        assert_eq!(ChaosConfig::from_seed(1).kind, FaultKind::Deadline);
        assert_eq!(ChaosConfig::from_seed(2).kind, FaultKind::Panic);
    }

    #[test]
    fn parse_accepts_seeds_and_explicit_points() {
        assert_eq!(ChaosConfig::parse("7"), Some(ChaosConfig::from_seed(7)));
        assert_eq!(
            ChaosConfig::parse("panic:12"),
            Some(ChaosConfig {
                kind: FaultKind::Panic,
                at_event: 12,
                port: None,
            })
        );
        assert_eq!(
            ChaosConfig::parse(" cancel:1 "),
            Some(ChaosConfig {
                kind: FaultKind::Cancel,
                at_event: 1,
                port: None,
            })
        );
        assert_eq!(ChaosConfig::parse("deadline:0"), None);
        assert_eq!(ChaosConfig::parse("nonsense"), None);
        assert_eq!(ChaosConfig::parse("panic:"), None);
    }

    #[test]
    fn fires_exactly_once_at_the_kth_event() {
        let token = CancelToken::new();
        let cfg = ChaosConfig {
            kind: FaultKind::Cancel,
            at_event: 3,
            port: None,
        };
        let mut sink = ChaosSink::new(cfg, token.clone(), NullSink);
        sink.event(&event(Port::Call));
        sink.event(&event(Port::Exit));
        assert!(!token.is_cancelled());
        sink.event(&event(Port::Call));
        assert!(token.is_cancelled());
        assert!(sink.fired());
        // Subsequent events do not re-fire.
        token.reset();
        sink.event(&event(Port::Fail));
        assert!(!token.is_cancelled());
    }

    #[test]
    fn port_filter_counts_only_matching_events() {
        let token = CancelToken::new();
        let cfg = ChaosConfig {
            kind: FaultKind::Deadline,
            at_event: 1,
            port: Some(Port::TableInsert),
        };
        let mut sink = ChaosSink::new(cfg, token.clone(), NullSink);
        for _ in 0..10 {
            sink.event(&event(Port::Call));
        }
        assert!(!token.is_cancelled());
        sink.event(&event(Port::TableInsert));
        assert!(token.is_cancelled());
        assert_eq!(sink.events_seen(), 1);
    }
}
