//! Helpers for Prolog-style lists (`'.'(Head, Tail)` / `[]`).

use crate::symbol::symbols;
use crate::term::Term;
use crate::unify::BindStore;

/// Build a proper list term from an iterator.
pub fn list_from_iter<I: IntoIterator<Item = Term>>(items: I) -> Term
where
    I::IntoIter: DoubleEndedIterator,
{
    items
        .into_iter()
        .rev()
        .fold(Term::nil(), |tail, head| Term::cons(head, tail))
}

/// Convert a (fully resolved) proper list term into a `Vec`.
///
/// Returns `None` if the term is not a proper list (unbound tail, wrong
/// functor, …).
pub fn list_to_vec(t: &Term) -> Option<Vec<Term>> {
    let mut out = Vec::new();
    let mut cur = t;
    loop {
        match cur {
            Term::Atom(s) if *s == symbols::nil() => return Some(out),
            Term::Compound(c, args) if *c == symbols::cons() && args.len() == 2 => {
                out.push(args[0].clone());
                cur = &args[1];
            }
            _ => return None,
        }
    }
}

/// Iterator over the elements of a list term, dereferencing each cell
/// through a [`BindStore`] so partially instantiated lists can be walked.
pub struct ListIter<'a> {
    store: &'a BindStore,
    cur: Term,
    /// Set when the walk hit something that is not a cons cell or nil.
    pub improper: bool,
}

impl<'a> ListIter<'a> {
    /// Start iterating `t` under `store`'s bindings.
    pub fn new(store: &'a BindStore, t: &Term) -> ListIter<'a> {
        ListIter {
            store,
            cur: t.clone(),
            improper: false,
        }
    }
}

impl Iterator for ListIter<'_> {
    type Item = Term;

    fn next(&mut self) -> Option<Term> {
        let resolved = self.store.deref(&self.cur).clone();
        match resolved {
            Term::Atom(s) if s == symbols::nil() => None,
            Term::Compound(c, args) if c == symbols::cons() && args.len() == 2 => {
                let head = args[0].clone();
                self.cur = args[1].clone();
                Some(head)
            }
            _ => {
                self.improper = true;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let items = vec![Term::int(1), Term::atom("a"), Term::float(2.5)];
        let l = list_from_iter(items.clone());
        assert_eq!(list_to_vec(&l), Some(items));
    }

    #[test]
    fn empty_list() {
        assert_eq!(list_to_vec(&Term::nil()), Some(vec![]));
    }

    #[test]
    fn improper_list_rejected() {
        let l = Term::cons(Term::int(1), Term::int(2));
        assert_eq!(list_to_vec(&l), None);
    }

    #[test]
    fn iter_follows_bindings() {
        let mut store = BindStore::new();
        store.ensure(0);
        // [1 | X] with X bound to [2].
        assert!(store.unify(&Term::var(0), &Term::list(vec![Term::int(2)])));
        let l = Term::cons(Term::int(1), Term::var(0));
        let items: Vec<Term> = ListIter::new(&store, &l).collect();
        assert_eq!(items, vec![Term::int(1), Term::int(2)]);
    }

    #[test]
    fn iter_flags_improper_tail() {
        let store = BindStore::new();
        let l = Term::cons(Term::int(1), Term::atom("oops"));
        let mut it = ListIter::new(&store, &l);
        assert_eq!(it.next(), Some(Term::int(1)));
        assert_eq!(it.next(), None);
        assert!(it.improper);
    }
}
